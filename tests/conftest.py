"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LinearConstraints, UncertainDataset, WeightRatioConstraints
from repro.data.synthetic import SyntheticConfig, generate_uncertain_dataset


def make_random_dataset(seed: int, num_objects: int = 6,
                        max_instances: int = 3, dimension: int = 3,
                        region_length: float = 0.4,
                        incomplete_fraction: float = 0.0,
                        distribution: str = "IND") -> UncertainDataset:
    """Small random uncertain dataset for algorithm comparisons."""
    config = SyntheticConfig(num_objects=num_objects,
                             max_instances=max_instances,
                             dimension=dimension,
                             region_length=region_length,
                             incomplete_fraction=incomplete_fraction,
                             distribution=distribution,
                             seed=seed)
    return generate_uncertain_dataset(config)


def assert_results_close(expected, actual, atol=1e-9):
    """Assert two ARSP result dictionaries agree."""
    assert set(expected) == set(actual)
    for key in expected:
        assert actual[key] == pytest.approx(expected[key], abs=atol), (
            "instance %d: expected %r, got %r"
            % (key, expected[key], actual[key]))


@pytest.fixture
def example1_dataset() -> UncertainDataset:
    """The Example 1 style dataset used by the quickstart."""
    return UncertainDataset.from_instance_lists(
        instance_lists=[
            [(2.0, 9.0), (12.0, 10.0)],
            [(1.0, 8.0), (10.0, 4.0), (9.0, 12.0)],
            [(3.0, 5.0), (4.0, 9.0), (12.0, 3.0)],
            [(5.0, 13.0), (13.0, 2.0)],
        ],
        probability_lists=[
            [0.5, 0.5],
            [1.0 / 3, 1.0 / 3, 1.0 / 3],
            [1.0 / 3, 1.0 / 3, 1.0 / 3],
            [0.5, 0.5],
        ],
        labels=["T1", "T2", "T3", "T4"],
    )


@pytest.fixture
def ratio_constraints_2d() -> WeightRatioConstraints:
    """The ratio constraint of Example 1: 0.5 <= ω1/ω2 <= 2."""
    return WeightRatioConstraints([(0.5, 2.0)])


@pytest.fixture
def wr_constraints_3d() -> LinearConstraints:
    """Weak ranking constraints for a 3-dimensional data space."""
    return LinearConstraints.weak_ranking(3)


@pytest.fixture
def small_dataset_3d() -> UncertainDataset:
    """Deterministic 3-D dataset small enough for world enumeration."""
    return make_random_dataset(seed=5, num_objects=5, max_instances=3,
                               dimension=3, incomplete_fraction=0.4)


@pytest.fixture
def certain_points_3d() -> np.ndarray:
    """Certain 3-D points for the eclipse tests."""
    rng = np.random.default_rng(23)
    return rng.uniform(0.0, 1.0, size=(80, 3))
