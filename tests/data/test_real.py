"""Tests for the simulated real datasets (IIP, CAR, NBA)."""

import numpy as np
import pytest

from repro.core.numeric import PROB_ATOL
from repro.data.real import (IIP_CONFIDENCE_PROBABILITIES, NBA_METRICS,
                             car_dataset, iip_dataset, nba_dataset)


class TestIIP:
    def test_structure(self):
        dataset = iip_dataset(num_records=300, seed=1)
        dataset.validate()
        assert dataset.num_objects == 300
        assert dataset.dimension == 2
        assert all(len(obj) == 1 for obj in dataset)

    def test_probabilities_from_confidence_levels(self):
        dataset = iip_dataset(num_records=200, seed=2)
        seen = {round(obj.instances[0].probability, 6) for obj in dataset}
        assert seen <= {round(p, 6) for p in IIP_CONFIDENCE_PROBABILITIES}

    def test_every_object_is_incomplete(self):
        """φ = 1 in the paper: every object has total probability < 1."""
        dataset = iip_dataset(num_records=100, seed=3)
        assert all(obj.total_probability < 1.0 - PROB_ATOL for obj in dataset)

    def test_reproducible(self):
        a = iip_dataset(num_records=50, seed=4)
        b = iip_dataset(num_records=50, seed=4)
        np.testing.assert_allclose(a.instance_matrix(), b.instance_matrix())

    def test_all_confidence_levels_occur(self):
        dataset = iip_dataset(num_records=500, seed=13)
        seen = {round(obj.instances[0].probability, 6) for obj in dataset}
        assert seen == {round(p, 6) for p in IIP_CONFIDENCE_PROBABILITIES}


class TestCAR:
    def test_structure(self):
        dataset = car_dataset(num_models=40, max_cars_per_model=6, seed=5)
        dataset.validate()
        assert dataset.num_objects == 40
        assert dataset.dimension == 4
        assert all(1 <= len(obj) <= 6 for obj in dataset)

    def test_uniform_probability_within_model(self):
        dataset = car_dataset(num_models=30, seed=6)
        for obj in dataset:
            assert obj.total_probability == pytest.approx(1.0)
            expected = 1.0 / len(obj)
            assert all(inst.probability == pytest.approx(expected)
                       for inst in obj)

    def test_labels(self):
        dataset = car_dataset(num_models=5, seed=7)
        assert dataset.objects[0].label == "model-000"

    def test_instances_grouped_per_model(self):
        """Cars of one model share a base price: the within-model price
        spread is bounded by the generator's ±40% noise, while prices across
        models span more than a decade."""
        dataset = car_dataset(num_models=60, max_cars_per_model=8, seed=14)
        prices = dataset.instance_matrix()[:, 0]
        assert prices.max() / prices.min() > 3.0
        for obj in dataset:
            model_prices = np.asarray([inst.values[0] for inst in obj])
            assert model_prices.max() / model_prices.min() <= 1.4 / 0.6 + 1e-9

    def test_reproducible(self):
        a = car_dataset(num_models=20, seed=15)
        b = car_dataset(num_models=20, seed=15)
        np.testing.assert_allclose(a.instance_matrix(), b.instance_matrix())


class TestNBA:
    def test_structure(self):
        dataset = nba_dataset(num_players=30, max_games=10, seed=8)
        dataset.validate()
        assert dataset.num_objects == 30
        assert dataset.dimension == len(NBA_METRICS)
        assert all(5 <= len(obj) <= 10 for obj in dataset)

    def test_metric_subset(self):
        dataset = nba_dataset(num_players=20, max_games=8, num_metrics=3,
                              seed=9)
        assert dataset.dimension == 3

    def test_invalid_metric_count(self):
        with pytest.raises(ValueError):
            nba_dataset(num_metrics=0)
        with pytest.raises(ValueError):
            nba_dataset(num_metrics=9)

    def test_equal_probability_per_record(self):
        dataset = nba_dataset(num_players=15, max_games=12, seed=10)
        for obj in dataset:
            assert obj.total_probability == pytest.approx(1.0)

    def test_players_have_variance(self):
        """The per-player record variance that drives Table I must exist."""
        dataset = nba_dataset(num_players=20, max_games=20, num_metrics=3,
                              seed=11)
        variances = []
        for obj in dataset:
            points = np.asarray([inst.values for inst in obj])
            variances.append(points.var(axis=0).mean())
        assert np.mean(variances) > 0.5

    def test_values_non_negative(self):
        dataset = nba_dataset(num_players=10, seed=12)
        assert np.all(dataset.instance_matrix() >= 0.0)

    def test_exposes_all_eight_metrics(self):
        assert len(NBA_METRICS) == 8
        dataset = nba_dataset(num_players=10, seed=13)
        assert dataset.dimension == len(NBA_METRICS)

    def test_lower_is_better_orientation(self):
        """All metrics share one latent skill, so after the lower-is-better
        transformation the stored positive metrics correlate positively with
        each other — and negatively with turnovers, the one metric whose raw
        value is already lower-is-better and is stored untransformed."""
        dataset = nba_dataset(num_players=80, max_games=30, seed=14)
        means = np.asarray([obj.mean_vector() for obj in dataset])
        points = NBA_METRICS.index("points")
        rebounds = NBA_METRICS.index("rebounds")
        turnovers = NBA_METRICS.index("turnovers")
        assert np.corrcoef(means[:, points], means[:, rebounds])[0, 1] > 0.5
        assert np.corrcoef(means[:, points], means[:, turnovers])[0, 1] < 0.0

    def test_reproducible(self):
        a = nba_dataset(num_players=15, seed=16)
        b = nba_dataset(num_players=15, seed=16)
        np.testing.assert_allclose(a.instance_matrix(), b.instance_matrix())
