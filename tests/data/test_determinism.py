"""Seed-plumbing audit: identical seeds must give identical datasets.

Every generator in :mod:`repro.data` takes an explicit ``seed`` and builds
its own ``np.random.default_rng`` — none may depend on the global NumPy
random state or on process-level state (hash randomisation, dict order).
The cross-process test is the strong form: it fingerprints every generator
in a *fresh interpreter* and compares against the fingerprint computed in
this process, which would catch both global-RNG leaks and any accidental
use of unordered containers in the generation path.

The end-to-end extension covers the execution backend: a seeded
generate → compute-ARSP run must be *byte-identical* (same result bytes,
same key order) across the serial and process backends, across worker
counts, and across repeated runs with the same worker count — the
shard-merge determinism rule of docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import hashlib
import json
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.arsp import compute_arsp
from repro.core.preference import WeightRatioConstraints
from repro.data.constraints import weak_ranking_constraints
from repro.data.real import car_dataset, iip_dataset, nba_dataset
from repro.data.synthetic import SyntheticConfig, generate_uncertain_dataset

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _fingerprint(dataset) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.instance_matrix()).tobytes())
    digest.update(np.ascontiguousarray(dataset.probability_vector()).tobytes())
    digest.update(np.ascontiguousarray(dataset.object_ids()).tobytes())
    return digest.hexdigest()


def _generate_all() -> dict:
    datasets = {
        "iip": iip_dataset(num_records=120, seed=99),
        "car": car_dataset(num_models=40, max_cars_per_model=5, seed=99),
        "nba": nba_dataset(num_players=20, max_games=8, seed=99),
    }
    for distribution in ("IND", "ANTI", "CORR"):
        config = SyntheticConfig(num_objects=40, max_instances=4, dimension=3,
                                 incomplete_fraction=0.3,
                                 distribution=distribution, seed=99)
        datasets["synthetic-" + distribution.lower()] = \
            generate_uncertain_dataset(config)
    return {name: _fingerprint(dataset)
            for name, dataset in datasets.items()}


# The child process re-imports this module and prints the fingerprints.
_CHILD_SCRIPT = """\
import json
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from tests.data.test_determinism import _generate_all
print(json.dumps(_generate_all()))
"""


def test_generators_deterministic_across_processes():
    root = str(Path(__file__).resolve().parents[2])
    script = _CHILD_SCRIPT.format(src=_SRC, root=root)
    output = subprocess.run([sys.executable, "-c", script],
                            capture_output=True, text=True, check=True,
                            timeout=120)
    child = json.loads(output.stdout)
    assert child == _generate_all()


def test_generators_deterministic_within_process():
    assert _generate_all() == _generate_all()


def _result_fingerprint(result) -> str:
    """Byte-level digest of an ARSP result *including its key order*."""
    digest = hashlib.sha256()
    for instance_id, probability in result.items():
        digest.update(struct.pack("<qd", instance_id, probability))
    return digest.hexdigest()


def _end_to_end(algorithm: str, workers=None, backend=None) -> str:
    """Seeded generate → compute fingerprint for one backend setting."""
    config = SyntheticConfig(num_objects=23, max_instances=3, dimension=3,
                             incomplete_fraction=0.3, distribution="ANTI",
                             seed=77)
    dataset = generate_uncertain_dataset(config)
    if algorithm == "dual":
        constraints = WeightRatioConstraints([(0.5, 2.0)] * 2)
    else:
        constraints = weak_ranking_constraints(3)
    options = {} if backend is None else {"backend": backend}
    result = compute_arsp(dataset, constraints, algorithm=algorithm,
                          workers=workers, **options)
    return _result_fingerprint(result)


@pytest.mark.parametrize("algorithm", ["loop", "kdtt+", "bnb", "dual"])
def test_end_to_end_runs_are_byte_identical_across_shardings(algorithm):
    """Serial, one-shard and multi-shard serial runs: one fingerprint."""
    reference = _end_to_end(algorithm)
    assert _end_to_end(algorithm, workers=1) == reference
    for workers in (2, 3, 5):
        assert _end_to_end(algorithm, workers=workers,
                           backend="serial") == reference, workers


@pytest.mark.parallel
@pytest.mark.parametrize("algorithm", ["kdtt+", "dual"])
def test_end_to_end_runs_are_byte_identical_across_backends(algorithm):
    """The process backend and repeated runs with the same worker count
    reproduce the serial fingerprint byte for byte."""
    reference = _end_to_end(algorithm)
    first = _end_to_end(algorithm, workers=2, backend="process")
    second = _end_to_end(algorithm, workers=2, backend="process")
    assert first == reference
    assert second == first


@pytest.mark.serve
@pytest.mark.parametrize("algorithm", ["dual", "bnb"])
def test_served_query_stream_is_byte_identical_to_one_shot(algorithm):
    """A daemon answering a repeated-constraint stream fingerprints
    identically to fresh one-shot runs — warm index, cross-query cache
    hits and all (the serving-layer byte-identity rule of
    docs/ARCHITECTURE.md)."""
    import asyncio

    from repro.serve import ArspServer, ArspService, ArspSession, ServeClient

    config = SyntheticConfig(num_objects=23, max_instances=3, dimension=3,
                             incomplete_fraction=0.3, distribution="ANTI",
                             seed=77)
    dataset = generate_uncertain_dataset(config)
    if algorithm == "dual":
        stream = [WeightRatioConstraints([(low, 2.0)] * 2)
                  for low in (0.5, 0.8, 0.5, 0.8, 0.5)]
    else:
        stream = [weak_ranking_constraints(3, count)
                  for count in (1, 2, 1, 2, 1)]
    references = [_result_fingerprint(
        dict(compute_arsp(dataset, constraints, algorithm=algorithm)))
        for constraints in stream]

    async def served_fingerprints():
        service = ArspService(dataset)
        service.warm()
        session = ArspSession(service)
        server = ArspServer(session, port=0)
        host, port = await server.start()
        client = await ServeClient.connect(host, port)
        fingerprints = []
        hit_cache = False
        for constraints in stream:
            response = await client.query(constraints=constraints,
                                          algorithm=algorithm)
            fingerprints.append(_result_fingerprint(response["result"]))
            hit_cache = hit_cache or response["cached"]
        await client.close()
        await server.close()
        return fingerprints, hit_cache

    fingerprints, hit_cache = asyncio.run(served_fingerprints())
    assert fingerprints == references
    assert hit_cache  # the repeats in the stream came from the cache


def _scenario_fingerprints() -> dict:
    """Script + replay fingerprints for a small fixed scenario."""
    from repro.experiments.scenarios import (ScenarioSpec, build_scenario,
                                             replay_scenario)

    spec = ScenarioSpec(name="xproc", seed=13, steps=2, num_objects=18,
                        max_instances=3, dimension=3, queries_per_step=6,
                        constraint_pool=3)
    script = build_scenario(spec)
    report = replay_scenario(script, "incremental")
    return {"script": script.fingerprint(),
            "result": report.result_fingerprint}


_SCENARIO_CHILD_SCRIPT = """\
import json
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from tests.data.test_determinism import _scenario_fingerprints
print(json.dumps(_scenario_fingerprints()))
"""


@pytest.mark.stream
def test_scenario_scripts_deterministic_across_processes():
    """Scenario build + replay is a pure function of the spec: a fresh
    interpreter reproduces both the script fingerprint and the end-to-end
    stream result fingerprint bit for bit."""
    root = str(Path(__file__).resolve().parents[2])
    script = _SCENARIO_CHILD_SCRIPT.format(src=_SRC, root=root)
    output = subprocess.run([sys.executable, "-c", script],
                            capture_output=True, text=True, check=True,
                            timeout=120)
    child = json.loads(output.stdout)
    assert child == _scenario_fingerprints()


@pytest.mark.stream
@pytest.mark.serve
def test_scenario_stream_through_daemon_matches_recompute():
    """The same scenario replayed through the PR 7 daemon (warm index,
    cross-query cache, burst coalescing, in-daemon delta application)
    fingerprints identically to cold per-step recompute."""
    from repro.experiments.scenarios import (ScenarioSpec, build_scenario,
                                             replay_scenario)

    spec = ScenarioSpec(name="daemon-det", seed=21, steps=2, num_objects=18,
                        max_instances=3, dimension=3, queries_per_step=6,
                        constraint_pool=3)
    script = build_scenario(spec)
    cold = replay_scenario(script, "oneshot")
    warm = replay_scenario(script, "daemon")
    second = replay_scenario(script, "daemon")
    assert warm.result_fingerprint == cold.result_fingerprint
    assert second.result_fingerprint == warm.result_fingerprint


def test_generators_do_not_touch_global_numpy_state():
    """Generation must neither read nor advance ``np.random``'s global RNG."""
    np.random.seed(1234)
    before = np.random.get_state()[1].copy()
    _generate_all()
    after = np.random.get_state()[1].copy()
    np.testing.assert_array_equal(before, after)
    # And the datasets themselves must not depend on the global seed.
    np.random.seed(1234)
    first = _generate_all()
    np.random.seed(5678)
    assert _generate_all() == first
