"""Seed-plumbing audit: identical seeds must give identical datasets.

Every generator in :mod:`repro.data` takes an explicit ``seed`` and builds
its own ``np.random.default_rng`` — none may depend on the global NumPy
random state or on process-level state (hash randomisation, dict order).
The cross-process test is the strong form: it fingerprints every generator
in a *fresh interpreter* and compares against the fingerprint computed in
this process, which would catch both global-RNG leaks and any accidental
use of unordered containers in the generation path.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.data.real import car_dataset, iip_dataset, nba_dataset
from repro.data.synthetic import SyntheticConfig, generate_uncertain_dataset

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _fingerprint(dataset) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(dataset.instance_matrix()).tobytes())
    digest.update(np.ascontiguousarray(dataset.probability_vector()).tobytes())
    digest.update(np.ascontiguousarray(dataset.object_ids()).tobytes())
    return digest.hexdigest()


def _generate_all() -> dict:
    datasets = {
        "iip": iip_dataset(num_records=120, seed=99),
        "car": car_dataset(num_models=40, max_cars_per_model=5, seed=99),
        "nba": nba_dataset(num_players=20, max_games=8, seed=99),
    }
    for distribution in ("IND", "ANTI", "CORR"):
        config = SyntheticConfig(num_objects=40, max_instances=4, dimension=3,
                                 incomplete_fraction=0.3,
                                 distribution=distribution, seed=99)
        datasets["synthetic-" + distribution.lower()] = \
            generate_uncertain_dataset(config)
    return {name: _fingerprint(dataset)
            for name, dataset in datasets.items()}


# The child process re-imports this module and prints the fingerprints.
_CHILD_SCRIPT = """\
import json
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from tests.data.test_determinism import _generate_all
print(json.dumps(_generate_all()))
"""


def test_generators_deterministic_across_processes():
    root = str(Path(__file__).resolve().parents[2])
    script = _CHILD_SCRIPT.format(src=_SRC, root=root)
    output = subprocess.run([sys.executable, "-c", script],
                            capture_output=True, text=True, check=True,
                            timeout=120)
    child = json.loads(output.stdout)
    assert child == _generate_all()


def test_generators_deterministic_within_process():
    assert _generate_all() == _generate_all()


def test_generators_do_not_touch_global_numpy_state():
    """Generation must neither read nor advance ``np.random``'s global RNG."""
    np.random.seed(1234)
    before = np.random.get_state()[1].copy()
    _generate_all()
    after = np.random.get_state()[1].copy()
    np.testing.assert_array_equal(before, after)
    # And the datasets themselves must not depend on the global seed.
    np.random.seed(1234)
    first = _generate_all()
    np.random.seed(5678)
    assert _generate_all() == first
