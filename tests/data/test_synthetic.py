"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.core.numeric import PROB_ATOL
from repro.data.synthetic import (SyntheticConfig, generate_centers,
                                  generate_certain_points,
                                  generate_uncertain_dataset)


class TestConfig:
    def test_defaults_are_valid(self):
        SyntheticConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("num_objects", 0),
        ("max_instances", 0),
        ("dimension", 0),
        ("region_length", 1.5),
        ("incomplete_fraction", -0.1),
        ("distribution", "WEIRD"),
    ])
    def test_invalid_values_rejected(self, field, value):
        config = SyntheticConfig()
        setattr(config, field, value)
        with pytest.raises(ValueError):
            config.validate()


class TestCenters:
    @pytest.mark.parametrize("distribution", ["IND", "ANTI", "CORR"])
    def test_centers_in_unit_cube(self, distribution):
        rng = np.random.default_rng(0)
        centers = generate_centers(500, 4, distribution, rng)
        assert centers.shape == (500, 4)
        assert np.all(centers >= 0.0) and np.all(centers <= 1.0)

    def test_corr_centers_are_correlated(self):
        rng = np.random.default_rng(1)
        centers = generate_centers(2000, 2, "CORR", rng)
        correlation = np.corrcoef(centers[:, 0], centers[:, 1])[0, 1]
        assert correlation > 0.5

    def test_anti_centers_are_anticorrelated(self):
        rng = np.random.default_rng(2)
        centers = generate_centers(2000, 2, "ANTI", rng)
        correlation = np.corrcoef(centers[:, 0], centers[:, 1])[0, 1]
        assert correlation < -0.2

    def test_unknown_distribution(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            generate_centers(10, 2, "XYZ", rng)


class TestDatasetGeneration:
    def test_shapes_and_validity(self):
        config = SyntheticConfig(num_objects=50, max_instances=6, dimension=3,
                                 seed=4)
        dataset = generate_uncertain_dataset(config)
        dataset.validate()
        assert dataset.num_objects == 50
        assert dataset.dimension == 3
        assert all(1 <= len(obj) <= 6 for obj in dataset)

    def test_instances_in_unit_cube(self):
        config = SyntheticConfig(num_objects=30, max_instances=5, dimension=4,
                                 seed=5)
        dataset = generate_uncertain_dataset(config)
        matrix = dataset.instance_matrix()
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)

    def test_equal_instance_probabilities(self):
        config = SyntheticConfig(num_objects=30, max_instances=5, seed=6)
        dataset = generate_uncertain_dataset(config)
        for obj in dataset:
            probabilities = {inst.probability for inst in obj}
            assert len(probabilities) == 1

    def test_incomplete_fraction(self):
        config = SyntheticConfig(num_objects=100, max_instances=6,
                                 incomplete_fraction=0.4, seed=7)
        dataset = generate_uncertain_dataset(config)
        incomplete = [obj.total_probability < 1.0 - PROB_ATOL
                      for obj in dataset]
        # Exactly the first ceil(0.4 * 100) objects lost one instance.
        assert incomplete == [True] * 40 + [False] * 60

    def test_incomplete_fraction_rounds_up(self):
        config = SyntheticConfig(num_objects=10, max_instances=4,
                                 incomplete_fraction=0.25, seed=7)
        dataset = generate_uncertain_dataset(config)
        incomplete = sum(1 for obj in dataset
                         if obj.total_probability < 1.0 - PROB_ATOL)
        assert incomplete == 3  # ceil(0.25 * 10)

    def test_incomplete_objects_lose_exactly_one_instance(self):
        config = SyntheticConfig(num_objects=30, max_instances=5,
                                 incomplete_fraction=1.0, seed=7)
        dataset = generate_uncertain_dataset(config)
        for obj in dataset:
            drawn = int(round(1.0 / obj.instances[0].probability))
            assert len(obj) == drawn - 1
            assert obj.total_probability == pytest.approx(1.0 - 1.0 / drawn)

    def test_single_instance_cap_cannot_lose_instances(self):
        config = SyntheticConfig(num_objects=10, max_instances=1,
                                 incomplete_fraction=1.0, seed=7)
        dataset = generate_uncertain_dataset(config)
        assert all(len(obj) == 1 for obj in dataset)
        assert all(obj.total_probability == pytest.approx(1.0)
                   for obj in dataset)

    def test_return_regions_hook(self):
        config = SyntheticConfig(num_objects=25, max_instances=4, dimension=3,
                                 region_length=0.3, seed=13)
        dataset, regions = generate_uncertain_dataset(config,
                                                      return_regions=True)
        assert regions.shape == (25, 2, 3)
        for obj, (lo, hi) in zip(dataset, regions):
            points = np.asarray([inst.values for inst in obj])
            assert np.all(points >= lo) and np.all(points <= hi)
            assert np.all(hi - lo <= 0.3 + 1e-12)

    def test_phi_zero_gives_complete_objects(self):
        config = SyntheticConfig(num_objects=50, max_instances=4,
                                 incomplete_fraction=0.0, seed=8)
        dataset = generate_uncertain_dataset(config)
        assert all(obj.total_probability == pytest.approx(1.0)
                   for obj in dataset)

    def test_seed_reproducibility(self):
        config = SyntheticConfig(num_objects=20, max_instances=4, seed=9)
        first = generate_uncertain_dataset(config)
        second = generate_uncertain_dataset(config)
        np.testing.assert_allclose(first.instance_matrix(),
                                   second.instance_matrix())

    def test_different_seeds_differ(self):
        first = generate_uncertain_dataset(SyntheticConfig(num_objects=20,
                                                           seed=1))
        second = generate_uncertain_dataset(SyntheticConfig(num_objects=20,
                                                            seed=2))
        assert not np.allclose(first.instance_matrix()[:5],
                               second.instance_matrix()[:5])

    def test_region_length_bounds_spread(self):
        config = SyntheticConfig(num_objects=40, max_instances=6,
                                 region_length=0.1, seed=10)
        dataset = generate_uncertain_dataset(config)
        for obj in dataset:
            points = np.asarray([inst.values for inst in obj])
            spread = points.max(axis=0) - points.min(axis=0)
            assert np.all(spread <= 0.1 + 1e-9)


class TestCertainPoints:
    def test_shape(self):
        points = generate_certain_points(100, 3, seed=11)
        assert points.shape == (100, 3)

    def test_distribution_forwarded(self):
        corr = generate_certain_points(2000, 2, distribution="CORR", seed=12)
        assert np.corrcoef(corr[:, 0], corr[:, 1])[0, 1] > 0.5
