"""Tests for the WR and IM constraint generators."""

import numpy as np
import pytest

from repro.data.constraints import (interactive_constraints,
                                    weak_ranking_constraints)


class TestWeakRanking:
    @pytest.mark.parametrize("dimension", [2, 3, 5])
    def test_default_constraint_count(self, dimension):
        constraints = weak_ranking_constraints(dimension)
        assert constraints.num_constraints == dimension - 1

    def test_vertex_count_always_d(self):
        for dimension in (2, 3, 4, 5):
            constraints = weak_ranking_constraints(dimension)
            assert constraints.enumerate_vertices().shape[0] == dimension

    def test_partial_ranking(self):
        constraints = weak_ranking_constraints(5, num_constraints=2)
        assert constraints.num_constraints == 2


class TestInteractive:
    def test_target_weight_always_feasible(self):
        rng = np.random.default_rng(0)
        for seed in range(10):
            dimension = int(rng.integers(2, 5))
            target = rng.dirichlet(np.ones(dimension))
            constraints = interactive_constraints(dimension, 4, seed=seed,
                                                  target_weight=target)
            assert constraints.feasible(target)

    def test_constraint_count(self):
        constraints = interactive_constraints(3, 5, seed=1)
        assert constraints.num_constraints <= 5
        assert constraints.num_constraints >= 1

    def test_zero_constraints_gives_unconstrained(self):
        constraints = interactive_constraints(3, 0, seed=2)
        assert constraints.num_constraints == 0

    def test_region_never_empty(self):
        for seed in range(10):
            constraints = interactive_constraints(4, 6, seed=seed)
            vertices = constraints.enumerate_vertices()
            assert vertices.shape[0] >= 1

    def test_vertex_count_tends_to_grow_with_c(self):
        few = interactive_constraints(4, 1, seed=3).enumerate_vertices()
        many = interactive_constraints(4, 8, seed=3).enumerate_vertices()
        assert many.shape[0] >= few.shape[0] - 1

    def test_invalid_target_weight(self):
        with pytest.raises(ValueError):
            interactive_constraints(3, 2, target_weight=np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            interactive_constraints(3, 2,
                                    target_weight=np.array([0.5, 0.7, -0.2]))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            interactive_constraints(3, -1)

    def test_reproducible_with_seed(self):
        first = interactive_constraints(3, 4, seed=5)
        second = interactive_constraints(3, 4, seed=5)
        np.testing.assert_allclose(first.matrix, second.matrix)
