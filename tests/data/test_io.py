"""Tests for dataset loading and saving (repro.data.io)."""

import csv

import numpy as np
import pytest

from repro.data.io import load_csv, load_json, save_csv, save_json
from tests.conftest import make_random_dataset


def assert_datasets_equal(a, b):
    assert a.num_objects == b.num_objects
    assert a.num_instances == b.num_instances
    np.testing.assert_allclose(a.instance_matrix(), b.instance_matrix())
    np.testing.assert_allclose(a.probability_vector(), b.probability_vector())
    np.testing.assert_array_equal(a.object_ids(), b.object_ids())
    # Unnamed objects are given the default "object-<i>" label when loaded.
    labels_a = [obj.label or "object-%d" % obj.object_id for obj in a.objects]
    labels_b = [obj.label or "object-%d" % obj.object_id for obj in b.objects]
    assert labels_a == labels_b


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path, example1_dataset):
        path = tmp_path / "data.csv"
        save_csv(example1_dataset, path)
        assert_datasets_equal(example1_dataset, load_csv(path))

    def test_round_trip_random(self, tmp_path):
        dataset = make_random_dataset(seed=91, num_objects=12,
                                      max_instances=4, dimension=3,
                                      incomplete_fraction=0.3)
        path = tmp_path / "random.csv"
        save_csv(dataset, path)
        assert_datasets_equal(dataset, load_csv(path))

    def test_missing_labels_get_defaults(self, tmp_path):
        path = tmp_path / "bare.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["object_id", "probability", "attr_0", "attr_1"])
            writer.writerow([7, 0.5, 1.0, 2.0])
            writer.writerow([7, 0.5, 2.0, 1.0])
            writer.writerow([9, 1.0, 0.5, 0.5])
        dataset = load_csv(path)
        assert dataset.num_objects == 2
        assert dataset.objects[0].label == "object-0"
        assert dataset.objects[0].total_probability == pytest.approx(1.0)

    def test_object_ids_renumbered_densely(self, tmp_path):
        path = tmp_path / "sparse.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["object_id", "probability", "attr_0"])
            writer.writerow(["42", 1.0, 3.0])
            writer.writerow(["7", 1.0, 1.0])
        dataset = load_csv(path)
        assert [obj.object_id for obj in dataset.objects] == [0, 1]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_missing_attr_columns_rejected(self, tmp_path):
        path = tmp_path / "noattrs.csv"
        path.write_text("object_id,probability\n1,1.0\n")
        with pytest.raises(ValueError, match="attr"):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "headeronly.csv"
        path.write_text("object_id,probability,attr_0\n")
        with pytest.raises(ValueError, match="no instances"):
            load_csv(path)


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path, example1_dataset):
        path = tmp_path / "data.json"
        save_json(example1_dataset, path)
        assert_datasets_equal(example1_dataset, load_json(path))

    def test_round_trip_random(self, tmp_path):
        dataset = make_random_dataset(seed=92, num_objects=8,
                                      max_instances=3, dimension=4)
        path = tmp_path / "random.json"
        save_json(dataset, path, indent=None)
        assert_datasets_equal(dataset, load_json(path))

    def test_missing_objects_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"objects\": []}")
        with pytest.raises(ValueError):
            load_json(path)

    def test_object_without_instances_rejected(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text("{\"objects\": [{\"label\": \"x\", \"instances\": []}]}")
        with pytest.raises(ValueError):
            load_json(path)

    def test_loaded_dataset_usable_for_arsp(self, tmp_path, example1_dataset,
                                            ratio_constraints_2d):
        from repro import compute_arsp
        path = tmp_path / "data.json"
        save_json(example1_dataset, path)
        reloaded = load_json(path)
        result = compute_arsp(reloaded, ratio_constraints_2d,
                              algorithm="kdtt+")
        assert result[0] == pytest.approx(2.0 / 9.0)

    def test_cross_format_equivalence(self, tmp_path, example1_dataset):
        csv_path = tmp_path / "d.csv"
        json_path = tmp_path / "d.json"
        save_csv(example1_dataset, csv_path)
        save_json(example1_dataset, json_path)
        assert_datasets_equal(load_csv(csv_path), load_json(json_path))
