"""Tests for the eclipse query algorithms."""

import numpy as np
import pytest

from repro import WeightRatioConstraints
from repro.core.rskyline import eclipse as reference_eclipse
from repro.eclipse import (dual_s_eclipse, fast_skyline, naive_eclipse,
                           quad_eclipse)
from repro.eclipse.naive import eclipse_dominates


class TestFastSkyline:
    def test_matches_reference_skyline(self):
        from repro.core.rskyline import skyline
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(120, 3))
        assert fast_skyline(points) == sorted(skyline(points))

    def test_empty(self):
        assert fast_skyline(np.empty((0, 2))) == []

    def test_duplicates_kept(self):
        points = [(0.1, 0.1), (0.1, 0.1), (0.5, 0.5)]
        assert fast_skyline(points) == [0, 1]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            fast_skyline(np.zeros(5))


class TestEclipseDominates:
    CONSTRAINTS = WeightRatioConstraints([(0.5, 2.0)])

    def test_strict_dominance(self):
        assert eclipse_dominates((1.0, 1.0), (2.0, 2.0), self.CONSTRAINTS)
        assert not eclipse_dominates((2.0, 2.0), (1.0, 1.0), self.CONSTRAINTS)

    def test_duplicates_do_not_dominate_each_other(self):
        assert not eclipse_dominates((1.0, 1.0), (1.0, 1.0), self.CONSTRAINTS)

    def test_eclipse_dominance_is_weaker_than_needed_for_skyline(self):
        # Points incomparable under Pareto dominance can eclipse-dominate.
        assert eclipse_dominates((1.0, 3.0), (2.2, 2.4), self.CONSTRAINTS)


class TestEclipseAlgorithmsAgree:
    @pytest.mark.parametrize("dimension,ranges", [
        (2, [(0.5, 2.0)]),
        (3, [(0.36, 2.75), (0.36, 2.75)]),
        (4, [(0.5, 2.0), (0.5, 2.0), (0.5, 2.0)]),
    ])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_all_implementations_match_reference(self, dimension, ranges,
                                                 seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 1, size=(60, dimension))
        constraints = WeightRatioConstraints(ranges)
        expected = sorted(reference_eclipse(points, constraints))
        assert sorted(naive_eclipse(points, constraints)) == expected
        assert sorted(quad_eclipse(points, constraints)) == expected
        assert sorted(dual_s_eclipse(points, constraints)) == expected

    def test_certain_points_fixture(self, certain_points_3d):
        constraints = WeightRatioConstraints([(0.36, 2.75), (0.36, 2.75)])
        expected = sorted(naive_eclipse(certain_points_3d, constraints))
        assert sorted(quad_eclipse(certain_points_3d, constraints)) == expected
        assert sorted(dual_s_eclipse(certain_points_3d,
                                     constraints)) == expected

    def test_empty_input(self):
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        empty = np.empty((0, 2))
        assert quad_eclipse(empty, constraints) == []
        assert dual_s_eclipse(empty, constraints) == []

    def test_dimension_mismatch(self, certain_points_3d):
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        with pytest.raises(ValueError):
            naive_eclipse(certain_points_3d, constraints)
        with pytest.raises(ValueError):
            quad_eclipse(certain_points_3d, constraints)
        with pytest.raises(ValueError):
            dual_s_eclipse(certain_points_3d, constraints)


class TestEclipseProperties:
    def test_eclipse_subset_of_skyline(self, certain_points_3d):
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
        eclipse_ids = set(dual_s_eclipse(certain_points_3d, constraints))
        assert eclipse_ids <= set(fast_skyline(certain_points_3d))

    def test_tighter_range_shrinks_eclipse(self, certain_points_3d):
        wide = WeightRatioConstraints([(0.18, 5.67), (0.18, 5.67)])
        narrow = WeightRatioConstraints([(0.84, 1.19), (0.84, 1.19)])
        assert len(dual_s_eclipse(certain_points_3d, narrow)) <= len(
            dual_s_eclipse(certain_points_3d, wide))

    def test_duplicate_points_remain(self):
        points = [(0.1, 0.1), (0.1, 0.1), (0.9, 0.9)]
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        assert sorted(dual_s_eclipse(points, constraints)) == [0, 1]
        assert sorted(quad_eclipse(points, constraints)) == [0, 1]
