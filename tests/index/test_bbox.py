"""Tests for bounding boxes (repro.index.bbox)."""

import numpy as np
import pytest

from repro.index.bbox import BoundingBox, union_boxes


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points(np.array([[0.0, 1.0], [2.0, 0.5]]))
        np.testing.assert_allclose(box.lo, [0.0, 0.5])
        np.testing.assert_allclose(box.hi, [2.0, 1.0])

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points(np.empty((0, 2)))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoundingBox([1.0, 0.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            BoundingBox([0.0], [1.0, 1.0])

    def test_contains_point(self):
        box = BoundingBox([0.0, 0.0], [1.0, 1.0])
        assert box.contains_point([0.5, 0.5])
        assert box.contains_point([0.0, 1.0])
        assert not box.contains_point([1.5, 0.5])

    def test_contains_box(self):
        outer = BoundingBox([0.0, 0.0], [2.0, 2.0])
        inner = BoundingBox([0.5, 0.5], [1.0, 1.0])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_intersects_box(self):
        a = BoundingBox([0.0, 0.0], [1.0, 1.0])
        b = BoundingBox([0.5, 0.5], [2.0, 2.0])
        c = BoundingBox([1.5, 1.5], [2.0, 2.0])
        assert a.intersects_box(b)
        assert not a.intersects_box(c)
        # Touching boxes intersect (closed boxes).
        d = BoundingBox([1.0, 1.0], [2.0, 2.0])
        assert a.intersects_box(d)

    def test_union(self):
        a = BoundingBox([0.0, 0.0], [1.0, 1.0])
        b = BoundingBox([2.0, -1.0], [3.0, 0.5])
        union = a.union(b)
        np.testing.assert_allclose(union.lo, [0.0, -1.0])
        np.testing.assert_allclose(union.hi, [3.0, 1.0])

    def test_expanded_to(self):
        box = BoundingBox([0.0, 0.0], [1.0, 1.0]).expanded_to([2.0, -1.0])
        np.testing.assert_allclose(box.lo, [0.0, -1.0])
        np.testing.assert_allclose(box.hi, [2.0, 1.0])

    def test_margin_increase(self):
        box = BoundingBox([0.0, 0.0], [1.0, 1.0])
        assert box.margin_increase([0.5, 0.5]) == pytest.approx(0.0)
        assert box.margin_increase([2.0, 1.0]) == pytest.approx(1.0)

    def test_volume(self):
        assert BoundingBox([0.0, 0.0], [2.0, 3.0]).volume() == pytest.approx(6.0)

    def test_dimension(self):
        assert BoundingBox([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]).dimension == 3


class TestUnionBoxes:
    def test_union_of_many(self):
        boxes = [BoundingBox([i, i], [i + 1, i + 1]) for i in range(3)]
        union = union_boxes(boxes)
        np.testing.assert_allclose(union.lo, [0, 0])
        np.testing.assert_allclose(union.hi, [3, 3])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            union_boxes([])
