"""Tests for the quadtree index (repro.index.quadtree)."""

import numpy as np
import pytest

from repro.index.quadtree import QuadTree


def brute_force_range(points, lo, hi):
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    return sorted(i for i, p in enumerate(points)
                  if np.all(lo <= p) and np.all(p <= hi))


class TestConstruction:
    def test_empty(self):
        tree = QuadTree(np.empty((0, 2)))
        assert tree.range_indices([0, 0], [1, 1]) == []

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            QuadTree(np.zeros(4))

    def test_identical_points_stop_at_max_depth(self):
        points = np.full((50, 2), 0.5)
        tree = QuadTree(points, leaf_size=4, max_depth=6)
        assert sorted(tree.range_indices([0, 0], [1, 1])) == list(range(50))

    def test_children_count_is_power_of_two(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(100, 3))
        tree = QuadTree(points, leaf_size=8)
        assert not tree.root.is_leaf
        assert len(tree.root.children) == 8

    def test_count_nodes_grows_with_points(self):
        rng = np.random.default_rng(1)
        small = QuadTree(rng.uniform(0, 1, size=(20, 2)), leaf_size=4)
        large = QuadTree(rng.uniform(0, 1, size=(500, 2)), leaf_size=4)
        assert large.count_nodes() > small.count_nodes()

    def test_explicit_bounds(self):
        points = np.array([[0.5, 0.5]])
        tree = QuadTree(points, bounds=([0, 0], [2, 2]))
        np.testing.assert_allclose(tree.root.lo, [0, 0])
        np.testing.assert_allclose(tree.root.hi, [2, 2])


class TestRangeQueries:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("dimension", [1, 2, 3])
    def test_range_matches_brute_force(self, seed, dimension):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 1, size=(200, dimension))
        tree = QuadTree(points, leaf_size=6)
        lo = rng.uniform(0, 0.5, size=dimension)
        hi = lo + rng.uniform(0, 0.5, size=dimension)
        assert sorted(tree.range_indices(lo, hi)) == brute_force_range(
            points, lo, hi)

    def test_full_range(self):
        rng = np.random.default_rng(9)
        points = rng.uniform(0, 1, size=(64, 2))
        tree = QuadTree(points, leaf_size=4)
        assert sorted(tree.range_indices([0, 0], [1, 1])) == list(range(64))

    def test_all_points_stored_exactly_once(self):
        rng = np.random.default_rng(10)
        points = rng.uniform(0, 1, size=(300, 2))
        tree = QuadTree(points, leaf_size=5)
        seen = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.indices)
            else:
                stack.extend(node.children)
        assert sorted(seen) == list(range(300))
