"""Tests for the aggregated R-trees (repro.index.rtree)."""

import numpy as np
import pytest

from repro.index.rtree import FlatRTree, RTree, RTreeForest


def brute_force_aggregate(points, weights, lo, hi):
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    return sum(w for p, w in zip(points, weights)
               if np.all(lo <= p) and np.all(p <= hi))


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load(np.empty((0, 3)))
        assert tree.size == 0
        assert tree.window_aggregate([0, 0, 0], [1, 1, 1]) == 0.0

    def test_size_and_total_weight(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(100, 2))
        weights = rng.uniform(0, 1, size=100)
        tree = RTree.bulk_load(points, weights=weights)
        assert tree.size == 100
        assert tree.total_weight() == pytest.approx(weights.sum())

    def test_all_entries_present(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(75, 3))
        tree = RTree.bulk_load(points, data=list(range(75)))
        payloads = sorted(entry.data for entry in tree.iter_entries())
        assert payloads == list(range(75))

    def test_node_capacity_respected(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, size=(200, 2))
        tree = RTree.bulk_load(points, max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node) <= 8
            if not node.is_leaf:
                stack.extend(node.children)

    def test_bounds_contain_children(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(120, 3))
        tree = RTree.bulk_load(points)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    assert np.all(node.lo <= entry.point + 1e-12)
                    assert np.all(entry.point <= node.hi + 1e-12)
            else:
                for child in node.children:
                    assert np.all(node.lo <= child.lo + 1e-12)
                    assert np.all(child.hi <= node.hi + 1e-12)
                stack.extend(node.children)

    def test_aggregate_sums_consistent(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1, size=(150, 2))
        weights = rng.uniform(0, 1, size=150)
        tree = RTree.bulk_load(points, weights=weights)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.weight_sum == pytest.approx(
                    sum(e.weight for e in node.entries))
            else:
                assert node.weight_sum == pytest.approx(
                    sum(c.weight_sum for c in node.children))
                stack.extend(node.children)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RTree.bulk_load(np.zeros(5))


class TestInsertion:
    def test_insert_then_query(self):
        tree = RTree(dimension=2)
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 1, size=(80, 2))
        weights = rng.uniform(0, 1, size=80)
        for point, weight in zip(points, weights):
            tree.insert(point, weight=weight)
        assert tree.size == 80
        assert tree.total_weight() == pytest.approx(weights.sum())
        lo, hi = [0.2, 0.2], [0.7, 0.9]
        assert tree.window_aggregate(lo, hi) == pytest.approx(
            brute_force_aggregate(points, weights, lo, hi))

    def test_insert_dimension_check(self):
        tree = RTree(dimension=3)
        with pytest.raises(ValueError):
            tree.insert([1.0, 2.0])

    def test_incremental_vs_bulk_same_aggregates(self):
        rng = np.random.default_rng(6)
        points = rng.uniform(0, 1, size=(120, 3))
        weights = rng.uniform(0, 1, size=120)
        bulk = RTree.bulk_load(points, weights=weights)
        incremental = RTree(dimension=3, max_entries=8)
        for point, weight in zip(points, weights):
            incremental.insert(point, weight=weight)
        for _ in range(20):
            lo = rng.uniform(0, 0.5, size=3)
            hi = lo + rng.uniform(0, 0.5, size=3)
            assert incremental.window_aggregate(lo, hi) == pytest.approx(
                bulk.window_aggregate(lo, hi))

    def test_height_grows(self):
        tree = RTree(dimension=2, max_entries=4)
        rng = np.random.default_rng(7)
        for point in rng.uniform(0, 1, size=(200, 2)):
            tree.insert(point)
        assert tree.height() >= 3

    def test_window_entries(self):
        tree = RTree(dimension=2)
        tree.insert([0.1, 0.1], data="a")
        tree.insert([0.9, 0.9], data="b")
        entries = tree.window_entries([0.0, 0.0], [0.5, 0.5])
        assert [e.data for e in entries] == ["a"]


class TestWindowAggregates:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed + 50)
        points = rng.uniform(0, 1, size=(200, 3))
        weights = rng.uniform(0, 1, size=200)
        tree = RTree.bulk_load(points, weights=weights, max_entries=10)
        for _ in range(10):
            lo = rng.uniform(0, 0.6, size=3)
            hi = lo + rng.uniform(0, 0.6, size=3)
            assert tree.window_aggregate(lo, hi) == pytest.approx(
                brute_force_aggregate(points, weights, lo, hi))

    def test_unbounded_window(self):
        rng = np.random.default_rng(60)
        points = rng.uniform(0, 1, size=(60, 2))
        tree = RTree.bulk_load(points)
        lo = np.full(2, -np.inf)
        assert tree.window_aggregate(lo, [1.0, 1.0]) == pytest.approx(60.0)

    def test_dominance_window(self):
        """The exact query shape used by the B&B algorithm."""
        rng = np.random.default_rng(61)
        points = rng.uniform(0, 1, size=(100, 2))
        weights = rng.uniform(0, 1, size=100)
        tree = RTree.bulk_load(points, weights=weights)
        target = rng.uniform(0, 1, size=2)
        lo = np.full(2, -np.inf)
        expected = sum(w for p, w in zip(points, weights)
                       if np.all(p <= target))
        assert tree.window_aggregate(lo, target) == pytest.approx(expected)


class TestFlatRTree:
    def test_empty(self):
        tree = FlatRTree.bulk_load(np.empty((0, 3)))
        assert tree.size == 0 and tree.num_nodes == 0
        assert tree.window_aggregate([0, 0, 0], [1, 1, 1]) == 0.0
        assert np.array_equal(
            tree.window_aggregate_batch(np.zeros((2, 3)), np.ones((2, 3))),
            np.zeros(2))

    def test_level_order_layout(self):
        rng = np.random.default_rng(70)
        points = rng.uniform(0, 1, size=(200, 2))
        tree = FlatRTree.bulk_load(points, max_entries=8)
        assert tree.height() >= 2
        assert tree.level_offsets[0] == 0 and tree.level_offsets[1] == 1
        assert not tree.leaf[0]
        # Internal child spans point strictly downwards in level order.
        for node in np.flatnonzero(~tree.leaf):
            assert tree.child_start[node] > node
        # Payloads default to the original input positions.
        assert sorted(tree.payloads.tolist()) == list(range(200))

    def test_single_query_matches_batch(self):
        rng = np.random.default_rng(71)
        points = rng.uniform(0, 1, size=(150, 3))
        weights = rng.uniform(0, 1, size=150)
        tree = FlatRTree.bulk_load(points, weights=weights, max_entries=10)
        los = rng.uniform(0, 0.5, size=(15, 3))
        his = los + rng.uniform(0, 0.5, size=(15, 3))
        batch = tree.window_aggregate_batch(los, his)
        for q in range(15):
            assert tree.window_aggregate(los[q], his[q]) == pytest.approx(
                batch[q])
            assert batch[q] == pytest.approx(
                brute_force_aggregate(points, weights, los[q], his[q]))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            FlatRTree.bulk_load(np.zeros(5))
        tree = FlatRTree.bulk_load(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            tree.window_aggregate_batch(np.zeros((2, 3)), np.ones((2, 3)))


class TestRTreeForest:
    def test_insert_then_dominance_aggregate(self):
        rng = np.random.default_rng(80)
        forest = RTreeForest(num_trees=6, dimension=2, max_entries=4)
        points = rng.uniform(0, 1, size=(90, 2))
        weights = rng.uniform(0, 1, size=90)
        owners = rng.integers(0, 6, size=90)
        for point, weight, owner in zip(points, weights, owners):
            forest.insert(int(owner), point, weight=float(weight))
        assert int(forest.sizes.sum()) == 90
        corners = rng.uniform(0, 1, size=(7, 2))
        sigma = forest.dominance_aggregate(corners)
        assert sigma.shape == (7, 6)
        for row, corner in enumerate(corners):
            for tree_id in range(6):
                mask = (owners == tree_id) & np.all(points <= corner, axis=1)
                assert sigma[row, tree_id] == pytest.approx(
                    weights[mask].sum())

    def test_flush_builds_the_shared_block(self):
        rng = np.random.default_rng(81)
        forest = RTreeForest(num_trees=3, dimension=2, max_entries=4)
        for point in rng.uniform(0, 1, size=(40, 2)):
            forest.insert(0, point, weight=0.5)
        forest.flush()
        assert forest.pending_count == 0
        # 40 points at fan-out 4 cannot fit one leaf: tree 0 is multi-level.
        assert forest._tree_root[0] == 0
        assert forest._tree_root[1] == forest._tree_root[2] == -1
        assert not forest._node_leaf[0]
        assert forest.total_weights()[0] == pytest.approx(20.0)

    def test_size_doubling_merge_trigger(self):
        forest = RTreeForest(num_trees=1, dimension=2, max_entries=4)
        for step in range(16 + 1):
            forest.insert(0, [step * 0.01, step * 0.01])
        # The 17th insert crossed the 4 * max_entries floor and merged.
        assert forest.pending_count == 0
        assert forest.num_points == 17

    def test_validates_inputs(self):
        forest = RTreeForest(num_trees=2, dimension=3)
        with pytest.raises(ValueError):
            forest.insert(0, [1.0, 2.0])
        with pytest.raises(ValueError):
            forest.insert(5, [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            forest.dominance_aggregate(np.zeros((2, 2)))


class TestForestDeltas:
    """remove_tree / replace_tree: the delta paths of the scenario engine."""

    def _filled_forest(self, seed=90, num_trees=5, points_per_tree=12):
        rng = np.random.default_rng(seed)
        forest = RTreeForest(num_trees=num_trees, dimension=2, max_entries=4)
        per_tree = {}
        for tree_id in range(num_trees):
            pts = rng.uniform(0, 1, size=(points_per_tree, 2))
            per_tree[tree_id] = pts
            for point in pts:
                forest.insert(tree_id, point, weight=0.5)
        forest.flush()
        return forest, per_tree, rng

    def test_remove_tree_empties_its_aggregates(self):
        forest, per_tree, rng = self._filled_forest()
        forest.remove_tree(2)
        assert forest.sizes[2] == 0
        assert forest.total_weights()[2] == 0.0
        corners = rng.uniform(0, 1, size=(6, 2))
        sigma = forest.dominance_aggregate(corners)
        assert np.all(sigma[:, 2] == 0.0)
        # Other trees are untouched.
        for tree_id in (0, 1, 3, 4):
            pts = per_tree[tree_id]
            for row, corner in enumerate(corners):
                expected = 0.5 * np.count_nonzero(
                    np.all(pts <= corner, axis=1))
                assert sigma[row, tree_id] == pytest.approx(expected)

    def test_remove_tree_drops_pending_points_too(self):
        forest = RTreeForest(num_trees=2, dimension=2, max_entries=4)
        forest.insert(0, [0.1, 0.1])
        forest.insert(1, [0.2, 0.2])
        assert forest.pending_count == 2
        forest.remove_tree(0)
        assert forest.pending_count == 1
        assert forest.num_points == 1
        sigma = forest.dominance_aggregate(np.array([[1.0, 1.0]]))
        assert sigma[0].tolist() == [0.0, 1.0]

    def test_remove_tree_is_idempotent_on_dead_count(self):
        forest, _, _ = self._filled_forest()
        forest.remove_tree(1)
        dead = forest.dead_count
        forest.remove_tree(1)
        assert forest.dead_count == dead

    def test_remove_tree_range_check(self):
        forest = RTreeForest(num_trees=2, dimension=2)
        with pytest.raises(ValueError):
            forest.remove_tree(2)

    def test_dead_points_compact_at_half(self):
        """The size-halving mirror of the size-doubling insert trigger:
        once dead flat points outnumber live ones, the flat block is
        rebuilt without them."""
        forest, per_tree, _ = self._filled_forest(num_trees=5,
                                                  points_per_tree=10)
        forest.remove_tree(0)
        forest.remove_tree(1)
        assert forest.dead_count > 0  # 20 dead of 50: below the trigger
        forest.remove_tree(2)  # 30 dead of 50: compaction fires
        assert forest.dead_count == 0
        assert forest.num_points == 20

    def test_replace_tree_matches_fresh_forest(self):
        forest, per_tree, rng = self._filled_forest()
        replacement = rng.uniform(0, 1, size=(7, 2))
        forest.replace_tree(3, replacement,
                            weights=np.full(7, 0.25))
        corners = rng.uniform(0, 1, size=(5, 2))
        fresh = RTreeForest(num_trees=5, dimension=2, max_entries=4)
        for tree_id in (0, 1, 2, 4):
            for point in per_tree[tree_id]:
                fresh.insert(tree_id, point, weight=0.5)
        for point in replacement:
            fresh.insert(3, point, weight=0.25)
        assert np.allclose(forest.dominance_aggregate(corners),
                           fresh.dominance_aggregate(corners))
        assert np.allclose(forest.total_weights(), fresh.total_weights())

    def test_queries_identical_before_and_after_compaction(self):
        forest, per_tree, rng = self._filled_forest(num_trees=4,
                                                    points_per_tree=8)
        forest.remove_tree(0)
        corners = rng.uniform(0, 1, size=(6, 2))
        before = forest.dominance_aggregate(corners)
        forest.flush()  # force compaction of the dead block
        assert forest.dead_count == 0
        assert np.allclose(forest.dominance_aggregate(corners), before)

    def test_live_insert_trigger_ignores_dead_weight(self):
        """The size-doubling merge trigger counts live points only, so a
        forest dominated by dead points still buffers new inserts."""
        forest, _, _ = self._filled_forest(num_trees=5, points_per_tree=10)
        forest.remove_tree(0)
        forest.remove_tree(1)
        live_flat = forest.num_points
        forest.insert(2, [0.5, 0.5])
        assert forest.pending_count == 1  # no premature merge
        assert forest.num_points == live_flat + 1
