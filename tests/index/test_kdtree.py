"""Tests for the kd-tree index (repro.index.kdtree)."""

import numpy as np
import pytest

from repro.index.kdtree import INSIDE, OUTSIDE, PARTIAL, KDTree


def brute_force_range(points, lo, hi):
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    return sorted(i for i, p in enumerate(points)
                  if np.all(lo <= p) and np.all(p <= hi))


class TestConstruction:
    def test_empty_tree(self):
        tree = KDTree(np.empty((0, 2)))
        assert len(tree) == 0
        assert tree.range_indices([0, 0], [1, 1]) == []
        assert tree.range_weight([0, 0], [1, 1]) == 0.0

    def test_single_point(self):
        tree = KDTree(np.array([[0.5, 0.5]]))
        assert tree.range_indices([0, 0], [1, 1]) == [0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros(5))
        with pytest.raises(ValueError):
            KDTree(np.zeros((5, 2)), weights=np.ones(3))
        with pytest.raises(ValueError):
            KDTree(np.zeros((5, 2)), data=[1, 2])

    def test_identical_points_terminate(self):
        points = np.ones((100, 3))
        tree = KDTree(points, leaf_size=4)
        assert sorted(tree.range_indices([1, 1, 1], [1, 1, 1])) == list(
            range(100))

    def test_root_weight_sum(self):
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        tree = KDTree(np.random.default_rng(0).uniform(0, 1, (4, 2)),
                      weights=weights)
        assert tree.root.weight_sum == pytest.approx(1.0)


class TestRangeQueries:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("dimension", [1, 2, 3, 5])
    def test_range_indices_match_brute_force(self, seed, dimension):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 1, size=(200, dimension))
        tree = KDTree(points, leaf_size=7)
        lo = rng.uniform(0, 0.5, size=dimension)
        hi = lo + rng.uniform(0, 0.5, size=dimension)
        assert sorted(tree.range_indices(lo, hi)) == brute_force_range(
            points, lo, hi)

    @pytest.mark.parametrize("seed", range(5))
    def test_range_weight_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed + 100)
        points = rng.uniform(0, 1, size=(150, 3))
        weights = rng.uniform(0, 1, size=150)
        tree = KDTree(points, weights=weights, leaf_size=5)
        lo = rng.uniform(0, 0.5, size=3)
        hi = lo + rng.uniform(0, 0.5, size=3)
        expected = sum(weights[i]
                       for i in brute_force_range(points, lo, hi))
        assert tree.range_weight(lo, hi) == pytest.approx(expected)

    def test_full_range_returns_everything(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0, 1, size=(50, 2))
        tree = KDTree(points)
        assert sorted(tree.range_indices([0, 0], [1, 1])) == list(range(50))

    def test_empty_range(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0, 1, size=(50, 2))
        tree = KDTree(points)
        assert tree.range_indices([2, 2], [3, 3]) == []


class TestGeneralisedQueries:
    def halfplane_query(self, tree, points, weights, a, b):
        """Aggregate weight of points with a·x <= b, via the classifier API."""

        def classifier(lo, hi):
            # a >= 0 in these tests, so the extremes sit at the corners.
            if np.dot(a, hi) <= b:
                return INSIDE
            if np.dot(a, lo) > b:
                return OUTSIDE
            return PARTIAL

        def predicate(point):
            return np.dot(a, point) <= b

        return tree.aggregate(classifier, predicate)

    @pytest.mark.parametrize("seed", range(5))
    def test_halfplane_aggregate_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 1, size=(120, 2))
        weights = rng.uniform(0, 1, size=120)
        tree = KDTree(points, weights=weights, leaf_size=6)
        a = rng.uniform(0, 1, size=2)
        b = rng.uniform(0.2, 1.2)
        expected = sum(w for p, w in zip(points, weights)
                       if np.dot(a, p) <= b)
        actual = self.halfplane_query(tree, points, weights, a, b)
        assert actual == pytest.approx(expected)

    def test_report_matches_predicate(self):
        rng = np.random.default_rng(11)
        points = rng.uniform(0, 1, size=(80, 2))
        tree = KDTree(points, leaf_size=4)
        a = np.array([1.0, 1.0])
        b = 1.0

        def classifier(lo, hi):
            if np.dot(a, hi) <= b:
                return INSIDE
            if np.dot(a, lo) > b:
                return OUTSIDE
            return PARTIAL

        reported = sorted(tree.report(classifier,
                                      lambda p: np.dot(a, p) <= b))
        expected = sorted(i for i, p in enumerate(points)
                          if np.dot(a, p) <= b)
        assert reported == expected

    def test_any_match_true_and_false(self):
        points = np.array([[0.9, 0.9], [0.8, 0.95]])
        tree = KDTree(points)

        def classifier(lo, hi):
            if np.all(hi <= 0.5):
                return INSIDE
            if np.any(lo > 0.5):
                return OUTSIDE
            return PARTIAL

        assert not tree.any_match(classifier,
                                  lambda p: bool(np.all(p <= 0.5)))
        points2 = np.array([[0.2, 0.3], [0.8, 0.95]])
        tree2 = KDTree(points2)
        assert tree2.any_match(classifier,
                               lambda p: bool(np.all(p <= 0.5)))

    def test_any_match_empty_tree(self):
        tree = KDTree(np.empty((0, 2)))
        assert not tree.any_match(lambda lo, hi: PARTIAL, lambda p: True)


class TestBatchedQueries:
    def make_halfplane(self, a, b):
        def batch_classifier(los, his):
            hi_values = his @ a
            lo_values = los @ a
            return np.where(hi_values <= b, INSIDE,
                            np.where(lo_values > b, OUTSIDE, PARTIAL))

        def batch_predicate(points):
            return points @ a <= b

        return batch_classifier, batch_predicate

    @pytest.mark.parametrize("seed", range(5))
    def test_aggregate_frontier_matches_scalar_aggregate(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 1, size=(150, 2))
        weights = rng.uniform(0, 1, size=150)
        tree = KDTree(points, weights=weights, leaf_size=6)
        a = rng.uniform(0, 1, size=2)
        b = rng.uniform(0.2, 1.2)
        batch_classifier, batch_predicate = self.make_halfplane(a, b)

        def classifier(lo, hi):
            return int(batch_classifier(lo[None, :], hi[None, :])[0])

        scalar = tree.aggregate(classifier, lambda p: np.dot(a, p) <= b)
        frontier = tree.aggregate_frontier(batch_classifier, batch_predicate)
        assert frontier == pytest.approx(scalar)

    def test_aggregate_with_batch_predicate_matches_pointwise(self):
        rng = np.random.default_rng(17)
        points = rng.uniform(0, 1, size=(100, 3))
        weights = rng.uniform(0, 1, size=100)
        tree = KDTree(points, weights=weights, leaf_size=5)
        a = rng.uniform(0, 1, size=3)
        b = 1.0
        batch_classifier, batch_predicate = self.make_halfplane(a, b)

        def classifier(lo, hi):
            return int(batch_classifier(lo[None, :], hi[None, :])[0])

        pointwise = tree.aggregate(classifier, lambda p: np.dot(a, p) <= b)
        batched = tree.aggregate(classifier, lambda p: np.dot(a, p) <= b,
                                 batch_predicate=batch_predicate)
        assert batched == pytest.approx(pointwise)

    def test_aggregate_frontier_empty_tree(self):
        tree = KDTree(np.empty((0, 2)))
        assert tree.aggregate_frontier(
            lambda los, his: np.full(len(los), PARTIAL),
            lambda points: np.ones(len(points), dtype=bool)) == 0.0
