"""Tests for the algorithm registry."""

import pytest

from repro.algorithms import ALGORITHMS, get_algorithm, list_algorithms
from repro.algorithms.branch_and_bound import branch_and_bound_arsp
from repro.algorithms.registry import canonical_name


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        expected = {"enum", "loop", "kdtt", "kdtt+", "qdtt+", "bnb", "dual",
                    "dual-ms"}
        assert expected == set(ALGORITHMS)

    def test_list_is_sorted(self):
        names = list_algorithms()
        assert names == sorted(names)

    def test_lookup_canonical(self):
        assert get_algorithm("bnb") is branch_and_bound_arsp

    def test_lookup_alias(self):
        assert get_algorithm("B&B") is branch_and_bound_arsp
        assert get_algorithm("branch-and-bound") is branch_and_bound_arsp
        assert get_algorithm("KDTTPLUS") is ALGORITHMS["kdtt+"]
        assert get_algorithm("dualms") is ALGORITHMS["dual-ms"]

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("LOOP") is ALGORITHMS["loop"]

    def test_canonical_name(self):
        assert canonical_name("B&B") == "bnb"
        assert canonical_name("dualms") == "dual-ms"
        assert canonical_name(" KDTT+ ") == "kdtt+"
        with pytest.raises(KeyError, match="unknown ARSP algorithm"):
            canonical_name("kdt")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_algorithm("magic")

    def test_callables(self):
        for name in list_algorithms():
            assert callable(get_algorithm(name))
