"""Tests for the ENUM and LOOP baselines."""

import pytest

from repro import LinearConstraints
from repro.algorithms import enum_arsp, loop_arsp
from repro.algorithms.enum_baseline import DEFAULT_MAX_WORLDS
from repro.core.possible_worlds import brute_force_arsp
from tests.conftest import assert_results_close, make_random_dataset


class TestEnum:
    def test_matches_brute_force(self, small_dataset_3d, wr_constraints_3d):
        expected = brute_force_arsp(small_dataset_3d, wr_constraints_3d)
        assert_results_close(expected,
                             enum_arsp(small_dataset_3d, wr_constraints_3d))

    def test_world_limit_enforced(self):
        dataset = make_random_dataset(seed=1, num_objects=30,
                                      max_instances=4, dimension=2)
        constraints = LinearConstraints.weak_ranking(2)
        with pytest.raises(ValueError, match="possible worlds"):
            enum_arsp(dataset, constraints, max_worlds=1000)

    def test_world_limit_can_be_disabled(self, example1_dataset,
                                         ratio_constraints_2d):
        result = enum_arsp(example1_dataset, ratio_constraints_2d,
                           max_worlds=None)
        assert result[0] == pytest.approx(2.0 / 9.0)

    def test_default_limit_is_large(self):
        assert DEFAULT_MAX_WORLDS >= 10 ** 6

    def test_probabilities_clamped(self, small_dataset_3d, wr_constraints_3d):
        result = enum_arsp(small_dataset_3d, wr_constraints_3d)
        assert all(0.0 <= value <= 1.0 for value in result.values())


class TestLoop:
    def test_matches_brute_force(self, small_dataset_3d, wr_constraints_3d):
        expected = brute_force_arsp(small_dataset_3d, wr_constraints_3d)
        assert_results_close(expected,
                             loop_arsp(small_dataset_3d, wr_constraints_3d))

    def test_single_object(self):
        dataset = make_random_dataset(seed=2, num_objects=1,
                                      max_instances=3, dimension=3)
        constraints = LinearConstraints.weak_ranking(3)
        result = loop_arsp(dataset, constraints)
        for instance in dataset.instances:
            assert result[instance.instance_id] == pytest.approx(
                instance.probability)

    def test_single_instance_objects(self):
        dataset = make_random_dataset(seed=3, num_objects=8,
                                      max_instances=1, dimension=2)
        constraints = LinearConstraints.weak_ranking(2)
        expected = brute_force_arsp(dataset, constraints)
        assert_results_close(expected, loop_arsp(dataset, constraints))

    def test_result_covers_every_instance(self, small_dataset_3d,
                                          wr_constraints_3d):
        result = loop_arsp(small_dataset_3d, wr_constraints_3d)
        assert set(result) == {inst.instance_id
                               for inst in small_dataset_3d.instances}

    def test_dimension_mismatch_raises(self, small_dataset_3d):
        with pytest.raises(ValueError, match="dimension"):
            loop_arsp(small_dataset_3d, LinearConstraints.weak_ranking(4))
