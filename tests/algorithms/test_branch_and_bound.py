"""Tests for the branch-and-bound algorithm (Algorithm 2)."""

import pytest

from repro import LinearConstraints, UncertainDataset, WeightRatioConstraints
from repro.algorithms import branch_and_bound_arsp, loop_arsp
from repro.core.possible_worlds import brute_force_arsp
from tests.conftest import assert_results_close, make_random_dataset


class TestBranchAndBound:
    def test_matches_ground_truth(self, small_dataset_3d, wr_constraints_3d):
        expected = brute_force_arsp(small_dataset_3d, wr_constraints_3d)
        actual = branch_and_bound_arsp(small_dataset_3d, wr_constraints_3d)
        assert_results_close(expected, actual)

    def test_example1(self, example1_dataset, ratio_constraints_2d):
        result = branch_and_bound_arsp(example1_dataset, ratio_constraints_2d)
        assert result[0] == pytest.approx(2.0 / 9.0)
        assert result[1] == pytest.approx(0.0)

    @pytest.mark.parametrize("max_entries", [4, 8, 32])
    def test_fanout_does_not_change_result(self, max_entries):
        dataset = make_random_dataset(seed=41, num_objects=25,
                                      max_instances=3, dimension=3)
        constraints = LinearConstraints.weak_ranking(3)
        reference = loop_arsp(dataset, constraints)
        actual = branch_and_bound_arsp(dataset, constraints,
                                       max_entries=max_entries)
        assert_results_close(reference, actual)

    def test_single_instance_dataset(self):
        dataset = UncertainDataset.from_instance_lists([[(0.3, 0.4)]],
                                                       [[0.7]])
        constraints = LinearConstraints.weak_ranking(2)
        result = branch_and_bound_arsp(dataset, constraints)
        assert result[0] == pytest.approx(0.7)

    def test_pruning_set_correctness_with_certain_dominator(self):
        """One certain object near the origin zeroes almost everything."""
        dataset = UncertainDataset.from_instance_lists(
            [
                [(0.01, 0.01, 0.01)],
                [(0.5, 0.6, 0.7), (0.8, 0.2, 0.9)],
                [(0.9, 0.9, 0.9)],
                [(0.005, 0.5, 0.5), (0.3, 0.005, 0.3)],
            ],
            [[1.0], [0.5, 0.5], [1.0], [0.5, 0.5]])
        constraints = LinearConstraints.weak_ranking(3)
        expected = brute_force_arsp(dataset, constraints)
        actual = branch_and_bound_arsp(dataset, constraints)
        assert_results_close(expected, actual)
        # Instances Pareto-dominated by the certain object must be zero.
        assert actual[1] == pytest.approx(0.0)
        assert actual[3] == pytest.approx(0.0)

    def test_tied_scores_under_sort_vertex(self):
        """Instances with equal first-vertex scores must see each other."""
        dataset = UncertainDataset.from_instance_lists(
            [
                [(1.0, 3.0)],      # score under (1,0) is 1
                [(1.0, 2.0)],      # same first-vertex score, dominates above
                [(2.0, 2.0)],
            ],
            [[1.0], [1.0], [1.0]])
        constraints = LinearConstraints.unconstrained(2)
        expected = brute_force_arsp(dataset, constraints)
        actual = branch_and_bound_arsp(dataset, constraints)
        assert_results_close(expected, actual)
        assert actual[0] == pytest.approx(0.0)

    def test_weight_ratio_constraints(self):
        dataset = make_random_dataset(seed=43, num_objects=6,
                                      max_instances=3, dimension=3)
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
        expected = brute_force_arsp(dataset, constraints)
        assert_results_close(expected,
                             branch_and_bound_arsp(dataset, constraints))

    def test_dimension_mismatch(self, small_dataset_3d):
        with pytest.raises(ValueError, match="dimension"):
            branch_and_bound_arsp(small_dataset_3d,
                                  LinearConstraints.weak_ranking(2))

    def test_incomplete_objects_never_enter_pruning_set(self):
        """Objects with mass < 1 must not zero out dominated instances."""
        dataset = UncertainDataset.from_instance_lists(
            [
                [(0.1, 0.1)],        # mass 0.5 only
                [(0.9, 0.9)],
            ],
            [[0.5], [1.0]])
        constraints = LinearConstraints.weak_ranking(2)
        result = branch_and_bound_arsp(dataset, constraints)
        assert result[1] == pytest.approx(0.5)

    def test_ulp_level_score_ties_count_in_both_directions(self):
        """Regression: a degenerate single-vertex region maps these two
        points to scores that differ only in the last ulp.  The σ window
        aggregate must apply the same SCORE_ATOL-tolerant weak dominance
        as every other algorithm, so the tie is mutual — not one-sided."""
        constraints = WeightRatioConstraints([(0.75, 0.75), (2.0, 2.0)])
        dataset = UncertainDataset.from_instance_lists(
            [[(1.0, 1.0, 3.0)], [(1.0, 2.0, 1.0)]],
            [[0.5], [0.5]])
        expected = brute_force_arsp(dataset, constraints)
        assert expected == {0: 0.25, 1: 0.25}
        assert_results_close(expected,
                             branch_and_bound_arsp(dataset, constraints))
