"""Integration tests: every algorithm agrees with the ground truth.

This is the central correctness guarantee of the package: on datasets small
enough to enumerate all possible worlds, every polynomial algorithm must
return exactly the probabilities of the brute-force definition (equation (2)
of the paper), for every combination of data distribution, constraint family
and incompleteness setting.
"""

import pytest

from repro import LinearConstraints, UncertainDataset, WeightRatioConstraints
from repro.algorithms import (branch_and_bound_arsp, dual_arsp, dual_ms_arsp,
                              kdtree_traversal_arsp, loop_arsp,
                              quadtree_traversal_arsp)
from repro.core.possible_worlds import brute_force_arsp
from repro.data.constraints import interactive_constraints
from tests.conftest import assert_results_close, make_random_dataset

GENERAL_ALGORITHMS = {
    "loop": loop_arsp,
    "kdtt": lambda d, c: kdtree_traversal_arsp(d, c, integrated=False),
    "kdtt+": kdtree_traversal_arsp,
    "qdtt+": quadtree_traversal_arsp,
    "bnb": branch_and_bound_arsp,
}


class TestAgainstGroundTruthLinearConstraints:
    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    @pytest.mark.parametrize("distribution", ["IND", "ANTI", "CORR"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_weak_ranking(self, algorithm, distribution, seed):
        dataset = make_random_dataset(seed=seed, num_objects=6,
                                      max_instances=3, dimension=3,
                                      distribution=distribution)
        constraints = LinearConstraints.weak_ranking(3)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    @pytest.mark.parametrize("seed", [4, 5])
    def test_incomplete_objects(self, algorithm, seed):
        dataset = make_random_dataset(seed=seed, num_objects=6,
                                      max_instances=3, dimension=3,
                                      incomplete_fraction=0.5)
        constraints = LinearConstraints.weak_ranking(3)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    @pytest.mark.parametrize("dimension", [2, 4])
    def test_other_dimensions(self, algorithm, dimension):
        dataset = make_random_dataset(seed=11, num_objects=5,
                                      max_instances=3, dimension=dimension)
        constraints = LinearConstraints.weak_ranking(dimension)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    def test_unconstrained_simplex(self, algorithm):
        dataset = make_random_dataset(seed=13, num_objects=6,
                                      max_instances=3, dimension=3)
        constraints = LinearConstraints.unconstrained(3)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    @pytest.mark.parametrize("seed", [21, 22])
    def test_interactive_constraints(self, algorithm, seed):
        dataset = make_random_dataset(seed=seed, num_objects=5,
                                      max_instances=3, dimension=3)
        constraints = interactive_constraints(3, 3, seed=seed)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    def test_example1(self, algorithm, example1_dataset,
                      ratio_constraints_2d):
        linear = ratio_constraints_2d.to_linear_constraints()
        expected = brute_force_arsp(example1_dataset, linear)
        actual = GENERAL_ALGORITHMS[algorithm](example1_dataset, linear)
        assert_results_close(expected, actual)
        assert actual[0] == pytest.approx(2.0 / 9.0)


RATIO_ALGORITHMS = {
    "kdtt+": kdtree_traversal_arsp,
    "qdtt+": quadtree_traversal_arsp,
    "bnb": branch_and_bound_arsp,
    "dual": dual_arsp,
}


class TestAgainstGroundTruthRatioConstraints:
    @pytest.mark.parametrize("algorithm", sorted(RATIO_ALGORITHMS))
    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_random_3d(self, algorithm, seed):
        dataset = make_random_dataset(seed=seed, num_objects=6,
                                      max_instances=3, dimension=3,
                                      incomplete_fraction=0.3)
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.25, 3.0)])
        expected = brute_force_arsp(dataset, constraints)
        actual = RATIO_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(RATIO_ALGORITHMS))
    def test_tight_ranges(self, algorithm):
        dataset = make_random_dataset(seed=9, num_objects=6,
                                      max_instances=3, dimension=3)
        constraints = WeightRatioConstraints([(0.95, 1.05), (0.95, 1.05)])
        expected = brute_force_arsp(dataset, constraints)
        actual = RATIO_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_dual_ms_2d(self, seed):
        dataset = make_random_dataset(seed=seed, num_objects=7,
                                      max_instances=3, dimension=2,
                                      incomplete_fraction=0.3)
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        expected = brute_force_arsp(dataset, constraints)
        assert_results_close(expected, dual_ms_arsp(dataset, constraints))

    def test_dual_ms_example1(self, example1_dataset, ratio_constraints_2d):
        expected = brute_force_arsp(example1_dataset, ratio_constraints_2d)
        actual = dual_ms_arsp(example1_dataset, ratio_constraints_2d)
        assert_results_close(expected, actual)


class TestTies:
    """Exact coordinate ties are the edge case DESIGN.md §6 calls out."""

    def tie_dataset(self) -> UncertainDataset:
        return UncertainDataset.from_instance_lists(
            [
                [(1.0, 1.0), (2.0, 3.0)],
                [(1.0, 1.0)],
                [(1.0, 1.0), (3.0, 0.5)],
                [(4.0, 4.0)],
            ],
            [[0.5, 0.5], [1.0], [0.5, 0.5], [1.0]])

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    def test_duplicate_points_linear(self, algorithm):
        dataset = self.tie_dataset()
        constraints = LinearConstraints.weak_ranking(2)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(RATIO_ALGORITHMS) + ["dual-ms"])
    def test_duplicate_points_ratio(self, algorithm):
        dataset = self.tie_dataset()
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        expected = brute_force_arsp(dataset, constraints)
        implementation = (dual_ms_arsp if algorithm == "dual-ms"
                          else RATIO_ALGORITHMS[algorithm])
        actual = implementation(dataset, constraints)
        assert_results_close(expected, actual)

    @pytest.mark.parametrize("algorithm", sorted(GENERAL_ALGORITHMS))
    def test_saturated_object_on_grid(self, algorithm):
        """A fully-certain object sitting exactly on other instances."""
        dataset = UncertainDataset.from_instance_lists(
            [
                [(1.0, 2.0)],
                [(1.0, 2.0), (0.5, 3.0)],
                [(2.0, 2.0), (1.0, 3.0)],
            ],
            [[1.0], [0.5, 0.5], [0.4, 0.4]])
        constraints = LinearConstraints.weak_ranking(2)
        expected = brute_force_arsp(dataset, constraints)
        actual = GENERAL_ALGORITHMS[algorithm](dataset, constraints)
        assert_results_close(expected, actual)


class TestCrossAlgorithmAgreement:
    """On datasets too large to enumerate, all algorithms must still agree."""

    @pytest.mark.parametrize("distribution", ["IND", "ANTI", "CORR"])
    def test_medium_dataset_all_algorithms_agree(self, distribution):
        dataset = make_random_dataset(seed=31, num_objects=40,
                                      max_instances=4, dimension=3,
                                      incomplete_fraction=0.2,
                                      distribution=distribution)
        constraints = LinearConstraints.weak_ranking(3)
        reference = loop_arsp(dataset, constraints)
        for name, implementation in GENERAL_ALGORITHMS.items():
            if name == "loop":
                continue
            assert_results_close(reference, implementation(dataset,
                                                           constraints))

    def test_medium_dataset_ratio_algorithms_agree(self):
        dataset = make_random_dataset(seed=32, num_objects=40,
                                      max_instances=4, dimension=2,
                                      incomplete_fraction=0.2)
        constraints = WeightRatioConstraints([(0.4, 2.5)])
        reference = loop_arsp(dataset, constraints)
        for implementation in (kdtree_traversal_arsp, branch_and_bound_arsp,
                               dual_arsp, dual_ms_arsp):
            assert_results_close(reference, implementation(dataset,
                                                           constraints))
