"""Tests for the DUAL algorithm (half-space based, weight ratio constraints)."""

import numpy as np
import pytest

from repro import LinearConstraints, WeightRatioConstraints
from repro.algorithms import dual_arsp, loop_arsp
from repro.algorithms.dual import DualIndex
from repro.core.dominance import weight_ratio_f_dominates
from repro.core.possible_worlds import brute_force_arsp
from tests.conftest import assert_results_close, make_random_dataset


class TestDualIndex:
    def test_dominating_mass_matches_direct_computation(self):
        dataset = make_random_dataset(seed=51, num_objects=5,
                                      max_instances=4, dimension=3)
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.25, 4.0)])
        index = DualIndex(dataset)
        rng = np.random.default_rng(0)
        for _ in range(20):
            target = rng.uniform(0, 1, size=3)
            object_id = int(rng.integers(0, dataset.num_objects))
            expected = sum(
                inst.probability for inst in dataset.object(object_id)
                if weight_ratio_f_dominates(inst.values, target, constraints))
            actual = index.dominating_mass(target, object_id, constraints)
            assert actual == pytest.approx(expected)

    def test_index_is_reusable_across_constraints(self):
        dataset = make_random_dataset(seed=52, num_objects=6,
                                      max_instances=3, dimension=2)
        index = DualIndex(dataset)
        for low, high in [(0.5, 2.0), (0.9, 1.1), (0.1, 9.0)]:
            constraints = WeightRatioConstraints([(low, high)])
            expected = brute_force_arsp(dataset, constraints)
            assert_results_close(expected, index.query(constraints))

    def test_query_dimension_mismatch(self):
        dataset = make_random_dataset(seed=53, dimension=3)
        index = DualIndex(dataset)
        with pytest.raises(ValueError, match="dimension"):
            index.query(WeightRatioConstraints([(0.5, 2.0)]))

    def test_per_constraint_cache_regression(self):
        """Pin the PR 2 result cache: repeating a constraint set must be a
        cache hit (the counter advances) and must return exactly the same
        result, for every constraint box in a sweep, also after other
        constraint boxes were interleaved."""
        dataset = make_random_dataset(seed=58, num_objects=20,
                                      max_instances=4, dimension=3,
                                      incomplete_fraction=0.25)
        index = DualIndex(dataset)
        sweep = [WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)]),
                 WeightRatioConstraints([(0.25, 4.0), (0.5, 2.0)]),
                 WeightRatioConstraints([(0.9, 1.1), (0.9, 1.1)])]
        first_pass = [index.query(constraints) for constraints in sweep]
        assert index.query_cache_hits == 0
        for expected_hits, (constraints, first) in enumerate(
                zip(sweep, first_pass), start=1):
            repeat = index.query(constraints)
            assert index.query_cache_hits == expected_hits
            assert repeat == first  # bitwise identical, not merely close
        # The cached copies are isolated: mutating a returned dict must not
        # poison later hits.
        poisoned = index.query(sweep[0])
        poisoned[next(iter(poisoned))] = -1.0
        assert index.query(sweep[0]) == first_pass[0]


class TestDualArsp:
    def test_matches_ground_truth(self):
        dataset = make_random_dataset(seed=54, num_objects=6,
                                      max_instances=3, dimension=3,
                                      incomplete_fraction=0.3)
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
        expected = brute_force_arsp(dataset, constraints)
        assert_results_close(expected, dual_arsp(dataset, constraints))

    def test_rejects_linear_constraints(self, small_dataset_3d):
        with pytest.raises(TypeError):
            dual_arsp(small_dataset_3d, LinearConstraints.weak_ranking(3))

    def test_matches_loop_on_larger_input(self):
        dataset = make_random_dataset(seed=55, num_objects=30,
                                      max_instances=4, dimension=3)
        constraints = WeightRatioConstraints([(0.3, 3.0), (0.3, 3.0)])
        assert_results_close(loop_arsp(dataset, constraints),
                             dual_arsp(dataset, constraints))

    def test_leaf_size_does_not_change_result(self):
        dataset = make_random_dataset(seed=56, num_objects=10,
                                      max_instances=4, dimension=2)
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        reference = dual_arsp(dataset, constraints, leaf_size=2)
        assert_results_close(reference,
                             dual_arsp(dataset, constraints, leaf_size=64))

    def test_wide_range_approaches_skyline_probabilities(self):
        """A very wide ratio range behaves like the unconstrained case for
        instances whose dominators are Pareto dominators."""
        dataset = make_random_dataset(seed=57, num_objects=8,
                                      max_instances=2, dimension=2)
        wide = WeightRatioConstraints([(1e-6, 1e6)])
        result = dual_arsp(dataset, wide)
        skyline = brute_force_arsp(dataset,
                                   LinearConstraints.unconstrained(2))
        for key, value in result.items():
            assert value <= skyline[key] + 1e-9
