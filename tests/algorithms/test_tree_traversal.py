"""Tests for the kd-ASP* traversal engine and its KDTT/QDTT front-ends."""

import numpy as np
import pytest

from repro import LinearConstraints
from repro.algorithms.base import (SaturationTracker, build_score_space,
                                   empty_result)
from repro.algorithms.kdtree_traversal import kdtree_traversal_arsp
from repro.algorithms.quadtree_traversal import quadtree_traversal_arsp
from repro.algorithms.tree_traversal import (kd_partition, quad_partition,
                                             traverse_arsp)
from repro.core.possible_worlds import brute_force_arsp
from tests.conftest import assert_results_close, make_random_dataset


class TestSaturationTracker:
    def test_add_updates_beta(self):
        tracker = SaturationTracker(3)
        tracker.add(0, 0.5)
        assert tracker.beta == pytest.approx(0.5)
        tracker.add(1, 0.25)
        assert tracker.beta == pytest.approx(0.375)
        assert tracker.chi == 0

    def test_saturation_detection(self):
        tracker = SaturationTracker(2)
        tracker.add(0, 0.6)
        tracker.add(0, 0.4)
        assert tracker.chi == 1
        assert 0 in tracker.saturated
        # beta now excludes object 0 entirely.
        assert tracker.beta == pytest.approx(1.0)

    def test_remove_restores_state(self):
        tracker = SaturationTracker(2)
        tracker.add(0, 0.6)
        tracker.add(1, 0.3)
        tracker.add(0, 0.4)          # saturates object 0
        tracker.remove(0, 0.4)
        tracker.remove(1, 0.3)
        tracker.remove(0, 0.6)
        assert tracker.chi == 0
        assert tracker.beta == pytest.approx(1.0)
        np.testing.assert_allclose(tracker.sigma, [0.0, 0.0])

    def test_probability_for_excludes_own_object(self):
        tracker = SaturationTracker(2)
        tracker.add(0, 0.5)     # half of object 0 dominates
        tracker.add(1, 0.25)
        # An instance of object 0 only sees object 1's factor.
        assert tracker.probability_for(0, 0.5) == pytest.approx(0.5 * 0.75)
        # An instance of object 1 only sees object 0's factor.
        assert tracker.probability_for(1, 0.1) == pytest.approx(0.1 * 0.5)

    def test_probability_for_with_other_saturated(self):
        tracker = SaturationTracker(2)
        tracker.add(0, 1.0)
        assert tracker.probability_for(1, 0.5) == 0.0
        assert tracker.probability_for(0, 0.5) == pytest.approx(0.5)

    @pytest.mark.parametrize("additions", [
        [],
        [(0, 0.5), (1, 0.25)],
        [(0, 1.0)],
        [(0, 1.0), (1, 1.0)],
        [(0, 0.6), (0, 0.4), (2, 0.3)],
    ])
    def test_probabilities_for_matches_scalar(self, additions):
        tracker = SaturationTracker(3)
        for object_id, probability in additions:
            tracker.add(object_id, probability)
        object_ids = np.array([0, 1, 2, 0, 1])
        probabilities = np.array([0.5, 0.25, 1.0, 0.1, 0.9])
        batched = tracker.probabilities_for(object_ids, probabilities)
        for k in range(len(object_ids)):
            assert batched[k] == tracker.probability_for(
                int(object_ids[k]), float(probabilities[k]))


class TestPartitions:
    def test_kd_partition_splits_in_two(self):
        scores = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        indices = np.arange(4)
        parts = kd_partition(scores, indices, scores.min(0), scores.max(0))
        assert len(parts) == 2
        assert sorted(np.concatenate(parts).tolist()) == [0, 1, 2, 3]

    def test_quad_partition_covers_everything(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(0, 1, size=(50, 3))
        indices = np.arange(50)
        parts = quad_partition(scores, indices, scores.min(0), scores.max(0))
        assert len(parts) >= 2
        assert sorted(np.concatenate(parts).tolist()) == list(range(50))

    def test_quad_partition_separates_distinct_points(self):
        scores = np.array([[0.0, 0.0], [1.0, 1.0]])
        parts = quad_partition(scores, np.arange(2), scores.min(0),
                               scores.max(0))
        assert len(parts) == 2


class TestTraversalEngine:
    def build(self, seed=17, dimension=3):
        dataset = make_random_dataset(seed=seed, num_objects=6,
                                      max_instances=3, dimension=dimension)
        constraints = LinearConstraints.weak_ranking(dimension)
        return dataset, constraints

    def test_stats_reported(self):
        dataset, constraints = self.build()
        space = build_score_space(dataset, constraints)
        result = empty_result(dataset)
        stats = traverse_arsp(space, result, kd_partition)
        assert stats["nodes"] >= stats["leaves"] >= 1

    def test_pruning_reduces_nodes(self):
        # A dataset with one certain dominating object prunes most subtrees.
        dataset = make_random_dataset(seed=19, num_objects=20,
                                      max_instances=2, dimension=2,
                                      distribution="CORR")
        constraints = LinearConstraints.weak_ranking(2)
        space = build_score_space(dataset, constraints)
        pruned_result = empty_result(dataset)
        pruned_stats = traverse_arsp(space, pruned_result, kd_partition,
                                     prune_construction=True)
        full_result = empty_result(dataset)
        full_stats = traverse_arsp(space, full_result, kd_partition,
                                   prune_construction=False)
        assert pruned_stats["nodes"] <= full_stats["nodes"]
        assert_results_close(full_result, pruned_result)

    def test_empty_dataset_handled(self):
        dataset, constraints = self.build()
        space = build_score_space(dataset, constraints)
        space.scores = np.empty((0, space.scores.shape[1]))
        space.probabilities = np.empty(0)
        space.object_ids = np.empty(0, dtype=int)
        space.instance_ids = np.empty(0, dtype=int)
        stats = traverse_arsp(space, {}, kd_partition)
        assert stats["nodes"] == 0


class TestFrontEnds:
    @pytest.mark.parametrize("integrated", [True, False])
    def test_kdtt_variants_match_ground_truth(self, integrated):
        dataset = make_random_dataset(seed=23, num_objects=6,
                                      max_instances=3, dimension=3)
        constraints = LinearConstraints.weak_ranking(3)
        expected = brute_force_arsp(dataset, constraints)
        actual = kdtree_traversal_arsp(dataset, constraints,
                                       integrated=integrated)
        assert_results_close(expected, actual)

    def test_qdtt_matches_kdtt(self):
        dataset = make_random_dataset(seed=29, num_objects=30,
                                      max_instances=3, dimension=4)
        constraints = LinearConstraints.weak_ranking(4)
        assert_results_close(kdtree_traversal_arsp(dataset, constraints),
                             quadtree_traversal_arsp(dataset, constraints))

    def test_dimension_mismatch(self):
        dataset = make_random_dataset(seed=1, dimension=3)
        with pytest.raises(ValueError, match="dimension"):
            kdtree_traversal_arsp(dataset, LinearConstraints.weak_ranking(2))

    def test_deep_degenerate_input_does_not_overflow(self):
        """Exponentially spaced collinear points force deep partitions."""
        values = [0.97 ** i for i in range(300)]
        instance_lists = [[(v, v)] for v in values]
        from repro import UncertainDataset
        dataset = UncertainDataset.from_instance_lists(instance_lists)
        constraints = LinearConstraints.weak_ranking(2)
        result = quadtree_traversal_arsp(dataset, constraints)
        # Only the smallest point survives; everything else is dominated by
        # the certain object below it.
        assert sum(1 for v in result.values() if v > 0) == 1
