"""Tests for the ASP special case (all skyline probabilities)."""

import numpy as np
import pytest

from repro import LinearConstraints, UncertainDataset, compute_asp
from repro.algorithms.asp import (compute_skyline_probabilities,
                                  identity_region,
                                  object_skyline_probabilities)
from repro.core.possible_worlds import brute_force_arsp
from tests.conftest import assert_results_close, make_random_dataset


class TestIdentityRegion:
    def test_identity_scores(self):
        region = identity_region(3)
        np.testing.assert_allclose(region.score([1.0, 2.0, 3.0]),
                                   [1.0, 2.0, 3.0])

    def test_vertex_count(self):
        assert identity_region(4).num_vertices == 4


class TestComputeAsp:
    def test_matches_unconstrained_arsp(self, small_dataset_3d):
        expected = brute_force_arsp(small_dataset_3d,
                                    LinearConstraints.unconstrained(3))
        assert_results_close(expected, compute_asp(small_dataset_3d))

    def test_alias(self, small_dataset_3d):
        assert compute_asp(small_dataset_3d) == pytest.approx(
            compute_skyline_probabilities(small_dataset_3d))

    def test_skyline_probability_upper_bounds_rskyline(self, small_dataset_3d,
                                                       wr_constraints_3d):
        from repro import compute_arsp
        asp = compute_asp(small_dataset_3d)
        arsp = compute_arsp(small_dataset_3d, wr_constraints_3d,
                            algorithm="kdtt+")
        for key in asp:
            assert arsp[key] <= asp[key] + 1e-9

    def test_certain_dataset_skyline_members_get_probability_one(self):
        points = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)]
        dataset = UncertainDataset.from_certain_points(points)
        asp = compute_asp(dataset)
        assert asp[0] == pytest.approx(1.0)
        assert asp[1] == pytest.approx(1.0)
        assert asp[2] == pytest.approx(1.0)
        assert asp[3] == pytest.approx(0.0)

    def test_object_aggregation(self):
        dataset = make_random_dataset(seed=71, num_objects=5,
                                      max_instances=3, dimension=2)
        per_instance = compute_asp(dataset)
        per_object = object_skyline_probabilities(dataset)
        for obj in dataset.objects:
            expected = sum(per_instance[inst.instance_id] for inst in obj)
            assert per_object[obj.object_id] == pytest.approx(expected)

    def test_higher_dimension(self):
        dataset = make_random_dataset(seed=72, num_objects=5,
                                      max_instances=2, dimension=5)
        expected = brute_force_arsp(dataset,
                                    LinearConstraints.unconstrained(5))
        assert_results_close(expected, compute_asp(dataset))
