"""Tests for the specialised 2-D DUAL-MS algorithm."""

import math

import pytest

from repro import UncertainDataset, WeightRatioConstraints
from repro.algorithms import dual_ms_arsp, loop_arsp
from repro.algorithms.dual2d import Dual2DIndex
from repro.core.possible_worlds import brute_force_arsp
from tests.conftest import assert_results_close, make_random_dataset


class TestAngularRange:
    def test_example_range(self):
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        start, end = Dual2DIndex.angular_range(constraints)
        assert start == pytest.approx(math.pi - math.atan(0.5))
        assert end == pytest.approx(2 * math.pi - math.atan(2.0))

    def test_range_is_within_half_turn_bounds(self):
        constraints = WeightRatioConstraints([(0.1, 10.0)])
        start, end = Dual2DIndex.angular_range(constraints)
        assert math.pi / 2 < start <= math.pi
        assert 3 * math.pi / 2 <= end < 2 * math.pi

    def test_requires_2d(self):
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
        with pytest.raises(ValueError):
            Dual2DIndex.angular_range(constraints)


class TestDual2DIndex:
    def test_rejects_non_2d_dataset(self):
        dataset = make_random_dataset(seed=1, dimension=3)
        with pytest.raises(ValueError, match="2-dimensional"):
            Dual2DIndex(dataset)

    def test_index_reusable_for_multiple_ranges(self):
        dataset = make_random_dataset(seed=61, num_objects=7,
                                      max_instances=3, dimension=2)
        index = Dual2DIndex(dataset)
        for low, high in [(0.5, 2.0), (0.9, 1.1), (0.2, 6.0)]:
            constraints = WeightRatioConstraints([(low, high)])
            expected = brute_force_arsp(dataset, constraints)
            assert_results_close(expected, index.query(constraints))

    def test_coincident_instances_counted(self):
        dataset = UncertainDataset.from_instance_lists(
            [
                [(1.0, 1.0)],
                [(1.0, 1.0)],      # coincident with the first object
                [(2.0, 2.0)],
            ],
            [[1.0], [0.4], [1.0]])
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        expected = brute_force_arsp(dataset, constraints)
        assert_results_close(expected, dual_ms_arsp(dataset, constraints))


class TestDualMsArsp:
    def test_example1(self, example1_dataset, ratio_constraints_2d):
        result = dual_ms_arsp(example1_dataset, ratio_constraints_2d)
        assert result[0] == pytest.approx(2.0 / 9.0)

    def test_matches_loop_on_larger_input(self):
        dataset = make_random_dataset(seed=62, num_objects=40,
                                      max_instances=4, dimension=2,
                                      incomplete_fraction=0.2)
        constraints = WeightRatioConstraints([(0.36, 2.75)])
        assert_results_close(loop_arsp(dataset, constraints),
                             dual_ms_arsp(dataset, constraints))

    def test_rejects_wrong_constraint_type(self, example1_dataset):
        from repro import LinearConstraints
        with pytest.raises(TypeError):
            dual_ms_arsp(example1_dataset, LinearConstraints.weak_ranking(2))

    def test_boundary_instances_included(self):
        """Instances exactly on a dominance hyperplane dominate weakly."""
        dataset = UncertainDataset.from_instance_lists(
            [
                [(9.0, 12.0)],
                # On the region-0 hyperplane t[2] = -0.5 t[1] + 16.5.
                [(7.0, 13.0)],
            ],
            [[1.0], [1.0]])
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        expected = brute_force_arsp(dataset, constraints)
        assert_results_close(expected, dual_ms_arsp(dataset, constraints))
        assert expected[0] == pytest.approx(0.0)
