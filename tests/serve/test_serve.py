"""Serving-layer tests: daemon protocol, cache behaviour, coalescing, TCP.

The suite pins the serving contract of docs/ARCHITECTURE.md ("Serving
layer"): served results are byte-identical to one-shot ``compute_arsp``
(fingerprints over result bytes *and* key order), repeated constraints
hit the shared cross-query cache, concurrent identical queries coalesce
into one compute, and the line-delimited JSON protocol survives junk
input.  Everything runs under the ``serve`` marker — tier-1 by default,
deselectable with ``-m 'not serve'``.
"""

from __future__ import annotations

import asyncio
import hashlib
import struct
import threading

import pytest

from repro.core.arsp import compute_arsp
from repro.core.dataset import DatasetDelta, ObjectSpec
from repro.core.preference import (LinearConstraints, PreferenceRegion,
                                   WeightRatioConstraints)
from repro.data.constraints import weak_ranking_constraints
from repro.serve import (ArspServer, ArspService, ArspSession, ServeClient,
                         ServeConfig, decode_constraints, decode_result,
                         dump_message, encode_constraints, encode_result,
                         load_message)

from tests.conftest import make_random_dataset

pytestmark = pytest.mark.serve


def _fingerprint(result) -> str:
    """Byte-level digest of an ARSP result *including its key order*."""
    digest = hashlib.sha256()
    for instance_id, probability in result.items():
        digest.update(struct.pack("<qd", instance_id, probability))
    return digest.hexdigest()


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(seed=61, num_objects=14, max_instances=3,
                               dimension=3, incomplete_fraction=0.25)


@pytest.fixture(scope="module")
def ratio_constraints():
    return WeightRatioConstraints([(0.5, 2.0), (0.25, 4.0)])


# ----------------------------------------------------------------------
# Protocol encodings
# ----------------------------------------------------------------------

class TestProtocol:
    def test_weight_ratio_spec_round_trips(self, ratio_constraints):
        spec = encode_constraints(ratio_constraints)
        decoded = decode_constraints(load_message(dump_message(spec)))
        assert isinstance(decoded, WeightRatioConstraints)
        assert decoded.ranges == ratio_constraints.ranges

    def test_linear_spec_round_trips(self):
        constraints = weak_ranking_constraints(4, 2)
        spec = load_message(dump_message(encode_constraints(constraints)))
        decoded = decode_constraints(spec)
        assert isinstance(decoded, LinearConstraints)
        assert decoded.dimension == 4
        assert (decoded.matrix == constraints.matrix).all()
        assert (decoded.rhs == constraints.rhs).all()

    def test_weak_ranking_spec_builds_the_wr_generator(self):
        decoded = decode_constraints({"type": "weak-ranking",
                                      "dimension": 3, "constraints": 2})
        reference = weak_ranking_constraints(3, 2)
        assert (decoded.matrix == reference.matrix).all()

    def test_vertices_spec_round_trips(self):
        region = PreferenceRegion([[0.5, 0.5], [0.25, 0.75]])
        decoded = decode_constraints(encode_constraints(region))
        assert isinstance(decoded, PreferenceRegion)
        assert (decoded.vertices == region.vertices).all()

    def test_result_round_trip_is_bit_exact_and_order_preserving(self):
        result = {7: 0.1234567890123456789, 2: 1.0 / 3.0, 11: 0.0}
        wire = load_message(dump_message(encode_result(result)))
        decoded = decode_result(wire)
        assert decoded == result
        assert _fingerprint(decoded) == _fingerprint(result)

    @pytest.mark.parametrize("spec", [
        {"type": "nope"},
        {"type": "weight-ratio", "ranges": []},
        {"type": "weak-ranking"},
        {"type": "linear"},
        {"type": "vertices", "vertices": []},
        "not-an-object",
    ])
    def test_bad_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            decode_constraints(spec)

    def test_non_object_lines_are_rejected(self):
        with pytest.raises(ValueError):
            load_message(b"[1, 2, 3]\n")


# ----------------------------------------------------------------------
# The sync service: byte-identity, cache, projection
# ----------------------------------------------------------------------

class TestService:
    def test_served_equals_one_shot_bit_for_bit(self, dataset,
                                                ratio_constraints):
        service = ArspService(dataset)
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        outcome = service.query(ratio_constraints)
        assert _fingerprint(outcome.result) == _fingerprint(one_shot)
        assert outcome.algorithm == "dual"
        assert not outcome.cached

    def test_repeat_constraint_hits_the_shared_cache(self, dataset,
                                                     ratio_constraints):
        service = ArspService(dataset)
        first = service.query(ratio_constraints)
        second = service.query(ratio_constraints)
        assert second.cached and not first.cached
        assert second.result == first.result
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] > 0

    def test_linear_constraints_served_through_bnb(self, dataset):
        constraints = weak_ranking_constraints(3)
        service = ArspService(dataset)
        outcome = service.query(constraints)
        assert outcome.algorithm == "bnb"
        reference = dict(compute_arsp(dataset, constraints))
        assert _fingerprint(outcome.result) == _fingerprint(reference)
        assert service.query(constraints).cached

    def test_projection_matches_one_shot_slice(self, dataset,
                                               ratio_constraints):
        service = ArspService(dataset)
        targets = [0, 3, 7]
        outcome = service.query(ratio_constraints, targets=targets)
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        expected = {instance.instance_id: one_shot[instance.instance_id]
                    for instance in dataset.instances
                    if instance.object_id in set(targets)}
        assert _fingerprint(outcome.result) == _fingerprint(expected)
        # Different target sets share one cache entry (full-result
        # granularity).
        assert service.query(ratio_constraints, targets=[1]).cached

    def test_out_of_range_target_raises(self, dataset, ratio_constraints):
        service = ArspService(dataset)
        with pytest.raises(ValueError, match="out of range"):
            service.query(ratio_constraints,
                          targets=[dataset.num_objects + 5])

    def test_cached_entry_is_isolated_from_caller_mutation(
            self, dataset, ratio_constraints):
        service = ArspService(dataset)
        first = service.query(ratio_constraints)
        first.result.clear()
        again = service.query(ratio_constraints)
        assert again.cached
        assert again.result == dict(compute_arsp(dataset,
                                                 ratio_constraints))

    def test_warm_builds_the_index_once(self, dataset):
        service = ArspService(dataset)
        assert service.stats()["warm_index"] is False
        service.warm()
        assert service.stats()["warm_index"] is True
        index = service.dual_index
        service.warm()
        assert service.dual_index is index

    def test_sharded_config_attaches_execution_reports(self, dataset,
                                                       ratio_constraints):
        service = ArspService(dataset, ServeConfig(workers=2,
                                                   backend="serial"))
        outcome = service.query(ratio_constraints)
        assert outcome.execution is not None
        assert outcome.execution["workers"] == 2
        reference = dict(compute_arsp(dataset, ratio_constraints))
        assert _fingerprint(outcome.result) == _fingerprint(reference)
        # The cached repeat skips the backend entirely.
        assert service.query(ratio_constraints).execution is None


# ----------------------------------------------------------------------
# Delta retention: epoch keys + σ-repaired cache survival
# ----------------------------------------------------------------------

def _small_delta(dataset):
    """Touch 3 of the dataset's objects: one update, one delete, one
    insert — cheap to repair, so retention triggers."""
    spec = ObjectSpec.make([[0.4] * dataset.dimension,
                            [0.7] * dataset.dimension],
                           probabilities=[0.5, 0.3])
    return DatasetDelta(updates=((2, spec),), deletes=(5,), inserts=(spec,))


class TestRetention:
    def test_delta_repairs_and_retains_cached_results(self, dataset,
                                                      ratio_constraints):
        service = ArspService(dataset)
        assert service.query(ratio_constraints).cached is False
        new_dataset = service.apply_delta(_small_delta(dataset))
        assert new_dataset.epoch == 1

        stats = service.cache.stats()
        assert stats["retained"] == 1 and stats["repaired"] == 1
        outcome = service.query(ratio_constraints)
        assert outcome.cached is True  # served by the repaired entry
        one_shot = dict(compute_arsp(new_dataset, ratio_constraints,
                                     algorithm="dual"))
        assert _fingerprint(outcome.full) == _fingerprint(one_shot)
        assert service.cache.stats()["retained_hits"] == 1

    def test_stale_epoch_key_can_never_hit(self, dataset,
                                           ratio_constraints):
        service = ArspService(dataset)
        service.query(ratio_constraints)
        old_key = service.query_key(ratio_constraints)
        assert old_key in service.cache
        service.apply_delta(_small_delta(dataset))
        new_key = service.query_key(ratio_constraints)
        # The retained entry lives under the *new* epoch's key; the old
        # key is gone from the cache and, structurally, can never be
        # looked up again — every post-delta query asks for new_key.
        assert old_key != new_key
        assert old_key not in service.cache
        assert new_key in service.cache

    def test_expensive_repair_drops_the_cache_instead(self,
                                                      ratio_constraints):
        # Updating 3 of 4 objects leaves almost nothing to copy: the
        # repair's copied fraction falls below the retention threshold,
        # so dropping (recompute on demand) is the better bet.
        small = make_random_dataset(seed=7, num_objects=4,
                                    max_instances=3, dimension=3)
        service = ArspService(small)
        service.query(ratio_constraints)
        spec = ObjectSpec.make([[0.5] * small.dimension])
        delta = DatasetDelta(updates=((0, spec), (1, spec), (2, spec)))
        new_dataset = service.apply_delta(delta)
        stats = service.cache.stats()
        assert stats["retained"] == 0 and len(service.cache) == 0
        outcome = service.query(ratio_constraints)
        assert outcome.cached is False  # recomputed, not repaired
        one_shot = dict(compute_arsp(new_dataset, ratio_constraints,
                                     algorithm="dual"))
        assert _fingerprint(outcome.full) == _fingerprint(one_shot)

    def test_non_dual_entries_are_dropped_on_delta(self, dataset):
        # bnb results carry no σ matrix, so there is nothing to repair
        # them from — they are dropped even when DUAL entries survive.
        service = ArspService(dataset)
        linear = weak_ranking_constraints(dataset.dimension, 2)
        wr = WeightRatioConstraints([(0.5, 2.0)] * (dataset.dimension - 1))
        service.query(linear)
        service.query(wr)
        service.apply_delta(_small_delta(dataset))
        assert len(service.cache) == 1  # only the WR entry survived
        assert service.query_key(wr) in service.cache
        assert service.query_key(linear) not in service.cache
        assert service.query(linear).cached is False

    def test_cold_service_delta_clears_without_an_engine(
            self, dataset, ratio_constraints):
        service = ArspService(dataset)
        new_dataset = service.apply_delta(_small_delta(dataset))
        assert new_dataset.epoch == 1
        assert service.stats()["warm_index"] is False  # still lazy
        assert service.cache.stats()["retained"] == 0
        outcome = service.query(ratio_constraints)
        one_shot = dict(compute_arsp(new_dataset, ratio_constraints,
                                     algorithm="dual"))
        assert _fingerprint(outcome.full) == _fingerprint(one_shot)

    def test_retained_entries_keep_their_lru_rank(self, dataset):
        service = ArspService(dataset)
        wr_a = WeightRatioConstraints([(0.5, 2.0)] * (dataset.dimension - 1))
        wr_b = WeightRatioConstraints([(0.4, 2.5)] * (dataset.dimension - 1))
        service.query(wr_a)
        service.query(wr_b)
        service.query(wr_a)  # refresh: a is now the newest entry
        service.apply_delta(_small_delta(dataset))
        keys = list(service.cache)
        assert keys == [service.query_key(wr_b), service.query_key(wr_a)]

    def test_session_delta_surfaces_epoch_and_retention(
            self, dataset, ratio_constraints):
        async def scenario():
            service = ArspService(dataset)
            session = ArspSession(service)
            client = ServeClient.in_process(session)
            first = await client.query(constraints=ratio_constraints)
            assert first["epoch"] == 0
            await session.apply_delta(_small_delta(dataset))
            second = await client.query(constraints=ratio_constraints)
            session.close()
            return service.dataset, second

        new_dataset, response = asyncio.run(scenario())
        assert response["epoch"] == 1
        assert response["cached"] is True
        assert response["cache"]["retained"] == 1
        assert response["cache"]["retained_hits"] == 1
        one_shot = dict(compute_arsp(new_dataset, ratio_constraints,
                                     algorithm="dual"))
        assert _fingerprint(response["result"]) == _fingerprint(one_shot)


# ----------------------------------------------------------------------
# The async session: dispatch and single-flight coalescing
# ----------------------------------------------------------------------

class TestSession:
    def test_in_process_client_speaks_the_full_protocol(self, dataset,
                                                        ratio_constraints):
        async def scenario():
            session = ArspSession(ArspService(dataset))
            client = ServeClient.in_process(session)
            pong = await client.ping()
            assert pong["ok"] and pong["protocol"] >= 1
            response = await client.query(constraints=ratio_constraints,
                                          request_id="q-1")
            assert response["id"] == "q-1"
            assert response["cache"]["misses"] == 1
            stats = await client.stats()
            assert stats["queries"] == 1
            assert (await client.shutdown())["ok"]
            assert session.shutdown_event.is_set()
            session.close()
            return response

        response = asyncio.run(scenario())
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        assert _fingerprint(response["result"]) == _fingerprint(one_shot)

    def test_errors_answer_without_killing_the_session(self, dataset):
        async def scenario():
            session = ArspSession(ArspService(dataset))
            client = ServeClient.in_process(session)
            bad_spec = await client.request(
                {"op": "query", "constraints": {"type": "nope"}, "id": 9})
            bad_op = await client.request({"op": "explode"})
            bad_target = await client.request(
                {"op": "query",
                 "constraints": {"type": "weight-ratio",
                                 "ranges": [[0.5, 2.0], [0.5, 2.0]]},
                 "targets": [999]})
            good = await client.query(
                spec={"type": "weight-ratio",
                      "ranges": [[0.5, 2.0], [0.5, 2.0]]})
            session.close()
            return bad_spec, bad_op, bad_target, good

        bad_spec, bad_op, bad_target, good = asyncio.run(scenario())
        assert bad_spec["ok"] is False and bad_spec["id"] == 9
        assert bad_op["ok"] is False and "unknown op" in bad_op["error"]
        assert bad_target["ok"] is False
        assert "out of range" in bad_target["error"]
        assert good["ok"] is True

    def test_concurrent_identical_queries_coalesce_into_one_compute(
            self, dataset, ratio_constraints):
        """N concurrent identical queries: one kernel pass, N answers."""
        service = ArspService(dataset)
        release = threading.Event()
        compute_calls = []
        original = service.full_result

        def gated_full_result(constraints, algorithm=None):
            compute_calls.append(algorithm)
            assert release.wait(timeout=30), "test gate never released"
            return original(constraints, algorithm)

        service.full_result = gated_full_result

        async def scenario():
            session = ArspSession(service)
            tasks = [asyncio.ensure_future(
                         session.query(ratio_constraints,
                                       targets=[index % 4]))
                     for index in range(5)]
            # Let the leader reach the compute thread and every follower
            # park on the shared in-flight future, then open the gate.
            while not compute_calls:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            release.set()
            outcomes = await asyncio.gather(*tasks)
            session.close()
            return session, outcomes

        session, outcomes = asyncio.run(scenario())
        assert len(compute_calls) == 1, "compute ran more than once"
        assert session.coalesced == 4
        assert sum(1 for outcome in outcomes if outcome.coalesced) == 4
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        for index, outcome in enumerate(outcomes):
            expected = {instance.instance_id:
                        one_shot[instance.instance_id]
                        for instance in dataset.instances
                        if instance.object_id == index % 4}
            assert outcome.result == expected
        # The leader counted the only miss; followers touched no counters.
        assert service.cache.stats()["misses"] == 1

    def test_leader_failure_wakes_followers_with_the_error(self, dataset,
                                                           ratio_constraints):
        service = ArspService(dataset)
        release = threading.Event()

        def failing_full_result(constraints, algorithm=None):
            assert release.wait(timeout=30)
            raise RuntimeError("injected compute failure")

        service.full_result = failing_full_result

        async def scenario():
            session = ArspSession(service)
            tasks = [asyncio.ensure_future(session.query(ratio_constraints))
                     for _ in range(3)]
            await asyncio.sleep(0.05)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            session.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(result, RuntimeError) for result in results)


# ----------------------------------------------------------------------
# The TCP server
# ----------------------------------------------------------------------

class TestServer:
    def test_tcp_round_trip_is_byte_identical(self, dataset,
                                              ratio_constraints):
        async def scenario():
            session = ArspSession(ArspService(dataset))
            server = ArspServer(session, port=0)
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            response = await client.query(constraints=ratio_constraints)
            junk_reply = None
            if client._writer is not None:
                client._writer.write(b"this is not json\n")
                await client._writer.drain()
                junk_reply = load_message(await client._reader.readline())
            again = await client.query(constraints=ratio_constraints)
            await client.shutdown()
            await client.close()
            await server.serve_until_shutdown()
            return response, junk_reply, again

        response, junk_reply, again = asyncio.run(scenario())
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        assert _fingerprint(response["result"]) == _fingerprint(one_shot)
        assert junk_reply["ok"] is False
        assert again["cached"] is True

    def test_many_tcp_clients_interleaved_match_serial_one_shots(
            self, dataset):
        """Overlapping clients with interleaved constraint streams each
        get byte-identical answers to serial one-shot runs."""
        streams = [
            WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)]),
            WeightRatioConstraints([(0.8, 1.25), (0.25, 4.0)]),
            WeightRatioConstraints([(0.5, 1.0), (1.0, 2.0)]),
        ]
        references = {
            index: _fingerprint(dict(compute_arsp(dataset, constraints)))
            for index, constraints in enumerate(streams)}

        async def one_client(host, port, client_id):
            client = await ServeClient.connect(host, port)
            fingerprints = {}
            # Each client walks the streams in a different order, so the
            # server sees interleaved, repeated constraints.
            for offset in range(len(streams)):
                index = (client_id + offset) % len(streams)
                response = await client.query(constraints=streams[index])
                fingerprints[index] = _fingerprint(response["result"])
            await client.close()
            return fingerprints

        async def scenario():
            session = ArspSession(ArspService(dataset))
            server = ArspServer(session, port=0)
            host, port = await server.start()
            results = await asyncio.gather(
                *(one_client(host, port, client_id)
                  for client_id in range(4)))
            stats = session.service.cache.stats()
            await server.close()
            return results, stats

        results, stats = asyncio.run(scenario())
        for fingerprints in results:
            assert fingerprints == references
        # 4 clients x 3 constraints = 12 lookups over 3 distinct keys:
        # everything after the first sight of a key is a hit (or a
        # coalesced follower, which skips the counters entirely).
        assert stats["misses"] == len(streams)
        assert stats["hits"] > 0
