"""Serving-layer tests: daemon protocol, cache behaviour, coalescing, TCP.

The suite pins the serving contract of docs/ARCHITECTURE.md ("Serving
layer"): served results are byte-identical to one-shot ``compute_arsp``
(fingerprints over result bytes *and* key order), repeated constraints
hit the shared cross-query cache, concurrent identical queries coalesce
into one compute, and the line-delimited JSON protocol survives junk
input.  Everything runs under the ``serve`` marker — tier-1 by default,
deselectable with ``-m 'not serve'``.
"""

from __future__ import annotations

import asyncio
import hashlib
import struct
import threading

import pytest

from repro.core.arsp import compute_arsp
from repro.core.preference import (LinearConstraints, PreferenceRegion,
                                   WeightRatioConstraints)
from repro.data.constraints import weak_ranking_constraints
from repro.serve import (ArspServer, ArspService, ArspSession, ServeClient,
                         ServeConfig, decode_constraints, decode_result,
                         dump_message, encode_constraints, encode_result,
                         load_message)

from tests.conftest import make_random_dataset

pytestmark = pytest.mark.serve


def _fingerprint(result) -> str:
    """Byte-level digest of an ARSP result *including its key order*."""
    digest = hashlib.sha256()
    for instance_id, probability in result.items():
        digest.update(struct.pack("<qd", instance_id, probability))
    return digest.hexdigest()


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(seed=61, num_objects=14, max_instances=3,
                               dimension=3, incomplete_fraction=0.25)


@pytest.fixture(scope="module")
def ratio_constraints():
    return WeightRatioConstraints([(0.5, 2.0), (0.25, 4.0)])


# ----------------------------------------------------------------------
# Protocol encodings
# ----------------------------------------------------------------------

class TestProtocol:
    def test_weight_ratio_spec_round_trips(self, ratio_constraints):
        spec = encode_constraints(ratio_constraints)
        decoded = decode_constraints(load_message(dump_message(spec)))
        assert isinstance(decoded, WeightRatioConstraints)
        assert decoded.ranges == ratio_constraints.ranges

    def test_linear_spec_round_trips(self):
        constraints = weak_ranking_constraints(4, 2)
        spec = load_message(dump_message(encode_constraints(constraints)))
        decoded = decode_constraints(spec)
        assert isinstance(decoded, LinearConstraints)
        assert decoded.dimension == 4
        assert (decoded.matrix == constraints.matrix).all()
        assert (decoded.rhs == constraints.rhs).all()

    def test_weak_ranking_spec_builds_the_wr_generator(self):
        decoded = decode_constraints({"type": "weak-ranking",
                                      "dimension": 3, "constraints": 2})
        reference = weak_ranking_constraints(3, 2)
        assert (decoded.matrix == reference.matrix).all()

    def test_vertices_spec_round_trips(self):
        region = PreferenceRegion([[0.5, 0.5], [0.25, 0.75]])
        decoded = decode_constraints(encode_constraints(region))
        assert isinstance(decoded, PreferenceRegion)
        assert (decoded.vertices == region.vertices).all()

    def test_result_round_trip_is_bit_exact_and_order_preserving(self):
        result = {7: 0.1234567890123456789, 2: 1.0 / 3.0, 11: 0.0}
        wire = load_message(dump_message(encode_result(result)))
        decoded = decode_result(wire)
        assert decoded == result
        assert _fingerprint(decoded) == _fingerprint(result)

    @pytest.mark.parametrize("spec", [
        {"type": "nope"},
        {"type": "weight-ratio", "ranges": []},
        {"type": "weak-ranking"},
        {"type": "linear"},
        {"type": "vertices", "vertices": []},
        "not-an-object",
    ])
    def test_bad_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            decode_constraints(spec)

    def test_non_object_lines_are_rejected(self):
        with pytest.raises(ValueError):
            load_message(b"[1, 2, 3]\n")


# ----------------------------------------------------------------------
# The sync service: byte-identity, cache, projection
# ----------------------------------------------------------------------

class TestService:
    def test_served_equals_one_shot_bit_for_bit(self, dataset,
                                                ratio_constraints):
        service = ArspService(dataset)
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        outcome = service.query(ratio_constraints)
        assert _fingerprint(outcome.result) == _fingerprint(one_shot)
        assert outcome.algorithm == "dual"
        assert not outcome.cached

    def test_repeat_constraint_hits_the_shared_cache(self, dataset,
                                                     ratio_constraints):
        service = ArspService(dataset)
        first = service.query(ratio_constraints)
        second = service.query(ratio_constraints)
        assert second.cached and not first.cached
        assert second.result == first.result
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] > 0

    def test_linear_constraints_served_through_bnb(self, dataset):
        constraints = weak_ranking_constraints(3)
        service = ArspService(dataset)
        outcome = service.query(constraints)
        assert outcome.algorithm == "bnb"
        reference = dict(compute_arsp(dataset, constraints))
        assert _fingerprint(outcome.result) == _fingerprint(reference)
        assert service.query(constraints).cached

    def test_projection_matches_one_shot_slice(self, dataset,
                                               ratio_constraints):
        service = ArspService(dataset)
        targets = [0, 3, 7]
        outcome = service.query(ratio_constraints, targets=targets)
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        expected = {instance.instance_id: one_shot[instance.instance_id]
                    for instance in dataset.instances
                    if instance.object_id in set(targets)}
        assert _fingerprint(outcome.result) == _fingerprint(expected)
        # Different target sets share one cache entry (full-result
        # granularity).
        assert service.query(ratio_constraints, targets=[1]).cached

    def test_out_of_range_target_raises(self, dataset, ratio_constraints):
        service = ArspService(dataset)
        with pytest.raises(ValueError, match="out of range"):
            service.query(ratio_constraints,
                          targets=[dataset.num_objects + 5])

    def test_cached_entry_is_isolated_from_caller_mutation(
            self, dataset, ratio_constraints):
        service = ArspService(dataset)
        first = service.query(ratio_constraints)
        first.result.clear()
        again = service.query(ratio_constraints)
        assert again.cached
        assert again.result == dict(compute_arsp(dataset,
                                                 ratio_constraints))

    def test_warm_builds_the_index_once(self, dataset):
        service = ArspService(dataset)
        assert service.stats()["warm_index"] is False
        service.warm()
        assert service.stats()["warm_index"] is True
        index = service.dual_index
        service.warm()
        assert service.dual_index is index

    def test_sharded_config_attaches_execution_reports(self, dataset,
                                                       ratio_constraints):
        service = ArspService(dataset, ServeConfig(workers=2,
                                                   backend="serial"))
        outcome = service.query(ratio_constraints)
        assert outcome.execution is not None
        assert outcome.execution["workers"] == 2
        reference = dict(compute_arsp(dataset, ratio_constraints))
        assert _fingerprint(outcome.result) == _fingerprint(reference)
        # The cached repeat skips the backend entirely.
        assert service.query(ratio_constraints).execution is None


# ----------------------------------------------------------------------
# The async session: dispatch and single-flight coalescing
# ----------------------------------------------------------------------

class TestSession:
    def test_in_process_client_speaks_the_full_protocol(self, dataset,
                                                        ratio_constraints):
        async def scenario():
            session = ArspSession(ArspService(dataset))
            client = ServeClient.in_process(session)
            pong = await client.ping()
            assert pong["ok"] and pong["protocol"] >= 1
            response = await client.query(constraints=ratio_constraints,
                                          request_id="q-1")
            assert response["id"] == "q-1"
            assert response["cache"]["misses"] == 1
            stats = await client.stats()
            assert stats["queries"] == 1
            assert (await client.shutdown())["ok"]
            assert session.shutdown_event.is_set()
            session.close()
            return response

        response = asyncio.run(scenario())
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        assert _fingerprint(response["result"]) == _fingerprint(one_shot)

    def test_errors_answer_without_killing_the_session(self, dataset):
        async def scenario():
            session = ArspSession(ArspService(dataset))
            client = ServeClient.in_process(session)
            bad_spec = await client.request(
                {"op": "query", "constraints": {"type": "nope"}, "id": 9})
            bad_op = await client.request({"op": "explode"})
            bad_target = await client.request(
                {"op": "query",
                 "constraints": {"type": "weight-ratio",
                                 "ranges": [[0.5, 2.0], [0.5, 2.0]]},
                 "targets": [999]})
            good = await client.query(
                spec={"type": "weight-ratio",
                      "ranges": [[0.5, 2.0], [0.5, 2.0]]})
            session.close()
            return bad_spec, bad_op, bad_target, good

        bad_spec, bad_op, bad_target, good = asyncio.run(scenario())
        assert bad_spec["ok"] is False and bad_spec["id"] == 9
        assert bad_op["ok"] is False and "unknown op" in bad_op["error"]
        assert bad_target["ok"] is False
        assert "out of range" in bad_target["error"]
        assert good["ok"] is True

    def test_concurrent_identical_queries_coalesce_into_one_compute(
            self, dataset, ratio_constraints):
        """N concurrent identical queries: one kernel pass, N answers."""
        service = ArspService(dataset)
        release = threading.Event()
        compute_calls = []
        original = service.full_result

        def gated_full_result(constraints, algorithm=None):
            compute_calls.append(algorithm)
            assert release.wait(timeout=30), "test gate never released"
            return original(constraints, algorithm)

        service.full_result = gated_full_result

        async def scenario():
            session = ArspSession(service)
            tasks = [asyncio.ensure_future(
                         session.query(ratio_constraints,
                                       targets=[index % 4]))
                     for index in range(5)]
            # Let the leader reach the compute thread and every follower
            # park on the shared in-flight future, then open the gate.
            while not compute_calls:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            release.set()
            outcomes = await asyncio.gather(*tasks)
            session.close()
            return session, outcomes

        session, outcomes = asyncio.run(scenario())
        assert len(compute_calls) == 1, "compute ran more than once"
        assert session.coalesced == 4
        assert sum(1 for outcome in outcomes if outcome.coalesced) == 4
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        for index, outcome in enumerate(outcomes):
            expected = {instance.instance_id:
                        one_shot[instance.instance_id]
                        for instance in dataset.instances
                        if instance.object_id == index % 4}
            assert outcome.result == expected
        # The leader counted the only miss; followers touched no counters.
        assert service.cache.stats()["misses"] == 1

    def test_leader_failure_wakes_followers_with_the_error(self, dataset,
                                                           ratio_constraints):
        service = ArspService(dataset)
        release = threading.Event()

        def failing_full_result(constraints, algorithm=None):
            assert release.wait(timeout=30)
            raise RuntimeError("injected compute failure")

        service.full_result = failing_full_result

        async def scenario():
            session = ArspSession(service)
            tasks = [asyncio.ensure_future(session.query(ratio_constraints))
                     for _ in range(3)]
            await asyncio.sleep(0.05)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            session.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(result, RuntimeError) for result in results)


# ----------------------------------------------------------------------
# The TCP server
# ----------------------------------------------------------------------

class TestServer:
    def test_tcp_round_trip_is_byte_identical(self, dataset,
                                              ratio_constraints):
        async def scenario():
            session = ArspSession(ArspService(dataset))
            server = ArspServer(session, port=0)
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            response = await client.query(constraints=ratio_constraints)
            junk_reply = None
            if client._writer is not None:
                client._writer.write(b"this is not json\n")
                await client._writer.drain()
                junk_reply = load_message(await client._reader.readline())
            again = await client.query(constraints=ratio_constraints)
            await client.shutdown()
            await client.close()
            await server.serve_until_shutdown()
            return response, junk_reply, again

        response, junk_reply, again = asyncio.run(scenario())
        one_shot = dict(compute_arsp(dataset, ratio_constraints))
        assert _fingerprint(response["result"]) == _fingerprint(one_shot)
        assert junk_reply["ok"] is False
        assert again["cached"] is True

    def test_many_tcp_clients_interleaved_match_serial_one_shots(
            self, dataset):
        """Overlapping clients with interleaved constraint streams each
        get byte-identical answers to serial one-shot runs."""
        streams = [
            WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)]),
            WeightRatioConstraints([(0.8, 1.25), (0.25, 4.0)]),
            WeightRatioConstraints([(0.5, 1.0), (1.0, 2.0)]),
        ]
        references = {
            index: _fingerprint(dict(compute_arsp(dataset, constraints)))
            for index, constraints in enumerate(streams)}

        async def one_client(host, port, client_id):
            client = await ServeClient.connect(host, port)
            fingerprints = {}
            # Each client walks the streams in a different order, so the
            # server sees interleaved, repeated constraints.
            for offset in range(len(streams)):
                index = (client_id + offset) % len(streams)
                response = await client.query(constraints=streams[index])
                fingerprints[index] = _fingerprint(response["result"])
            await client.close()
            return fingerprints

        async def scenario():
            session = ArspSession(ArspService(dataset))
            server = ArspServer(session, port=0)
            host, port = await server.start()
            results = await asyncio.gather(
                *(one_client(host, port, client_id)
                  for client_id in range(4)))
            stats = session.service.cache.stats()
            await server.close()
            return results, stats

        results, stats = asyncio.run(scenario())
        for fingerprints in results:
            assert fingerprints == references
        # 4 clients x 3 constraints = 12 lookups over 3 distinct keys:
        # everything after the first sight of a key is a hit (or a
        # coalesced follower, which skips the counters entirely).
        assert stats["misses"] == len(streams)
        assert stats["hits"] > 0
