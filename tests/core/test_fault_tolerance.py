"""End-to-end recovery tests for the supervised process scheduler.

Every test here injects a deterministic fault (``repro.core.faults``) into
a real process pool and asserts the supervisor's contract: only unfinished
shards are resubmitted, the merged result is byte-identical to an
uninjected run, and the terminal ``on_failure`` policies behave as
documented.  The whole module carries the ``faults`` marker (tier-1 by
default, deselectable with ``-m 'not faults'``) plus ``parallel`` because
every test spawns worker processes.
"""

from __future__ import annotations

import hashlib
import struct
import subprocess
import sys
import time

import pytest

from repro.algorithms import kdtree_traversal_arsp
from repro.core.backend import (DatasetRestoreError, ExecutionPolicy,
                                PickledDataset, ShardExecutionError,
                                SharedDatasetHandle, run_sharded)
from repro.core.faults import CRASH_EXIT_CODE, FaultPlan
from repro.data.constraints import weak_ranking_constraints

from tests.conftest import make_random_dataset

pytestmark = [pytest.mark.faults, pytest.mark.parallel]

#: Generous wall-clock bound for recovery tests: far above any healthy
#: retry schedule (backoff caps at 2 s), far below the injected 30 s hangs.
RECOVERY_DEADLINE_S = 20.0


def _fingerprint(result) -> str:
    """Byte-level digest of an ARSP result *including its key order*."""
    digest = hashlib.sha256()
    for instance_id, probability in result.items():
        digest.update(struct.pack("<qd", instance_id, probability))
    return digest.hexdigest()


@pytest.fixture(scope="module")
def workload():
    dataset = make_random_dataset(seed=41, num_objects=12, max_instances=3,
                                  dimension=3, incomplete_fraction=0.25)
    return dataset, weak_ranking_constraints(3)


def _policy(**kwargs) -> ExecutionPolicy:
    """Fast-recovery policy so injected failures don't slow the suite."""
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return ExecutionPolicy(**kwargs)


class TestCrashRecovery:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_merged_result_is_bit_identical_after_a_crash(self, workload,
                                                          workers):
        dataset, constraints = workload
        reference = kdtree_traversal_arsp(dataset, constraints,
                                          workers=workers, backend="process",
                                          policy=_policy())
        assert reference.execution.clean
        injected = kdtree_traversal_arsp(
            dataset, constraints, workers=workers, backend="process",
            policy=_policy(fault_plan=FaultPlan.from_spec(
                "crash:shard=1,attempt=1")))
        assert _fingerprint(injected) == _fingerprint(reference)

        report = injected.execution
        assert not report.clean
        assert report.pool_rebuilds >= 1
        # Shard 1 was resubmitted; shards that finished before the crash
        # were not (they stay at one attempt and are never "recovered").
        assert 1 in report.recovered_shards
        records = {record.index: record for record in report.shards}
        assert records[1].attempts >= 2
        assert records[1].outcome == "recovered"
        assert "worker-lost" in records[1].failures
        finished_before = [r for r in report.shards
                           if r.outcome == "done" and r.attempts == 1]
        assert finished_before, "some shard should finish on attempt 1"
        assert report.serial_fallback_shards == []

    def test_env_spec_drives_the_same_recovery(self, workload, monkeypatch):
        dataset, constraints = workload
        monkeypatch.setenv("REPRO_FAULTS", "crash:shard=0,attempt=1")
        result = kdtree_traversal_arsp(dataset, constraints, workers=2,
                                       backend="process", policy=_policy())
        assert 0 in result.execution.recovered_shards


class TestHangRecovery:
    def test_shard_timeout_kills_the_hung_worker_and_recovers(self,
                                                              workload):
        dataset, constraints = workload
        reference = kdtree_traversal_arsp(dataset, constraints, workers=2,
                                          backend="process", policy=_policy())
        start = time.perf_counter()
        injected = kdtree_traversal_arsp(
            dataset, constraints, workers=2, backend="process",
            policy=_policy(shard_timeout_s=0.5,
                           fault_plan=FaultPlan.from_spec(
                               "hang:shard=0,attempt=1,seconds=30")))
        elapsed = time.perf_counter() - start
        assert elapsed < RECOVERY_DEADLINE_S, (
            "hung shard was not reclaimed by the timeout")
        assert _fingerprint(injected) == _fingerprint(reference)

        report = injected.execution
        assert report.timeouts >= 1
        records = {record.index: record for record in report.shards}
        assert "timeout" in records[0].failures
        assert records[0].outcome == "recovered"


def _echo_shard(dataset, constraints, lo, hi):
    return {instance.instance_id: float(instance.object_id)
            for instance in dataset.instances
            if lo <= instance.object_id < hi}


class TestTerminalPolicies:
    def test_on_failure_raise_propagates_the_first_failure(self):
        dataset = make_random_dataset(seed=42, num_objects=8)
        policy = _policy(on_failure="raise",
                         fault_plan=FaultPlan.from_spec(
                             "crash:shard=1,attempt=1"))
        with pytest.raises(ShardExecutionError) as excinfo:
            run_sharded(_echo_shard, dataset, None,
                        num_targets=dataset.num_objects, workers=2,
                        backend="process", policy=policy)
        assert 1 in excinfo.value.shard_indices

    def test_on_failure_retry_raises_after_the_budget(self):
        dataset = make_random_dataset(seed=43, num_objects=8)
        # Crash shard 1 on every attempt it is allowed (1 + max_retries).
        policy = _policy(on_failure="retry", max_retries=2,
                         fault_plan=FaultPlan.from_spec(
                             "crash:shard=1,attempt=1;"
                             "crash:shard=1,attempt=2;"
                             "crash:shard=1,attempt=3"))
        with pytest.raises(ShardExecutionError, match="retry budget"):
            run_sharded(_echo_shard, dataset, None,
                        num_targets=dataset.num_objects, workers=2,
                        backend="process", policy=policy)

    def test_on_failure_serial_recomputes_only_missing_shards(self):
        dataset = make_random_dataset(seed=44, num_objects=8)
        policy = _policy(on_failure="serial", max_retries=1,
                         fault_plan=FaultPlan.from_spec(
                             "crash:shard=1,attempt=1;"
                             "crash:shard=1,attempt=2"))
        with pytest.warns(RuntimeWarning, match="computing 1 shard"):
            result = run_sharded(_echo_shard, dataset, None,
                                 num_targets=dataset.num_objects, workers=2,
                                 backend="process", policy=policy)
        assert result == _echo_shard(dataset, None, 0, dataset.num_objects)
        report = result.execution
        assert report.serial_fallback_shards == [1]
        assert report.fallback_events
        records = {record.index: record for record in report.shards}
        assert records[1].outcome == "serial"
        # The healthy shard was computed by the pool, not serially.
        assert records[0].outcome in ("done", "recovered")

    def test_retry_exhaustion_still_allows_later_recovery(self):
        # One crash, two retries: the default "serial" policy should not
        # need its terminal fallback at all.
        dataset = make_random_dataset(seed=45, num_objects=8)
        policy = _policy(max_retries=2, fault_plan=FaultPlan.from_spec(
            "crash:shard=0,attempt=1"))
        result = run_sharded(_echo_shard, dataset, None,
                             num_targets=dataset.num_objects, workers=2,
                             backend="process", policy=policy)
        assert result == _echo_shard(dataset, None, 0, dataset.num_objects)
        assert result.execution.serial_fallback_shards == []


class TestPoolFaults:
    @pytest.mark.parametrize("spec", ["init:generation=0",
                                      "attach:generation=0"])
    def test_poisoned_first_generation_is_rebuilt(self, workload, spec):
        dataset, constraints = workload
        reference = kdtree_traversal_arsp(dataset, constraints, workers=2,
                                          backend="process", policy=_policy())
        injected = kdtree_traversal_arsp(
            dataset, constraints, workers=2, backend="process",
            policy=_policy(fault_plan=FaultPlan.from_spec(spec)))
        assert _fingerprint(injected) == _fingerprint(reference)
        assert injected.execution.pool_rebuilds >= 1


class TestSharedMemoryLifecycle:
    def test_unlink_is_idempotent(self):
        dataset = make_random_dataset(seed=46, num_objects=4)
        handle = SharedDatasetHandle.create(dataset)
        handle.unlink()
        handle.unlink()  # second release must be a no-op, not an OSError

    def test_abandoned_handle_does_not_leak_or_warn(self):
        # Regression: before the weakref.finalize guard, dropping a handle
        # without unlink() left the block to the resource tracker, which
        # reports "leaked shared_memory objects" on stderr at exit.
        code = "\n".join([
            "import gc",
            "from repro.core.backend import SharedDatasetHandle",
            "from repro.data.synthetic import (SyntheticConfig,",
            "                                  generate_uncertain_dataset)",
            "dataset = generate_uncertain_dataset(SyntheticConfig(",
            "    num_objects=5, max_instances=2, dimension=2, seed=1))",
            "handle = SharedDatasetHandle.create(dataset)",
            "del handle",
            "gc.collect()",
            "print('RELEASED')",
        ])
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            timeout=60)
        assert completed.returncode == 0, completed.stderr
        assert "RELEASED" in completed.stdout
        assert "resource_tracker" not in completed.stderr
        assert "leaked" not in completed.stderr


class TestDatasetRestoreValidation:
    def test_corrupt_object_ids_raise_a_named_error(self):
        dataset = make_random_dataset(seed=47, num_objects=5)
        payload = PickledDataset.create(dataset)
        payload.arrays["object_ids"][2] = dataset.num_objects + 3
        with pytest.raises(DatasetRestoreError, match=r"row 2 .*outside "
                                                      r"the dense target "
                                                      r"range"):
            payload.restore()

    def test_negative_object_ids_are_rejected_too(self):
        dataset = make_random_dataset(seed=48, num_objects=5)
        payload = PickledDataset.create(dataset)
        payload.arrays["object_ids"][0] = -1
        with pytest.raises(DatasetRestoreError, match="corrupt"):
            payload.restore()


class TestServePathRecovery:
    """The recovery ladder works unchanged underneath the query daemon."""

    @pytest.mark.serve
    def test_daemon_query_recovers_from_injected_crash(self, workload):
        import asyncio

        from repro.serve import (ArspService, ArspSession, ServeClient,
                                 ServeConfig)

        dataset, constraints = workload
        reference = ArspService(
            dataset, ServeConfig(workers=2, backend="process",
                                 policy=_policy())).query(constraints)
        assert reference.execution["clean"] is True

        service = ArspService(
            dataset,
            ServeConfig(workers=2, backend="process",
                        policy=_policy(fault_plan=FaultPlan.from_spec(
                            "crash:shard=1,attempt=1"))))

        async def scenario():
            session = ArspSession(service)
            client = ServeClient.in_process(session)
            injected = await client.query(constraints=constraints)
            repeat = await client.query(constraints=constraints)
            session.close()
            return injected, repeat

        injected, repeat = asyncio.run(scenario())
        # The injected crash changed nothing about the answer...
        assert (_fingerprint(injected["result"])
                == _fingerprint(reference.result))
        # ...and the response carries the populated ExecutionReport that
        # proves recovery actually happened under the daemon.
        execution = injected["execution"]
        assert execution["clean"] is False
        assert 1 in execution["recovered_shards"]
        assert execution["pool_rebuilds"] >= 1
        # The repeat came from the cross-query cache: same bytes, no
        # second trip through the (still fault-injected) scheduler.
        assert repeat["cached"] is True
        assert repeat["execution"] is None
        assert (_fingerprint(repeat["result"])
                == _fingerprint(reference.result))

    @pytest.mark.serve
    def test_env_fault_spec_reaches_the_serve_path(self, workload,
                                                   monkeypatch):
        from repro.serve import ArspService, ServeConfig

        dataset, constraints = workload
        monkeypatch.setenv("REPRO_FAULTS", "crash:shard=0,attempt=1")
        outcome = ArspService(
            dataset, ServeConfig(workers=2, backend="process",
                                 policy=_policy())).query(constraints)
        assert 0 in outcome.execution["recovered_shards"]


def test_crash_exit_code_is_distinctive():
    # 87 deliberately differs from every exit code the interpreter or a
    # signal produces, so a supervisor log line can attribute the loss.
    assert CRASH_EXIT_CODE not in (0, 1, 2)
