"""Tests for the high level ARSP API (repro.core.arsp)."""

import pytest

from repro import (LinearConstraints, WeightRatioConstraints, arsp_size,
                   compute_arsp, object_rskyline_probabilities,
                   threshold_query, top_k_objects)
from repro.algorithms import list_algorithms
from tests.conftest import assert_results_close


class TestComputeArsp:
    def test_explicit_algorithm(self, example1_dataset, ratio_constraints_2d):
        result = compute_arsp(example1_dataset, ratio_constraints_2d,
                              algorithm="kdtt+")
        assert result[0] == pytest.approx(2.0 / 9.0)

    def test_auto_dispatch_ratio_constraints(self, example1_dataset,
                                             ratio_constraints_2d):
        auto = compute_arsp(example1_dataset, ratio_constraints_2d,
                            algorithm="auto")
        explicit = compute_arsp(example1_dataset, ratio_constraints_2d,
                                algorithm="dual")
        assert_results_close(explicit, auto)

    def test_auto_dispatch_linear_constraints(self, example1_dataset):
        constraints = LinearConstraints.weak_ranking(2)
        auto = compute_arsp(example1_dataset, constraints, algorithm="auto")
        explicit = compute_arsp(example1_dataset, constraints,
                                algorithm="bnb")
        assert_results_close(explicit, auto)

    def test_unknown_algorithm(self, example1_dataset, ratio_constraints_2d):
        with pytest.raises(KeyError):
            compute_arsp(example1_dataset, ratio_constraints_2d,
                         algorithm="nonexistent")

    def test_options_are_forwarded(self, example1_dataset,
                                   ratio_constraints_2d):
        result = compute_arsp(example1_dataset, ratio_constraints_2d,
                              algorithm="kdtt+", integrated=False)
        assert result[0] == pytest.approx(2.0 / 9.0)

    def test_result_covers_all_instances(self, example1_dataset,
                                         ratio_constraints_2d):
        result = compute_arsp(example1_dataset, ratio_constraints_2d)
        assert set(result) == {inst.instance_id
                               for inst in example1_dataset.instances}

    def test_all_registered_algorithms_listed(self):
        names = list_algorithms()
        for expected in ["enum", "loop", "kdtt", "kdtt+", "qdtt+", "bnb",
                         "dual", "dual-ms"]:
            assert expected in names


class TestDerivedQueries:
    @pytest.fixture
    def arsp(self, example1_dataset, ratio_constraints_2d):
        return compute_arsp(example1_dataset, ratio_constraints_2d,
                            algorithm="kdtt+")

    def test_object_aggregation(self, example1_dataset, arsp):
        per_object = object_rskyline_probabilities(example1_dataset, arsp)
        assert per_object[0] == pytest.approx(2.0 / 9.0)
        assert set(per_object) == {0, 1, 2, 3}

    def test_top_k(self, example1_dataset, arsp):
        top = top_k_objects(example1_dataset, arsp, k=2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_top_k_larger_than_objects(self, example1_dataset, arsp):
        top = top_k_objects(example1_dataset, arsp, k=100)
        assert len(top) == example1_dataset.num_objects

    def test_arsp_size_counts_nonzero(self, arsp):
        assert arsp_size(arsp) == sum(1 for v in arsp.values() if v > 1e-12)

    def test_threshold_query(self, arsp):
        strong = threshold_query(arsp, threshold=0.2)
        assert all(arsp[i] >= 0.2 for i in strong)
        weak_or_strong = threshold_query(arsp, threshold=0.0)
        assert len(weak_or_strong) == len(arsp)

    def test_threshold_query_monotone(self, arsp):
        assert len(threshold_query(arsp, 0.5)) <= len(threshold_query(arsp,
                                                                      0.1))
