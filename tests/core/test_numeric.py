"""Tests for numeric helpers (repro.core.numeric)."""

import pytest

from repro.core import numeric


class TestSaturationHelpers:
    def test_is_one(self):
        assert numeric.is_one(1.0)
        assert numeric.is_one(1.0 - 1e-15)
        assert not numeric.is_one(0.999)

    def test_is_zero(self):
        assert numeric.is_zero(0.0)
        assert numeric.is_zero(1e-15)
        assert not numeric.is_zero(1e-6)

    def test_clamp_probability_absorbs_noise(self):
        assert numeric.clamp_probability(-1e-15) == 0.0
        assert numeric.clamp_probability(1.0 + 1e-15) == 1.0

    def test_clamp_probability_keeps_real_violations(self):
        assert numeric.clamp_probability(-0.5) == -0.5
        assert numeric.clamp_probability(1.5) == 1.5

    def test_clamp_probability_identity_inside_interval(self):
        assert numeric.clamp_probability(0.25) == 0.25


class TestComparisons:
    def test_leq_and_lt(self):
        assert numeric.leq(1.0, 1.0)
        assert numeric.leq(1.0, 1.0 + 1e-15)
        assert not numeric.lt(1.0, 1.0)
        assert numeric.lt(0.9, 1.0)

    def test_close(self):
        assert numeric.close(1.0, 1.0 + 1e-14)
        assert not numeric.close(1.0, 1.001)

    def test_vector_leq(self):
        assert numeric.vector_leq((1.0, 2.0), (1.0, 3.0))
        assert not numeric.vector_leq((1.0, 4.0), (1.0, 3.0))

    def test_vector_close(self):
        assert numeric.vector_close((1.0, 2.0), (1.0, 2.0 + 1e-14))
        assert not numeric.vector_close((1.0, 2.0), (1.0, 2.1))

    def test_probabilities_close(self):
        assert numeric.probabilities_close(0.3333333333, 1.0 / 3.0)
        assert not numeric.probabilities_close(0.3, 0.4)


class TestProduct:
    def test_empty_product_is_one(self):
        assert numeric.product([]) == 1.0

    def test_product(self):
        assert numeric.product([0.5, 0.5, 2.0]) == pytest.approx(0.5)
