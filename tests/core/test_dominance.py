"""Tests for the dominance predicates (repro.core.dominance)."""

import numpy as np
import pytest

from repro import LinearConstraints, WeightRatioConstraints
from repro.core.dominance import (dominance_region_hyperplane, dominates,
                                  f_dominates, f_dominates_region,
                                  f_dominates_scores, lp_reference_f_dominates,
                                  orthant_of, strictly_dominates,
                                  weight_ratio_f_dominates,
                                  weight_ratio_min_margin)


class TestClassicalDominance:
    def test_weak_dominance_includes_equal(self):
        assert dominates((1.0, 2.0), (1.0, 2.0))

    def test_weak_dominance(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 4.0), (1.0, 3.0))

    def test_strict_dominance(self):
        assert strictly_dominates((1.0, 2.0), (1.0, 3.0))
        assert not strictly_dominates((1.0, 2.0), (1.0, 2.0))
        assert not strictly_dominates((2.0, 2.0), (1.0, 3.0))

    def test_strict_dominance_is_asymmetric(self):
        a, b = (0.5, 0.7), (0.6, 0.9)
        assert strictly_dominates(a, b)
        assert not strictly_dominates(b, a)


class TestFDominance:
    def test_unconstrained_equals_pareto(self):
        constraints = LinearConstraints.unconstrained(2)
        assert f_dominates((1.0, 2.0), (2.0, 3.0), constraints)
        assert not f_dominates((1.0, 4.0), (2.0, 3.0), constraints)

    def test_constrained_can_dominate_incomparable_points(self):
        # Under ω1 >= ω2 the point (1, 3) F-dominates (2, 2.5) even though
        # neither Pareto-dominates the other.
        constraints = LinearConstraints.weak_ranking(2)
        assert not dominates((1.0, 3.0), (2.0, 2.5))
        assert f_dominates((1.0, 3.0), (2.0, 2.5), constraints)

    def test_f_dominance_on_scores(self):
        assert f_dominates_scores((1.0, 2.0), (1.5, 2.0))
        assert not f_dominates_scores((1.0, 2.1), (1.5, 2.0))

    def test_region_form_matches(self):
        constraints = LinearConstraints.weak_ranking(3)
        region = constraints.preference_region()
        t, s = (0.2, 0.5, 0.9), (0.4, 0.6, 0.3)
        assert f_dominates(t, s, constraints) == f_dominates_region(
            t, s, region)

    def test_matches_lp_reference(self):
        rng = np.random.default_rng(1)
        constraints = LinearConstraints.weak_ranking(3)
        for _ in range(50):
            t = rng.uniform(0, 1, 3)
            s = rng.uniform(0, 1, 3)
            assert f_dominates(t, s, constraints) == \
                lp_reference_f_dominates(t, s, constraints)

    def test_pareto_dominance_implies_f_dominance(self):
        rng = np.random.default_rng(2)
        constraints = LinearConstraints.weak_ranking(4)
        for _ in range(50):
            t = rng.uniform(0, 1, 4)
            s = t + rng.uniform(0, 0.5, 4)
            assert f_dominates(t, s, constraints)


class TestWeightRatioDominance:
    CONSTRAINTS = WeightRatioConstraints([(0.5, 2.0)])

    def test_theorem5_matches_vertex_test_2d(self):
        rng = np.random.default_rng(3)
        region = self.CONSTRAINTS.preference_region()
        for _ in range(200):
            t = rng.uniform(0, 10, 2)
            s = rng.uniform(0, 10, 2)
            expected = f_dominates_region(t, s, region)
            assert weight_ratio_f_dominates(t, s, self.CONSTRAINTS) == expected

    def test_theorem5_matches_vertex_test_4d(self):
        rng = np.random.default_rng(4)
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.2, 1.5),
                                              (1.0, 4.0)])
        region = constraints.preference_region()
        for _ in range(200):
            t = rng.uniform(0, 10, 4)
            s = rng.uniform(0, 10, 4)
            expected = f_dominates_region(t, s, region)
            assert weight_ratio_f_dominates(t, s, constraints) == expected

    def test_example3_dominators(self):
        # Example 3 of the paper: t3,1 = (6, 5) and t3,2-like points below
        # the hyperplane dominate t2,3 = (9, 12) under R = [0.5, 2].
        target = (9.0, 12.0)
        assert weight_ratio_f_dominates((6.0, 5.0), target, self.CONSTRAINTS)
        # A point above both hyperplanes does not dominate.
        assert not weight_ratio_f_dominates((8.0, 17.0), target,
                                            self.CONSTRAINTS)

    def test_self_dominance_is_weak(self):
        assert weight_ratio_f_dominates((1.0, 1.0), (1.0, 1.0),
                                        self.CONSTRAINTS)

    def test_min_margin_sign_agrees_with_test(self):
        rng = np.random.default_rng(5)
        for _ in range(100):
            t = rng.uniform(0, 5, 2)
            s = rng.uniform(0, 5, 2)
            margin = weight_ratio_min_margin(t, s, self.CONSTRAINTS)
            assert (margin >= -1e-12) == weight_ratio_f_dominates(
                t, s, self.CONSTRAINTS)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            weight_ratio_f_dominates((1.0, 2.0, 3.0), (1.0, 2.0, 3.0),
                                     self.CONSTRAINTS)


class TestHyperplanesAndOrthants:
    CONSTRAINTS = WeightRatioConstraints([(0.5, 2.0)])

    def test_example3_hyperplanes(self):
        # h_{t,0}: t[2] = -0.5 t[1] + 16.5 and h_{t,1}: t[2] = -2 t[1] + 30
        # for t = t2,3 = (9, 12) and R = [0.5, 2].
        target = (9.0, 12.0)
        h0 = dominance_region_hyperplane(target, self.CONSTRAINTS, 0)
        h1 = dominance_region_hyperplane(target, self.CONSTRAINTS, 1)
        assert h0[0] == pytest.approx(0.5)
        assert h0[1] == pytest.approx(16.5)
        assert h1[0] == pytest.approx(2.0)
        assert h1[1] == pytest.approx(30.0)

    def test_orthant_encoding(self):
        target = (5.0, 5.0)
        assert orthant_of((4.0, 9.0), target, 2) == 0
        assert orthant_of((6.0, 1.0), target, 2) == 1

    def test_orthant_encoding_3d(self):
        target = (5.0, 5.0, 5.0)
        assert orthant_of((4.0, 6.0, 0.0), target, 3) == 0b01
        assert orthant_of((6.0, 6.0, 0.0), target, 3) == 0b11
        assert orthant_of((4.0, 4.0, 0.0), target, 3) == 0b00

    def test_hyperplane_boundary_matches_theorem5(self):
        # A point exactly on h_{t,k} in orthant k weakly dominates t.
        target = (9.0, 12.0)
        # Orthant 0 (s[1] < t[1]); pick s on t[2] = -0.5 t[1] + 16.5.
        s = (7.0, 16.5 - 0.5 * 7.0)
        assert weight_ratio_f_dominates(s, target, self.CONSTRAINTS)
        # Slightly above the hyperplane: no longer dominating.
        s_above = (7.0, 16.5 - 0.5 * 7.0 + 0.1)
        assert not weight_ratio_f_dominates(s_above, target, self.CONSTRAINTS)
