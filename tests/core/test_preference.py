"""Tests for the preference model (repro.core.preference)."""

import numpy as np
import pytest

from repro import LinearConstraints, PreferenceRegion, WeightRatioConstraints
from repro.core.preference import resolve_preference_region


class TestPreferenceRegion:
    def test_vertices_shape(self):
        region = PreferenceRegion([[1.0, 0.0], [0.5, 0.5]])
        assert region.dimension == 2
        assert region.num_vertices == 2

    def test_empty_vertices_rejected(self):
        with pytest.raises(ValueError):
            PreferenceRegion(np.empty((0, 2)))

    def test_score_single_point(self):
        region = PreferenceRegion([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(region.score([3.0, 4.0]), [3.0, 4.0])

    def test_score_matrix(self):
        region = PreferenceRegion([[0.5, 0.5]])
        scores = region.score_matrix(np.array([[2.0, 4.0], [1.0, 1.0]]))
        np.testing.assert_allclose(scores, [[3.0], [1.0]])

    def test_contains_vertex(self):
        region = PreferenceRegion([[1.0, 0.0], [0.0, 1.0]])
        assert region.contains([1.0, 0.0])

    def test_contains_interior_point(self):
        region = PreferenceRegion([[1.0, 0.0], [0.0, 1.0]])
        assert region.contains([0.5, 0.5])

    def test_contains_rejects_outside_point(self):
        region = PreferenceRegion([[1.0, 0.0, 0.0], [0.5, 0.5, 0.0]])
        assert not region.contains([0.0, 0.0, 1.0])


class TestLinearConstraints:
    def test_unconstrained_vertices_are_axes(self):
        constraints = LinearConstraints.unconstrained(3)
        vertices = constraints.enumerate_vertices()
        assert vertices.shape == (3, 3)
        # Every coordinate axis weight must be present.
        for axis in range(3):
            expected = np.zeros(3)
            expected[axis] = 1.0
            assert any(np.allclose(v, expected) for v in vertices)

    @pytest.mark.parametrize("dimension", [2, 3, 4, 5, 6])
    def test_weak_ranking_default_has_d_vertices(self, dimension):
        constraints = LinearConstraints.weak_ranking(dimension)
        vertices = constraints.enumerate_vertices()
        assert vertices.shape[0] == dimension

    def test_weak_ranking_vertices_3d_values(self):
        vertices = LinearConstraints.weak_ranking(3).enumerate_vertices()
        expected = {(1.0, 0.0, 0.0), (0.5, 0.5, 0.0),
                    (1 / 3, 1 / 3, 1 / 3)}
        found = {tuple(np.round(v, 6)) for v in vertices}
        assert found == {tuple(np.round(np.array(e), 6)) for e in expected}

    def test_weak_ranking_partial_constraints(self):
        constraints = LinearConstraints.weak_ranking(4, num_constraints=1)
        vertices = constraints.enumerate_vertices()
        # Only ω1 >= ω2 is imposed: more vertices than the full ranking.
        assert vertices.shape[0] > 4 - 1

    def test_weak_ranking_invalid_count(self):
        with pytest.raises(ValueError):
            LinearConstraints.weak_ranking(3, num_constraints=5)

    def test_vertices_satisfy_constraints(self):
        constraints = LinearConstraints.weak_ranking(4)
        for vertex in constraints.enumerate_vertices():
            assert constraints.feasible(vertex)

    def test_feasible_checks_simplex(self):
        constraints = LinearConstraints.unconstrained(2)
        assert constraints.feasible([0.25, 0.75])
        assert not constraints.feasible([0.5, 0.6])
        assert not constraints.feasible([-0.1, 1.1])
        assert not constraints.feasible([1.0, 0.0, 0.0])

    def test_from_halfspaces(self):
        constraints = LinearConstraints.from_halfspaces(
            2, [((1.0, -2.0), 0.0), ((-1.0, 0.5), 0.0)])
        vertices = constraints.enumerate_vertices()
        found = {tuple(np.round(v, 6)) for v in vertices}
        expected = {tuple(np.round([1 / 3, 2 / 3], 6)),
                    tuple(np.round([2 / 3, 1 / 3], 6))}
        assert found == expected

    def test_from_halfspaces_empty(self):
        constraints = LinearConstraints.from_halfspaces(3, [])
        assert constraints.num_constraints == 0

    def test_infeasible_constraints_raise(self):
        # ω1 <= -1 is impossible on the simplex.
        constraints = LinearConstraints(2, [[1.0, 0.0]], [-1.0])
        with pytest.raises(ValueError, match="empty"):
            constraints.enumerate_vertices()

    def test_dimension_one(self):
        constraints = LinearConstraints.unconstrained(1)
        vertices = constraints.enumerate_vertices()
        np.testing.assert_allclose(vertices, [[1.0]])

    def test_matrix_rhs_shape_validation(self):
        with pytest.raises(ValueError, match="rows"):
            LinearConstraints(2, [[1.0, 0.0]], [0.0, 1.0])

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            LinearConstraints(0)

    def test_preference_region_roundtrip(self):
        constraints = LinearConstraints.weak_ranking(3)
        region = constraints.preference_region()
        assert region.num_vertices == 3
        assert region.dimension == 3


class TestWeightRatioConstraints:
    def test_dimension(self):
        constraints = WeightRatioConstraints([(0.5, 2.0), (1.0, 3.0)])
        assert constraints.dimension == 3

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            WeightRatioConstraints([(2.0, 0.5)])
        with pytest.raises(ValueError):
            WeightRatioConstraints([(0.0, 1.0)])
        with pytest.raises(ValueError):
            WeightRatioConstraints([])

    def test_rectangle_vertex_order(self):
        constraints = WeightRatioConstraints([(0.5, 2.0), (1.0, 3.0)])
        np.testing.assert_allclose(constraints.rectangle_vertex(0),
                                   [0.5, 1.0])
        np.testing.assert_allclose(constraints.rectangle_vertex(3),
                                   [2.0, 3.0])
        np.testing.assert_allclose(constraints.rectangle_vertex(1),
                                   [0.5, 3.0])
        np.testing.assert_allclose(constraints.rectangle_vertex(2),
                                   [2.0, 1.0])

    def test_rectangle_vertex_out_of_range(self):
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        with pytest.raises(ValueError):
            constraints.rectangle_vertex(2)

    def test_num_rectangle_vertices(self):
        assert WeightRatioConstraints([(1, 2)]).num_rectangle_vertices() == 2
        assert WeightRatioConstraints(
            [(1, 2), (1, 2), (1, 2)]).num_rectangle_vertices() == 8

    def test_simplex_vertices_example1(self):
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        vertices = constraints.enumerate_vertices()
        found = {tuple(np.round(v, 6)) for v in vertices}
        expected = {tuple(np.round([1 / 3, 2 / 3], 6)),
                    tuple(np.round([2 / 3, 1 / 3], 6))}
        assert found == expected

    def test_simplex_vertices_lie_on_simplex(self):
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.25, 4.0)])
        for vertex in constraints.enumerate_vertices():
            assert vertex.sum() == pytest.approx(1.0)
            assert np.all(vertex >= 0.0)

    def test_degenerate_range_deduplicates(self):
        constraints = WeightRatioConstraints([(1.0, 1.0)])
        assert constraints.enumerate_vertices().shape[0] == 1

    def test_to_linear_constraints_same_region(self):
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.8, 1.5)])
        linear = constraints.to_linear_constraints()
        direct = {tuple(np.round(v, 6))
                  for v in constraints.enumerate_vertices()}
        via_linear = {tuple(np.round(v, 6))
                      for v in linear.enumerate_vertices()}
        assert direct == via_linear

    def test_lows_highs(self):
        constraints = WeightRatioConstraints([(0.5, 2.0), (1.0, 3.0)])
        np.testing.assert_allclose(constraints.lows, [0.5, 1.0])
        np.testing.assert_allclose(constraints.highs, [2.0, 3.0])


class TestResolvePreferenceRegion:
    def test_resolve_linear(self):
        region = resolve_preference_region(LinearConstraints.weak_ranking(3))
        assert isinstance(region, PreferenceRegion)

    def test_resolve_ratio(self):
        region = resolve_preference_region(
            WeightRatioConstraints([(0.5, 2.0)]))
        assert region.num_vertices == 2

    def test_resolve_region_passthrough(self):
        region = PreferenceRegion([[1.0, 0.0]])
        assert resolve_preference_region(region) is region

    def test_resolve_raw_vertices(self):
        region = resolve_preference_region([[1.0, 0.0], [0.0, 1.0]])
        assert region.num_vertices == 2

    def test_resolve_invalid(self):
        with pytest.raises(TypeError):
            resolve_preference_region("not constraints")
