"""The shared cross-query cache layer (repro.core.cache).

Covers the satellite guarantees of PR 7: the LRU fix over the old FIFO
``_bounded_insert`` (re-inserts *and* reads refresh eviction order, so a
hot constraint survives a long sweep of cold ones), the bounded-size
invariants and counter accuracy of :class:`QueryCache`, and a Hypothesis
property that cached and uncached ARSP answers are bit-identical across
random constraint sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.dual import (_RESULT_CACHE_LIMIT, _TERM_CACHE_LIMIT,
                                   DualIndex)
from repro.core.arsp import compute_arsp
from repro.core.cache import (DEFAULT_CACHE_LIMIT, QueryCache, bounded_insert,
                              bounded_lookup, constraint_key)
from repro.core.preference import (LinearConstraints, PreferenceRegion,
                                   WeightRatioConstraints)
from repro.data.constraints import weak_ranking_constraints
from repro.serve import ArspService

from tests.conftest import make_random_dataset


# ----------------------------------------------------------------------
# bounded_insert / bounded_lookup: the LRU dict primitives
# ----------------------------------------------------------------------

def test_bounded_insert_evicts_stalest_beyond_limit():
    cache = {}
    for key in "abcd":
        bounded_insert(cache, key, key.upper(), 3)
    assert list(cache) == ["b", "c", "d"]
    assert len(cache) == 3


def test_bounded_insert_reinsert_refreshes_recency():
    # The FIFO bug this replaces: re-inserting "a" did not re-rank it, so
    # the next eviction removed the hot key instead of the stale one.
    cache = {}
    for key in "abc":
        bounded_insert(cache, key, key, 3)
    bounded_insert(cache, "a", "a2", 3)
    bounded_insert(cache, "d", "d", 3)
    assert "a" in cache and cache["a"] == "a2"
    assert "b" not in cache  # the genuinely stalest key was evicted
    assert list(cache) == ["c", "a", "d"]


def test_bounded_lookup_hit_refreshes_recency():
    cache = {}
    for key in "abc":
        bounded_insert(cache, key, key, 3)
    assert bounded_lookup(cache, "a") == "a"
    bounded_insert(cache, "d", "d", 3)
    assert "a" in cache
    assert "b" not in cache


def test_bounded_lookup_miss_returns_default():
    cache = {"a": 1}
    assert bounded_lookup(cache, "zzz") is None
    assert bounded_lookup(cache, "zzz", default=-1) == -1
    assert list(cache) == ["a"]


def test_bounded_insert_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        bounded_insert({}, "a", 1, 0)


def test_hot_key_survives_long_sweep():
    """A key touched every other insert outlives limit-many cold keys.

    This is the regression the ISSUE names: under FIFO semantics the hot
    key dies once ``limit`` distinct keys have passed since its first
    insert, no matter how often it is reused.
    """
    limit = 8
    cache = {}
    bounded_insert(cache, "hot", 0, limit)
    for sweep in range(10 * limit):
        bounded_insert(cache, ("cold", sweep), sweep, limit)
        assert bounded_lookup(cache, "hot") == 0, (
            "hot key evicted after %d cold inserts" % (sweep + 1))
    assert len(cache) == limit


# ----------------------------------------------------------------------
# QueryCache: bounded size + counter accuracy
# ----------------------------------------------------------------------

def test_query_cache_counts_hits_misses_evictions():
    cache = QueryCache(limit=2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1
    cache.put("c", 3)  # evicts "b" ("a" was refreshed by the get)
    assert cache.get("b") is None
    assert cache.get("c") == 3
    assert (cache.hits, cache.misses, cache.evictions) == (2, 2, 1)
    stats = cache.stats()
    assert stats == {"size": 2, "limit": 2, "hits": 2, "misses": 2,
                     "evictions": 1, "retained": 0, "repaired": 0,
                     "retained_hits": 0, "hit_rate": 0.5}


def test_query_cache_size_never_exceeds_limit():
    cache = QueryCache(limit=4)
    for index in range(40):
        cache.put(("key", index % 7), index)
        assert len(cache) <= 4
    assert cache.evictions > 0


def test_query_cache_refresh_put_is_not_an_eviction():
    cache = QueryCache(limit=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh at the bound: nothing leaves
    assert cache.evictions == 0
    assert len(cache) == 2
    assert cache.get("a") == 10


def test_query_cache_hit_rate_and_clear():
    cache = QueryCache(limit=4)
    assert cache.hit_rate == 0.0
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    assert cache.hit_rate == 0.5
    cache.clear()
    assert len(cache) == 0
    # Counters keep lifetime totals across a clear.
    assert (cache.hits, cache.misses) == (1, 1)


def test_query_cache_rejects_nonpositive_limit():
    with pytest.raises(ValueError):
        QueryCache(limit=0)


# ----------------------------------------------------------------------
# QueryCache: delta retention (retain_across_delta + counters)
# ----------------------------------------------------------------------

def test_retain_across_delta_replaces_contents_and_counts():
    cache = QueryCache(limit=4)
    cache.put("old-a", 1)
    cache.put("old-b", 2)
    cache.put("old-c", 3)
    kept = cache.retain_across_delta([("new-a", 10, True),
                                      ("new-b", 20, False)])
    assert kept == 2
    assert len(cache) == 2
    assert "old-a" not in cache and "old-c" not in cache
    assert list(cache) == ["new-a", "new-b"]  # survivor order preserved
    assert (cache.retained, cache.repaired) == (2, 1)
    assert cache.evictions == 0  # dropping non-survivors is not eviction
    # Hits on retained entries are counted separately — the numerator of
    # the bench harness's post-delta warm hit rate.
    assert cache.get("new-a") == 10
    assert cache.retained_hits == 1


def test_retained_flag_cleared_by_fresh_put():
    cache = QueryCache(limit=4)
    cache.retain_across_delta([("k", 1, False)])
    cache.put("k", 2)  # a recompute overwrote the carried-over value
    cache.get("k")
    assert cache.retained_hits == 0
    assert cache.retained == 1  # the lifetime total stays


def test_retained_flag_cleared_by_eviction_and_clear():
    cache = QueryCache(limit=2)
    cache.retain_across_delta([("k", 1, False)])
    cache.put("a", 1)
    cache.put("b", 2)  # evicts "k", the stalest entry
    assert "k" not in cache
    cache.retain_across_delta([("j", 1, False)])
    cache.clear()
    cache.put("j", 2)
    cache.get("j")
    assert cache.retained_hits == 0


def test_retain_across_delta_empty_acts_like_clear():
    cache = QueryCache(limit=4)
    cache.put("a", 1)
    assert cache.retain_across_delta([]) == 0
    assert len(cache) == 0
    assert cache.retained == 0


# ----------------------------------------------------------------------
# QueryCache: locked reads (the torn-snapshot satellite fixes)
# ----------------------------------------------------------------------

def test_stats_snapshot_is_consistent_under_concurrent_mutation():
    """``stats()`` under one lock acquisition: the reported hit rate is
    always exactly hits/(hits+misses) *of the same snapshot*, even while
    another thread hammers the cache.  Before the fix each counter was
    read at a different instant, so the invariant could tear."""
    import threading

    cache = QueryCache(limit=4)
    stop = threading.Event()

    def hammer():
        index = 0
        while not stop.is_set():
            cache.put(("key", index % 9), index)
            cache.get(("key", (index * 5) % 9))
            index += 1

    threads = [threading.Thread(target=hammer) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(500):
            stats = cache.stats()
            total = stats["hits"] + stats["misses"]
            expected = stats["hits"] / total if total else 0.0
            assert stats["hit_rate"] == round(expected, 6)
            assert 0 <= stats["size"] <= stats["limit"]
            # Snapshotted iteration and membership never raise, and the
            # key list is a consistent moment in time.
            keys = list(cache)
            assert len(keys) <= stats["limit"]
            for key in keys:
                assert isinstance(key in cache, bool)
    finally:
        stop.set()
        for thread in threads:
            thread.join()


def test_query_cache_iterates_stalest_first():
    cache = QueryCache(limit=3)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")
    assert list(cache) == ["b", "a"]
    assert "a" in cache and "zzz" not in cache


# ----------------------------------------------------------------------
# QueryCache under a Zipf query stream (the PR 8 scenario workload)
# ----------------------------------------------------------------------

def _zipf_stream_events(seed=7, queries=240, pool=6, exponent=1.4):
    """One scenario step's worth of bursty Zipf-skewed query events."""
    from repro.experiments.scenarios import ScenarioSpec, build_scenario

    spec = ScenarioSpec(name="cache-zipf", seed=seed, steps=1,
                        num_objects=8, dimension=3,
                        queries_per_step=queries, constraint_pool=pool,
                        zipf_exponent=exponent, mean_burst=4.0,
                        inserts_per_step=0, deletes_per_step=0,
                        updates_per_step=0)
    return build_scenario(spec).steps[0].queries


@pytest.mark.stream
def test_query_cache_counters_match_replayed_oracle():
    """Replaying a Zipf stream, the live counters agree event-for-event
    with an independent LRU oracle (an OrderedDict moved-to-end by hand).
    """
    import collections

    events = _zipf_stream_events()
    cache = QueryCache(limit=3)
    oracle = collections.OrderedDict()
    hits = misses = evictions = 0
    for event in events:
        key = event.constraint_index
        if oracle.pop(key, None) is not None:
            hits += 1
        else:
            misses += 1
            if len(oracle) == 3:
                oracle.popitem(last=False)
                evictions += 1
        oracle[key] = True

        if cache.get(key) is None:
            cache.put(key, True)
        assert (cache.hits, cache.misses, cache.evictions) == \
            (hits, misses, evictions)
        assert list(cache) == list(oracle)
    # The skew must have produced real contention, not a degenerate run.
    assert hits > 0 and evictions > 0
    assert cache.stats()["hit_rate"] == pytest.approx(hits / (hits + misses))


@pytest.mark.stream
def test_hot_constraint_survives_bursty_zipf_sweep():
    """Under bursty Zipf arrivals the rank-0 constraint is re-touched
    often enough that LRU keeps it resident: every arrival after its
    first is a hit even though the pool exceeds the cache limit."""
    events = _zipf_stream_events(seed=11, queries=300, pool=8,
                                 exponent=1.6)
    cache = QueryCache(limit=4)
    hot_hits = hot_arrivals = 0
    for event in events:
        key = event.constraint_index
        is_hit = cache.get(key) is not None
        if not is_hit:
            cache.put(key, True)
        if key == 0:
            hot_arrivals += 1
            hot_hits += int(is_hit)
    assert hot_arrivals > 50  # the head really dominates the stream
    assert hot_hits == hot_arrivals - 1
    assert 0 in cache


# ----------------------------------------------------------------------
# constraint_key: query identity across constraint types
# ----------------------------------------------------------------------

def test_constraint_key_weight_ratio_identity():
    a = WeightRatioConstraints([(0.5, 2.0), (0.25, 4.0)])
    b = WeightRatioConstraints([(0.5, 2.0), (0.25, 4.0)])
    c = WeightRatioConstraints([(0.5, 2.0), (0.25, 3.0)])
    assert constraint_key(a) == constraint_key(b)
    assert constraint_key(a) != constraint_key(c)


def test_constraint_key_linear_identity():
    a = weak_ranking_constraints(4, 2)
    b = weak_ranking_constraints(4, 2)
    c = weak_ranking_constraints(4, 3)
    assert constraint_key(a) == constraint_key(b)
    assert constraint_key(a) != constraint_key(c)
    assert isinstance(a, LinearConstraints)


def test_constraint_key_region_and_vertices():
    region = PreferenceRegion([[0.5, 0.5], [0.25, 0.75]])
    raw = [[0.5, 0.5], [0.25, 0.75]]
    assert constraint_key(region) != constraint_key(raw)  # typed prefixes
    assert constraint_key(raw) == constraint_key([[0.5, 0.5], [0.25, 0.75]])
    assert hash(constraint_key(region)) is not None


def test_constraint_key_rejects_junk():
    with pytest.raises(TypeError):
        constraint_key(object())


def test_constraint_key_canonicalizes_dtype():
    """Equal regions collide regardless of array dtype.

    The regression the ISSUE names: hashing raw ``.tobytes()`` made a
    float32 matrix and its float64 twin *different* keys, so equal
    constraints missed each other's cache entries.
    """
    import numpy as np

    vertices = [[0.5, 0.5], [0.25, 0.75]]
    assert (constraint_key(np.asarray(vertices, dtype=np.float32))
            == constraint_key(np.asarray(vertices, dtype=np.float64)))
    assert (constraint_key(PreferenceRegion(
                np.asarray(vertices, dtype=np.float32)))
            == constraint_key(PreferenceRegion(vertices)))

    a = weak_ranking_constraints(4, 2)
    b = weak_ranking_constraints(4, 2)
    b.matrix = b.matrix.astype(np.float32)
    b.rhs = b.rhs.astype(np.float32)
    assert constraint_key(a) == constraint_key(b)


def test_constraint_key_canonicalizes_byte_order_and_layout():
    """Equal regions collide regardless of endianness or memory order."""
    import numpy as np

    native = np.asarray([[0.5, 0.5], [0.25, 0.75], [0.1, 0.9]])
    swapped = native.astype(native.dtype.newbyteorder())
    assert swapped.dtype.byteorder != native.dtype.byteorder
    assert constraint_key(swapped) == constraint_key(native)
    fortran = np.asfortranarray(native)
    assert constraint_key(fortran) == constraint_key(native)


def test_constraint_key_epoch_separates_dataset_generations():
    """The same constraints at different epochs are different keys — the
    structural guarantee that a pre-delta cache entry can never answer a
    post-delta query."""
    wr = WeightRatioConstraints([(0.5, 2.0)])
    base = constraint_key(wr)
    at_zero = constraint_key(wr, epoch=0)
    at_one = constraint_key(wr, epoch=1)
    assert at_zero != at_one
    assert base != at_zero  # epoch-less and epoch-0 keys are distinct too
    assert at_zero[:-1] == base and at_zero[-1] == ("epoch", 0)
    assert constraint_key(wr, epoch=1) == at_one


# ----------------------------------------------------------------------
# DualIndex on the migrated helpers: hot-constraint regression
# ----------------------------------------------------------------------

def test_dual_index_hot_constraint_survives_sweep():
    """A constraint re-queried throughout a long sweep never recomputes.

    Pins the LRU migration inside :class:`DualIndex`: under the old FIFO
    caches the hot constraint's entry died after ``_RESULT_CACHE_LIMIT``
    distinct constraints, so its repeat queries stopped hitting.
    """
    dataset = make_random_dataset(seed=5, num_objects=8)
    index = DualIndex(dataset)
    hot = WeightRatioConstraints([(0.5, 2.0)] * (dataset.dimension - 1))
    expected = index.query(hot)
    hits = 0
    for step in range(3 * _RESULT_CACHE_LIMIT):
        low = 0.5 + 0.001 * (step + 1)
        cold = WeightRatioConstraints([(low, 2.0)]
                                      * (dataset.dimension - 1))
        index.query(cold)
        before = index.query_cache_hits
        assert index.query(hot) == expected
        assert index.query_cache_hits == before + 1, (
            "hot constraint fell out of the result cache after %d cold "
            "constraints" % (step + 1))
        hits += 1
    assert hits == 3 * _RESULT_CACHE_LIMIT
    assert len(index._result_cache) <= _RESULT_CACHE_LIMIT
    assert len(index._root_term_cache) <= _TERM_CACHE_LIMIT


# ----------------------------------------------------------------------
# Hypothesis: cached and uncached answers are bit-identical
# ----------------------------------------------------------------------

@settings(deadline=None, max_examples=20)
@given(st.lists(st.sampled_from([(0.5, 2.0), (0.25, 4.0), (0.8, 1.25),
                                 (0.5, 1.0), (1.0, 2.0)]),
                min_size=1, max_size=12),
       st.integers(min_value=0, max_value=3))
def test_cached_answers_bit_identical_across_sequences(boxes, seed):
    """Any interleaving of repeated constraints serves bit-identical
    results to a cache-free one-shot run of the same query."""
    dataset = make_random_dataset(seed=seed, num_objects=7)
    # A tiny cache forces evictions mid-sequence, so hits, misses and
    # recomputes after eviction are all exercised.
    service = ArspService(dataset)
    service.cache = QueryCache(limit=2)
    for low, high in boxes:
        constraints = WeightRatioConstraints(
            [(low, high)] * (dataset.dimension - 1))
        served = service.query(constraints).result
        one_shot = dict(compute_arsp(dataset, constraints,
                                     algorithm="dual"))
        assert served == one_shot  # dict equality is exact float equality
