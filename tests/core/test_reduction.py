"""Tests for the Orthogonal Vectors reduction (Theorem 1)."""

import numpy as np
import pytest

from repro.algorithms import (branch_and_bound_arsp, kdtree_traversal_arsp,
                              loop_arsp)
from repro.core.reduction import (build_arsp_instance,
                                  decide_orthogonal_vectors_via_arsp,
                                  orthogonal_pair_exists)


class TestDirectOVCheck:
    def test_orthogonal_pair_found(self):
        a = [[1, 0, 1], [0, 1, 1]]
        b = [[0, 1, 0], [1, 1, 1]]
        assert orthogonal_pair_exists(a, b)   # (1,0,1) . (0,1,0) = 0

    def test_no_orthogonal_pair(self):
        a = [[1, 1, 0]]
        b = [[1, 0, 1], [0, 1, 1]]
        assert not orthogonal_pair_exists(a, b)

    def test_empty_sets(self):
        assert not orthogonal_pair_exists([], [[1, 0]])


class TestConstruction:
    def test_instance_shapes(self):
        a = [[1, 0], [0, 1]]
        b = [[1, 1], [0, 1], [1, 0]]
        dataset, constraints = build_arsp_instance(a, b)
        # One object per b vector plus the T_A object.
        assert dataset.num_objects == len(b) + 1
        assert dataset.num_instances == len(b) + len(a)
        assert constraints.dimension == 2

    def test_xi_mapping(self):
        dataset, _ = build_arsp_instance([[1, 0]], [[0, 0]])
        t_a = dataset.objects[-1]
        assert t_a.instances[0].values == (0.5, 1.5)

    def test_t_a_probabilities(self):
        dataset, _ = build_arsp_instance([[1, 0], [0, 1], [1, 1]], [[0, 0]])
        t_a = dataset.objects[-1]
        assert all(inst.probability == pytest.approx(1.0 / 3)
                   for inst in t_a)

    def test_b_objects_have_probability_one(self):
        dataset, _ = build_arsp_instance([[1, 0]], [[0, 1], [1, 1]])
        for obj in dataset.objects[:-1]:
            assert obj.total_probability == pytest.approx(1.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_arsp_instance([[1, 0]], [[1, 0, 1]])


class TestReductionCorrectness:
    """The executable content of Theorem 1: OV answer == ARSP-derived answer."""

    SOLVERS = {
        "loop": loop_arsp,
        "kdtt+": kdtree_traversal_arsp,
        "bnb": branch_and_bound_arsp,
    }

    @pytest.mark.parametrize("solver_name", sorted(SOLVERS))
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, solver_name, seed):
        rng = np.random.default_rng(seed)
        n, d = 6, 4
        a = rng.integers(0, 2, size=(n, d))
        b = rng.integers(0, 2, size=(n, d))
        expected = orthogonal_pair_exists(a, b)
        actual = decide_orthogonal_vectors_via_arsp(
            a, b, self.SOLVERS[solver_name])
        assert actual == expected

    def test_positive_instance(self):
        a = [[1, 0, 0], [1, 1, 0]]
        b = [[0, 0, 1], [1, 1, 1]]
        assert decide_orthogonal_vectors_via_arsp(a, b, loop_arsp)

    def test_negative_instance(self):
        # All-ones vectors are never orthogonal to anything non-zero.
        a = [[1, 1, 1]]
        b = [[1, 1, 1], [1, 0, 1]]
        assert not decide_orthogonal_vectors_via_arsp(a, b, loop_arsp)

    def test_all_zero_vector_is_orthogonal_to_everything(self):
        a = [[0, 0]]
        b = [[1, 1]]
        assert decide_orthogonal_vectors_via_arsp(a, b, kdtree_traversal_arsp)
