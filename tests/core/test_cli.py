"""Tests for the command line interface."""

import json

import pytest

from repro.cli import (FIGURE_IDS, build_parser, main, run_arsp,
                       run_effectiveness, run_figure)


class TestParser:
    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_arsp_defaults(self):
        args = build_parser().parse_args(["arsp"])
        assert args.command == "arsp"
        assert args.algorithm == "auto"
        assert args.objects == 200

    def test_figure_requires_known_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "--id", "99x"])


class TestCommands:
    def test_algorithms_command(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "bnb" in out and "kdtt+" in out

    def test_arsp_command_small(self, capsys):
        code = main(["arsp", "--objects", "20", "--instances", "2",
                     "--dimension", "3", "--algorithm", "kdtt+",
                     "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ARSP size" in out
        assert "top-3 objects" in out

    def test_arsp_text_contains_workload_summary(self):
        args = build_parser().parse_args(
            ["arsp", "--objects", "15", "--instances", "2",
             "--dimension", "2", "--algorithm", "loop"])
        text = run_arsp(args)
        assert "m=15" in text
        assert "loop" in text

    def test_figure_5a(self):
        text = run_figure("5a")
        assert "Figure 5(a)" in text
        assert "kdtt+" in text

    def test_figure_8b(self):
        text = run_figure("8b")
        assert "DUAL-S" in text and "QUAD" in text

    def test_unknown_figure_raises(self):
        with pytest.raises(ValueError):
            run_figure("nope")

    def test_all_figure_ids_resolvable(self):
        # Smoke-only for the cheap ones; the expensive sweeps are covered by
        # the benchmarks.  Here we just assert the id table is consistent.
        assert set(FIGURE_IDS) == {"5a", "5d", "5g", "5j", "5m", "5p", "6a",
                                   "8a", "8b"}

    def test_effectiveness_output(self):
        text = run_effectiveness()
        assert "Table I" in text and "Table II" in text

    def test_bench_quick_subset(self, capsys, tmp_path):
        output = tmp_path / "BENCH_arsp.json"
        code = main(["bench", "--quick", "--algorithms", "kdtt+,dual",
                     "--repeats", "1", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench profile 'quick'" in out
        assert "kdtt+" in out and "dual" in out
        assert output.exists()

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.profile == "default"
        assert not args.quick
        assert args.output == "BENCH_arsp.json"
        assert args.workloads is None

    def test_bench_workload_axis_selection(self, capsys, tmp_path):
        output = tmp_path / "BENCH_arsp.json"
        code = main(["bench", "--quick", "--workloads", "anti, corr",
                     "--algorithms", "kdtt+,loop", "--repeats", "1",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[anti]" in out and "[corr]" in out and "[ind]" not in out
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["workload_axis"] == ["anti", "corr"]

    def test_bench_unknown_workload_fails(self, capsys, tmp_path):
        with pytest.raises(KeyError, match="unknown workload"):
            main(["bench", "--quick", "--workloads", "tpch",
                  "--repeats", "1", "--output", "-"])

    def test_bench_stdout_only(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--quick", "--algorithms", "kdtt+",
                     "--repeats", "1", "--output", "-", "--no-check"])
        assert code == 0
        assert not (tmp_path / "BENCH_arsp.json").exists()


@pytest.mark.stream
class TestStreamCommand:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.command == "stream"
        assert args.seed == 0 and args.steps == 4
        assert args.modes == "oneshot,incremental,daemon"

    def test_stream_smoke_all_modes_agree(self, capsys):
        code = main(["stream", "--seed", "9", "--steps", "2",
                     "--objects", "18", "--instances", "3",
                     "--dimension", "3", "--queries", "6", "--pool", "3",
                     "--modes", "oneshot,incremental,service,daemon"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario seed=9" in out
        assert "script fingerprint" in out
        for mode in ("oneshot", "incremental", "service", "daemon"):
            assert mode in out
        assert "sigma cache" in out and "query cache" in out
        assert "byte-identical" in out
        assert "EQUIVALENCE FAILURE" not in out

    def test_stream_mode_subset(self, capsys):
        code = main(["stream", "--steps", "2", "--objects", "16",
                     "--queries", "4", "--pool", "2",
                     "--modes", "incremental"])
        assert code == 0
        out = capsys.readouterr().out
        assert "all 1 replay mode(s) byte-identical" in out

    def test_stream_rejects_unknown_mode(self, capsys):
        assert main(["stream", "--modes", "warp"]) == 2
        assert "unknown replay mode" in capsys.readouterr().err

    def test_stream_rejects_bad_spec(self, capsys):
        assert main(["stream", "--steps", "0"]) == 2
        assert "at least one step" in capsys.readouterr().err


class TestWorkers:
    @pytest.mark.parametrize("argv", [
        ["arsp", "--workers", "0"],
        ["arsp", "--workers", "-3"],
        ["arsp", "--workers", "two"],
        ["bench", "--workers", "0"],
    ])
    def test_invalid_worker_counts_fail_with_a_clear_error(self, argv,
                                                          capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "workers must be a positive integer" in \
            capsys.readouterr().err

    def test_arsp_workers_with_serial_only_algorithm_errors(self, capsys):
        code = main(["arsp", "--objects", "8", "--instances", "2",
                     "--dimension", "2", "--algorithm", "enum",
                     "--workers", "2"])
        assert code == 2
        assert "does not support sharded execution" in \
            capsys.readouterr().err

    @pytest.mark.parallel
    def test_arsp_workers_sharded_run(self, capsys):
        code = main(["arsp", "--objects", "24", "--instances", "2",
                     "--dimension", "3", "--algorithm", "kdtt+",
                     "--workers", "2", "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(workers=2)" in out
        assert "ARSP size" in out

    @pytest.mark.parallel
    def test_bench_workers_cell(self, capsys):
        code = main(["bench", "--quick", "--algorithms", "kdtt+",
                     "--workloads", "ind", "--repeats", "1",
                     "--workers", "2", "--output", "-"])
        assert code == 0
        assert "workers=2" in capsys.readouterr().out


class TestExecutionFlags:
    @pytest.mark.parametrize("argv,message", [
        (["arsp", "--shard-timeout", "0"],
         "shard timeout must be a positive number"),
        (["arsp", "--shard-timeout", "soon"],
         "shard timeout must be a positive number"),
        (["bench", "--max-retries", "-1"],
         "max retries must be a non-negative integer"),
        (["arsp", "--on-failure", "shrug"], "invalid choice"),
        (["arsp", "--backend", "threads"], "invalid choice"),
    ])
    def test_invalid_flags_fail_with_a_clear_error(self, argv, message,
                                                   capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert message in capsys.readouterr().err

    def test_serial_backend_with_many_workers_runs_without_pools(self,
                                                                 capsys):
        # workers > 1 + an explicit serial backend must keep the sharded
        # layout (so results match process runs bit-for-bit) while never
        # spawning a process — the supported degraded mode for machines
        # where pools are unavailable.
        code = main(["arsp", "--objects", "16", "--instances", "2",
                     "--dimension", "3", "--algorithm", "kdtt+",
                     "--workers", "3", "--backend", "serial",
                     "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(workers=3)" in out
        assert "ARSP size" in out

    @pytest.mark.parallel
    @pytest.mark.faults
    def test_arsp_reports_recovery_in_the_summary_line(self, capsys,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:shard=1,attempt=1")
        code = main(["arsp", "--objects", "16", "--instances", "2",
                     "--dimension", "3", "--algorithm", "kdtt+",
                     "--workers", "2", "--backend", "process",
                     "--shard-timeout", "30", "--max-retries", "2",
                     "--on-failure", "serial", "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pool rebuild(s)" in out
        assert "recovered shards [1]" in out
