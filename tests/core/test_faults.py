"""Unit tests for the deterministic fault-injection plans.

``repro.core.faults`` is pure bookkeeping — parsing, matching and the two
worker-side fault actions.  Nothing here spawns a process; the end-to-end
recovery behaviour lives in ``tests/core/test_fault_tolerance.py``.
"""

from __future__ import annotations

import pytest

from repro.core.faults import (CRASH_EXIT_CODE, ENV_VAR, FaultPlan,
                               FaultRule, apply_task_fault)


class TestFaultRule:
    def test_defaults_target_the_first_attempt(self):
        rule = FaultRule(kind="crash", shard=2)
        assert rule.attempt == 1
        assert rule.generation == 0

    @pytest.mark.parametrize("kwargs,match", [
        (dict(kind="explode"), "unknown fault kind"),
        (dict(kind="crash", shard=-1), "shard"),
        (dict(kind="crash", shard=0, attempt=0), "attempt"),
        (dict(kind="hang", shard=0, seconds=0.0), "seconds"),
        (dict(kind="init", generation=-2), "generation"),
    ])
    def test_invalid_rules_are_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultRule(**kwargs)

    def test_spec_roundtrip(self):
        rule = FaultRule(kind="hang", shard=3, attempt=2, seconds=1.5)
        assert FaultPlan.from_spec(rule.to_spec()).rules == (rule,)


class TestFaultPlan:
    def test_parses_multiple_semicolon_separated_rules(self):
        plan = FaultPlan.from_spec(
            "crash:shard=1,attempt=2; hang:shard=0,seconds=0.5 ;"
            "init:generation=1;attach:generation=0")
        assert [rule.kind for rule in plan.rules] == [
            "crash", "hang", "init", "attach"]
        assert plan  # non-empty plans are truthy

    def test_spec_roundtrip_preserves_every_rule(self):
        spec = "crash:shard=1,attempt=2;hang:shard=0,attempt=1,seconds=0.5"
        plan = FaultPlan.from_spec(spec)
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    @pytest.mark.parametrize("spec", [
        "crash",                      # no shard
        "crash:shard=x",              # non-integer
        "hang:shard=0,seconds=abc",   # non-float
        "crash:shard=0,generation=1", # field not valid for the kind
        "sigsegv:shard=0",            # unknown kind
        "crash=shard:0",              # malformed layout
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(spec)

    def test_task_rule_matches_shard_and_attempt(self):
        plan = FaultPlan.from_spec("crash:shard=1,attempt=2")
        assert plan.task_rule(shard=1, attempt=2).kind == "crash"
        assert plan.task_rule(shard=1, attempt=1) is None
        assert plan.task_rule(shard=0, attempt=2) is None

    def test_pool_rules_match_their_generation(self):
        plan = FaultPlan.from_spec("init:generation=1;attach:generation=0")
        assert plan.init_rule(0) is None
        assert plan.init_rule(1).kind == "init"
        assert plan.attach_rule(0).kind == "attach"
        assert plan.attach_rule(1) is None

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_VAR, "   ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_VAR, "crash:shard=0")
        assert FaultPlan.from_env().task_rule(0, 1).kind == "crash"
        monkeypatch.setenv(ENV_VAR, "nonsense")
        with pytest.raises(ValueError, match=ENV_VAR):
            FaultPlan.from_env()


class TestApplyTaskFault:
    def test_crash_rule_exits_the_process(self, monkeypatch):
        import os

        exits = []
        monkeypatch.setattr(os, "_exit", exits.append)
        plan = FaultPlan.from_spec("crash:shard=2,attempt=1")
        apply_task_fault(plan, shard=2, attempt=1)
        assert exits == [CRASH_EXIT_CODE]

    def test_hang_rule_sleeps_for_the_configured_time(self, monkeypatch):
        import time

        naps = []
        monkeypatch.setattr(time, "sleep", naps.append)
        plan = FaultPlan.from_spec("hang:shard=0,seconds=0.25")
        apply_task_fault(plan, shard=0, attempt=1)
        assert naps == [0.25]

    def test_non_matching_calls_are_no_ops(self, monkeypatch):
        import os
        import time

        monkeypatch.setattr(os, "_exit", lambda code: pytest.fail("exited"))
        monkeypatch.setattr(time, "sleep", lambda s: pytest.fail("slept"))
        plan = FaultPlan.from_spec("crash:shard=1;hang:shard=2")
        apply_task_fault(plan, shard=0, attempt=1)
        apply_task_fault(None, shard=1, attempt=1)
