"""Tests for the continuous-uncertainty extension (repro.continuous)."""

import numpy as np
import pytest

from repro import LinearConstraints, WeightRatioConstraints
from repro.continuous import (GaussianObject, UniformBoxObject, discretize,
                              discretized_arsp, monte_carlo_object_arsp)


def make_objects():
    return [
        UniformBoxObject(0, lo=[0.0, 0.0], hi=[0.2, 0.2], label="strong"),
        UniformBoxObject(1, lo=[0.4, 0.4], hi=[0.6, 0.6], label="middle"),
        UniformBoxObject(2, lo=[0.8, 0.8], hi=[1.0, 1.0], label="weak"),
        GaussianObject(3, mean=[0.5, 0.1], std=[0.05, 0.05],
                       appearance_probability=0.7, label="noisy"),
    ]


class TestModels:
    def test_uniform_box_samples_inside_box(self):
        obj = UniformBoxObject(0, [0.0, 1.0], [0.5, 2.0])
        samples = obj.sample(np.random.default_rng(0), 200)
        assert samples.shape == (200, 2)
        assert np.all(samples >= [0.0, 1.0]) and np.all(samples <= [0.5, 2.0])

    def test_uniform_box_mean(self):
        obj = UniformBoxObject(0, [0.0, 1.0], [1.0, 3.0])
        np.testing.assert_allclose(obj.mean(), [0.5, 2.0])

    def test_uniform_box_validation(self):
        with pytest.raises(ValueError):
            UniformBoxObject(0, [1.0, 0.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            UniformBoxObject(0, [0.0], [1.0, 1.0])

    def test_gaussian_truncation(self):
        obj = GaussianObject(0, mean=[0.5, 0.5], std=[1.0, 1.0],
                             bounds=([0.0, 0.0], [1.0, 1.0]))
        samples = obj.sample(np.random.default_rng(1), 500)
        assert np.all(samples >= 0.0) and np.all(samples <= 1.0)

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            GaussianObject(0, mean=[0.5], std=[-1.0])

    def test_appearance_probability_bounds(self):
        with pytest.raises(ValueError):
            UniformBoxObject(0, [0.0], [1.0], appearance_probability=0.0)
        with pytest.raises(ValueError):
            UniformBoxObject(0, [0.0], [1.0], appearance_probability=1.5)


class TestDiscretize:
    def test_shape_and_probabilities(self):
        dataset = discretize(make_objects(), samples_per_object=8, seed=2)
        dataset.validate()
        assert dataset.num_objects == 4
        assert dataset.num_instances == 32
        assert dataset.objects[0].total_probability == pytest.approx(1.0)
        assert dataset.objects[3].total_probability == pytest.approx(0.7)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            discretize([], samples_per_object=4)
        with pytest.raises(ValueError):
            discretize(make_objects(), samples_per_object=0)
        with pytest.raises(ValueError):
            discretize([UniformBoxObject(0, [0.0], [1.0]),
                        UniformBoxObject(0, [0.0], [1.0])])
        with pytest.raises(ValueError):
            discretize([UniformBoxObject(0, [0.0], [1.0]),
                        UniformBoxObject(1, [0.0, 0.0], [1.0, 1.0])])

    def test_discretized_arsp_ordering(self):
        constraints = LinearConstraints.weak_ranking(2)
        result = discretized_arsp(make_objects(), constraints,
                                  samples_per_object=12, seed=3)
        # The object near the origin must beat the one near (1, 1).
        assert result[0] > result[2]
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in result.values())


class TestMonteCarlo:
    def test_estimates_and_errors(self):
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        estimates = monte_carlo_object_arsp(make_objects(), constraints,
                                            num_trials=300, seed=4)
        assert set(estimates) == {0, 1, 2, 3}
        for probability, standard_error in estimates.values():
            assert 0.0 <= probability <= 1.0
            assert 0.0 <= standard_error <= 0.5

    def test_dominating_object_has_high_probability(self):
        constraints = LinearConstraints.weak_ranking(2)
        estimates = monte_carlo_object_arsp(make_objects(), constraints,
                                            num_trials=400, seed=5)
        assert estimates[0][0] > 0.9
        assert estimates[2][0] < 0.2

    def test_agrees_with_discretized_estimate(self):
        """Both reductions must agree within Monte Carlo error."""
        constraints = LinearConstraints.weak_ranking(2)
        objects = make_objects()
        mc = monte_carlo_object_arsp(objects, constraints, num_trials=800,
                                     seed=6)
        disc = discretized_arsp(objects, constraints, samples_per_object=24,
                                seed=7)
        for object_id, (estimate, standard_error) in mc.items():
            assert abs(estimate - disc[object_id]) <= max(
                5 * standard_error, 0.12)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            monte_carlo_object_arsp(make_objects(),
                                    LinearConstraints.weak_ranking(2),
                                    num_trials=0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            monte_carlo_object_arsp(make_objects(),
                                    LinearConstraints.weak_ranking(3),
                                    num_trials=10)

    def test_appearance_probability_lowers_competition(self):
        """If the dominating object rarely appears, others benefit."""
        constraints = LinearConstraints.weak_ranking(2)
        rare_winner = [
            UniformBoxObject(0, [0.0, 0.0], [0.1, 0.1],
                             appearance_probability=0.2),
            UniformBoxObject(1, [0.5, 0.5], [0.6, 0.6]),
        ]
        estimates = monte_carlo_object_arsp(rare_winner, constraints,
                                            num_trials=600, seed=8)
        assert estimates[1][0] > 0.6
