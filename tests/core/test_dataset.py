"""Tests for the uncertain data model (repro.core.dataset)."""

import numpy as np
import pytest

from repro import Instance, UncertainDataset, UncertainObject


class TestInstance:
    def test_dimension(self):
        instance = Instance(0, 0, (1.0, 2.0, 3.0), 0.5)
        assert instance.dimension == 3

    def test_indexing(self):
        instance = Instance(0, 0, (1.0, 2.0, 3.0), 0.5)
        assert instance[0] == 1.0
        assert instance[2] == 3.0

    def test_as_array(self):
        instance = Instance(0, 0, (1.0, 2.0), 0.5)
        np.testing.assert_allclose(instance.as_array(), [1.0, 2.0])

    def test_frozen(self):
        instance = Instance(0, 0, (1.0,), 0.5)
        with pytest.raises(Exception):
            instance.probability = 0.7


class TestUncertainObject:
    def make(self, probs=(0.3, 0.4)):
        instances = [Instance(0, i, (float(i), float(i) + 1.0), p)
                     for i, p in enumerate(probs)]
        return UncertainObject(object_id=0, instances=instances)

    def test_total_probability(self):
        assert self.make().total_probability == pytest.approx(0.7)

    def test_len_and_iter(self):
        obj = self.make()
        assert len(obj) == 2
        assert [inst.instance_id for inst in obj] == [0, 1]

    def test_mean_vector(self):
        obj = self.make()
        np.testing.assert_allclose(obj.mean_vector(), [0.5, 1.5])

    def test_expected_vector_weights_by_probability(self):
        obj = self.make(probs=(0.75, 0.25))
        np.testing.assert_allclose(obj.expected_vector(), [0.25, 1.25])

    def test_validate_rejects_total_above_one(self):
        obj = self.make(probs=(0.7, 0.7))
        with pytest.raises(ValueError, match="total probability"):
            obj.validate()

    def test_validate_rejects_nonpositive_probability(self):
        obj = UncertainObject(0, [Instance(0, 0, (1.0,), 0.0)])
        with pytest.raises(ValueError, match="non-positive"):
            obj.validate()

    def test_validate_rejects_dimension_mismatch(self):
        obj = UncertainObject(0, [Instance(0, 0, (1.0,), 0.4),
                                  Instance(0, 1, (1.0, 2.0), 0.4)])
        with pytest.raises(ValueError, match="dimension"):
            obj.validate()

    def test_validate_rejects_wrong_owner(self):
        obj = UncertainObject(0, [Instance(1, 0, (1.0,), 0.4)])
        with pytest.raises(ValueError, match="claims object"):
            obj.validate()

    def test_empty_object_dimension_raises(self):
        obj = UncertainObject(0, [])
        with pytest.raises(ValueError):
            _ = obj.dimension


class TestUncertainDataset:
    def test_from_instance_lists_default_probabilities(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(0.0, 1.0), (1.0, 0.0)], [(0.5, 0.5)]])
        assert dataset.num_objects == 2
        assert dataset.num_instances == 3
        assert dataset.objects[0].instances[0].probability == pytest.approx(0.5)
        assert dataset.objects[1].instances[0].probability == pytest.approx(1.0)

    def test_from_instance_lists_explicit_probabilities(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(0.0,)], [(1.0,)]], [[0.4], [0.9]])
        assert dataset.objects[0].total_probability == pytest.approx(0.4)

    def test_from_instance_lists_mismatched_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            UncertainDataset.from_instance_lists([[(0.0,), (1.0,)]], [[0.4]])

    def test_from_certain_points(self):
        dataset = UncertainDataset.from_certain_points(
            [(1.0, 2.0), (3.0, 4.0)], probabilities=[0.8, 0.6])
        assert dataset.num_objects == 2
        assert all(len(obj) == 1 for obj in dataset)
        assert dataset.objects[1].instances[0].probability == pytest.approx(0.6)

    def test_instance_ids_are_global_and_dense(self, example1_dataset):
        ids = [inst.instance_id for inst in example1_dataset.instances]
        assert ids == list(range(example1_dataset.num_instances))

    def test_dimension(self, example1_dataset):
        assert example1_dataset.dimension == 2

    def test_instance_matrix_shape(self, example1_dataset):
        matrix = example1_dataset.instance_matrix()
        assert matrix.shape == (10, 2)

    def test_probability_vector_sums(self, example1_dataset):
        totals = example1_dataset.probability_vector().sum()
        assert totals == pytest.approx(4.0)

    def test_object_ids(self, example1_dataset):
        object_ids = example1_dataset.object_ids()
        assert list(object_ids[:2]) == [0, 0]
        assert list(object_ids[-2:]) == [3, 3]

    def test_accessors(self, example1_dataset):
        assert example1_dataset.object(2).label == "T3"
        assert example1_dataset.instance(0).values == (2.0, 9.0)
        assert len(example1_dataset) == 4

    def test_validate_accepts_valid(self, example1_dataset):
        example1_dataset.validate()

    def test_validate_rejects_duplicate_instance_ids(self):
        objects = [
            UncertainObject(0, [Instance(0, 0, (1.0,), 0.5)]),
            UncertainObject(1, [Instance(1, 0, (2.0,), 0.5)]),
        ]
        dataset = UncertainDataset(objects)
        with pytest.raises(ValueError, match="duplicate instance id"):
            dataset.validate()

    def test_validate_rejects_misnumbered_objects(self):
        objects = [UncertainObject(1, [Instance(1, 0, (1.0,), 0.5)])]
        dataset = UncertainDataset(objects)
        with pytest.raises(ValueError, match="position"):
            dataset.validate()

    def test_validate_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="no objects"):
            UncertainDataset([]).validate()

    def test_aggregate_uses_plain_mean(self, example1_dataset):
        aggregated = example1_dataset.aggregate()
        assert aggregated.num_objects == 4
        assert all(len(obj) == 1 for obj in aggregated)
        t1_mean = aggregated.objects[0].instances[0].values
        assert t1_mean == pytest.approx((7.0, 9.5))

    def test_aggregate_weighted(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(0.0, 0.0), (4.0, 4.0)]], [[0.75, 0.25]])
        aggregated = dataset.aggregate(weighted=True)
        assert aggregated.objects[0].instances[0].values == pytest.approx(
            (1.0, 1.0))

    def test_project(self, example1_dataset):
        projected = example1_dataset.project([1])
        assert projected.dimension == 1
        assert projected.num_instances == example1_dataset.num_instances
        assert projected.instance(0).values == (9.0,)

    def test_project_preserves_probabilities(self, example1_dataset):
        projected = example1_dataset.project([0])
        np.testing.assert_allclose(projected.probability_vector(),
                                   example1_dataset.probability_vector())

    def test_subset(self, example1_dataset):
        subset = example1_dataset.subset([1, 3])
        assert subset.num_objects == 2
        assert subset.objects[0].label == "T2"
        assert subset.objects[1].label == "T4"
        subset.validate()

    def test_summary(self, example1_dataset):
        summary = example1_dataset.summary()
        assert summary["num_objects"] == 4
        assert summary["num_instances"] == 10
        assert summary["max_instances_per_object"] == 3
        assert summary["objects_below_full_probability"] == 0

    def test_summary_counts_incomplete_objects(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(0.0,)], [(1.0,)]], [[0.5], [1.0]])
        assert dataset.summary()["objects_below_full_probability"] == 1


# ----------------------------------------------------------------------
# Deltas: ObjectSpec / DatasetDelta / apply_delta (the scenario engine's
# edit contract)
# ----------------------------------------------------------------------

from repro.core.dataset import DatasetDelta, ObjectSpec  # noqa: E402


def _spec(*rows, probabilities=None, label=None):
    return ObjectSpec.make(rows, probabilities=probabilities, label=label)


class TestObjectSpec:
    def test_make_defaults_to_uniform_probabilities(self):
        spec = _spec((0.0, 1.0), (1.0, 0.0))
        assert spec.probabilities == pytest.approx((0.5, 0.5))
        spec.validate()

    def test_make_normalises_numpy_rows(self):
        spec = ObjectSpec.make(np.array([[0.25, 0.75]]))
        assert spec.instances == ((0.25, 0.75),)
        assert isinstance(spec.instances[0][0], float)

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one instance"):
            ObjectSpec(instances=(), probabilities=()).validate()

    def test_validate_rejects_probability_count_mismatch(self):
        spec = ObjectSpec(instances=((0.0,), (1.0,)), probabilities=(0.5,))
        with pytest.raises(ValueError, match="probabilities"):
            spec.validate()

    def test_validate_rejects_mixed_dimensions(self):
        spec = _spec((0.0, 1.0), (1.0,))
        with pytest.raises(ValueError, match="dimensions"):
            spec.validate()

    def test_specs_are_hashable_values(self):
        assert hash(_spec((0.0, 1.0))) == hash(_spec((0.0, 1.0)))


class TestDatasetDelta:
    def test_is_empty(self):
        assert DatasetDelta().is_empty
        assert not DatasetDelta(deletes=(0,)).is_empty

    def test_validate_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError, match="out of range"):
            DatasetDelta(deletes=(4,)).validate(num_objects=4)
        with pytest.raises(ValueError, match="out of range"):
            DatasetDelta(updates=((-1, _spec((0.0,))),)).validate(4)

    def test_validate_rejects_duplicate_edits(self):
        with pytest.raises(ValueError, match="deleted twice"):
            DatasetDelta(deletes=(1, 1)).validate(4)
        with pytest.raises(ValueError, match="updated twice"):
            DatasetDelta(updates=((1, _spec((0.0,))),
                                  (1, _spec((1.0,))))).validate(4)

    def test_validate_rejects_update_of_deleted(self):
        delta = DatasetDelta(deletes=(2,), updates=((2, _spec((0.0,))),))
        with pytest.raises(ValueError, match="both updated and deleted"):
            delta.validate(4)

    def test_validate_rejects_emptying_delta(self):
        with pytest.raises(ValueError, match="empty"):
            DatasetDelta(deletes=(0, 1)).validate(2)

    def test_mappings_translation_tables(self):
        # 5 objects; delete 1 and 3, update 4, insert one: survivors are
        # old 0, 2, 4 -> new 0, 1, 2; the insert is new 3.
        delta = DatasetDelta(inserts=(_spec((0.5,)),), deletes=(1, 3),
                             updates=((4, _spec((0.25,))),))
        old_to_new, unchanged = delta.mappings(5)
        assert old_to_new.tolist() == [0, -1, 1, -1, 2]
        assert unchanged.tolist() == [0, 2, -1, -1]

    def test_mappings_identity_for_empty_delta(self):
        old_to_new, unchanged = DatasetDelta().mappings(3)
        assert old_to_new.tolist() == [0, 1, 2]
        assert unchanged.tolist() == [0, 1, 2]


class TestApplyDelta:
    def test_apply_delta_matches_manual_rebuild(self, example1_dataset):
        delta = DatasetDelta(
            inserts=(_spec((1.0, 2.0), label="new"),),
            deletes=(1,),
            updates=((2, _spec((3.0, 4.0), (5.0, 6.0),
                               probabilities=(0.4, 0.4))),))
        result = example1_dataset.apply_delta(delta)
        result.validate()
        assert result.num_objects == 4
        # Survivors keep their relative order and labels; the update's
        # replacement spec takes the old object's label by default.
        assert [obj.label for obj in result.objects] == ["T1", "T3", "T4",
                                                         "new"]
        assert result.objects[1].instances[0].values == (3.0, 4.0)
        assert result.objects[1].total_probability == pytest.approx(0.8)
        # Canonical renumbering: dense global instance ids.
        ids = [inst.instance_id for inst in result.instances]
        assert ids == list(range(result.num_instances))

    def test_unchanged_objects_keep_identical_segments(self, example1_dataset):
        delta = DatasetDelta(deletes=(0,))
        result = example1_dataset.apply_delta(delta)
        for new_id, old_id in enumerate([1, 2, 3]):
            old = example1_dataset.objects[old_id]
            new = result.objects[new_id]
            assert [i.values for i in new.instances] == \
                [i.values for i in old.instances]
            assert [i.probability for i in new.instances] == \
                [i.probability for i in old.instances]

    def test_apply_delta_validates(self, example1_dataset):
        with pytest.raises(ValueError, match="out of range"):
            example1_dataset.apply_delta(DatasetDelta(deletes=(99,)))

    def test_empty_delta_is_an_equal_rebuild(self, example1_dataset):
        result = example1_dataset.apply_delta(DatasetDelta())
        assert result.num_objects == example1_dataset.num_objects
        assert [i.values for i in result.instances] == \
            [i.values for i in example1_dataset.instances]


class TestEpoch:
    """The dataset's delta generation — the version the serving layer
    folds into its cache keys (a stale hit is impossible by construction
    because no request ever asks for an old-epoch key)."""

    def test_fresh_datasets_start_at_zero(self, example1_dataset):
        assert example1_dataset.epoch == 0
        assert UncertainDataset.from_certain_points([[1.0], [2.0]]).epoch == 0

    def test_apply_delta_advances_by_exactly_one(self, example1_dataset):
        stepped = example1_dataset.apply_delta(DatasetDelta(deletes=(0,)))
        assert stepped.epoch == 1
        assert example1_dataset.epoch == 0  # the input is untouched
        # Chained deltas count monotonically — even a no-op delta is a
        # generation move (the serving layer treats it as one).
        again = stepped.apply_delta(DatasetDelta())
        assert again.epoch == 2

    def test_derived_datasets_restart_at_zero(self, example1_dataset):
        stepped = example1_dataset.apply_delta(DatasetDelta(deletes=(0,)))
        assert stepped.subset([0, 1]).epoch == 0
        assert stepped.truncate_instances(1).epoch == 0
        assert stepped.project([0]).epoch == 0
