"""Tests for possible-world semantics (repro.core.possible_worlds)."""

import math

import pytest

from repro import LinearConstraints, UncertainDataset, WeightRatioConstraints
from repro.core.possible_worlds import (brute_force_arsp,
                                        brute_force_object_arsp,
                                        iter_possible_worlds,
                                        number_of_possible_worlds,
                                        world_probability, world_rskyline)
from repro.core.preference import resolve_preference_region


@pytest.fixture
def tiny_dataset():
    return UncertainDataset.from_instance_lists(
        [[(1.0, 4.0), (2.0, 2.0)], [(3.0, 1.0)]],
        [[0.5, 0.3], [1.0]])


class TestWorldEnumeration:
    def test_number_of_possible_worlds(self, tiny_dataset):
        # Object 1 has mass 0.8 (can be absent), object 2 has mass 1.0.
        assert number_of_possible_worlds(tiny_dataset) == 3

    def test_number_of_possible_worlds_example1(self, example1_dataset):
        assert number_of_possible_worlds(example1_dataset) == 2 * 3 * 3 * 2

    def test_world_probabilities_sum_to_one(self, tiny_dataset):
        total = sum(prob for _, prob in iter_possible_worlds(tiny_dataset))
        assert total == pytest.approx(1.0)

    def test_world_probabilities_sum_to_one_example1(self, example1_dataset):
        total = sum(prob for _, prob in iter_possible_worlds(example1_dataset))
        assert total == pytest.approx(1.0)

    def test_world_probability_matches_equation1(self, tiny_dataset):
        instances = tiny_dataset.instances
        # World: object 0 absent, object 1 takes its instance.
        world = (None, instances[2])
        assert world_probability(tiny_dataset, world) == pytest.approx(
            (1.0 - 0.8) * 1.0)
        # World: object 0 takes its first instance.
        world = (instances[0], instances[2])
        assert world_probability(tiny_dataset, world) == pytest.approx(0.5)

    def test_world_probability_validates_length(self, tiny_dataset):
        with pytest.raises(ValueError):
            world_probability(tiny_dataset, (None,))

    def test_world_probability_validates_ownership(self, tiny_dataset):
        instances = tiny_dataset.instances
        with pytest.raises(ValueError):
            world_probability(tiny_dataset, (instances[2], instances[2]))

    def test_iter_worlds_yields_instances_of_right_objects(self, tiny_dataset):
        for world, _ in iter_possible_worlds(tiny_dataset):
            for object_id, instance in enumerate(world):
                if instance is not None:
                    assert instance.object_id == object_id


class TestWorldRSkyline:
    def test_unconstrained_is_pareto_skyline(self, tiny_dataset):
        region = resolve_preference_region(
            LinearConstraints.unconstrained(2))
        instances = tiny_dataset.instances
        world = (instances[0], instances[2])   # (1,4) and (3,1): both skyline
        skyline = world_rskyline(world, region)
        assert {inst.instance_id for inst in skyline} == {0, 2}

    def test_dominated_instance_excluded(self, tiny_dataset):
        region = resolve_preference_region(
            LinearConstraints.unconstrained(2))
        world = (tiny_dataset.instances[1], tiny_dataset.instances[2])
        # (2,2) vs (3,1): incomparable, both stay.
        assert len(world_rskyline(world, region)) == 2

    def test_constrained_rskyline_smaller(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(1.0, 3.0)], [(2.0, 2.5)]], [[1.0], [1.0]])
        world = tuple(dataset.instances)
        unconstrained = resolve_preference_region(
            LinearConstraints.unconstrained(2))
        ranked = resolve_preference_region(LinearConstraints.weak_ranking(2))
        assert len(world_rskyline(world, unconstrained)) == 2
        assert len(world_rskyline(world, ranked)) == 1

    def test_same_object_instances_do_not_dominate_each_other(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(1.0, 1.0), (2.0, 2.0)]], [[0.5, 0.5]])
        region = resolve_preference_region(
            LinearConstraints.unconstrained(2))
        # Both instances belong to the same object, so even the dominated
        # one stays in the rskyline of a (hypothetical) joint world.
        world_like = tuple(dataset.instances[:1])
        assert len(world_rskyline(world_like, region)) == 1


class TestBruteForceARSP:
    def test_example1_value(self, example1_dataset, ratio_constraints_2d):
        result = brute_force_arsp(example1_dataset, ratio_constraints_2d)
        assert result[0] == pytest.approx(2.0 / 9.0)
        assert result[1] == pytest.approx(0.0)

    def test_probabilities_within_unit_interval(self, small_dataset_3d,
                                                wr_constraints_3d):
        result = brute_force_arsp(small_dataset_3d, wr_constraints_3d)
        assert all(0.0 <= value <= 1.0 for value in result.values())

    def test_instance_probability_bounded_by_existence(self, small_dataset_3d,
                                                       wr_constraints_3d):
        result = brute_force_arsp(small_dataset_3d, wr_constraints_3d)
        for instance in small_dataset_3d.instances:
            assert result[instance.instance_id] <= instance.probability + 1e-12

    def test_single_object_gets_full_probability(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(0.5, 0.5), (0.2, 0.9)]], [[0.6, 0.4]])
        result = brute_force_arsp(dataset,
                                  LinearConstraints.unconstrained(2))
        # With no other object nothing can dominate: Pr equals existence.
        assert result[0] == pytest.approx(0.6)
        assert result[1] == pytest.approx(0.4)

    def test_object_aggregation(self, example1_dataset, ratio_constraints_2d):
        per_object = brute_force_object_arsp(example1_dataset,
                                             ratio_constraints_2d)
        per_instance = brute_force_arsp(example1_dataset,
                                        ratio_constraints_2d)
        assert per_object[0] == pytest.approx(per_instance[0]
                                              + per_instance[1])

    def test_fully_dominated_object_is_zero(self):
        dataset = UncertainDataset.from_instance_lists(
            [[(0.0, 0.0)], [(1.0, 1.0)]], [[1.0], [1.0]])
        result = brute_force_arsp(dataset,
                                  LinearConstraints.unconstrained(2))
        assert result[0] == pytest.approx(1.0)
        assert result[1] == pytest.approx(0.0)

    def test_weight_ratio_equals_linear_form(self, example1_dataset):
        ratio = WeightRatioConstraints([(0.5, 2.0)])
        linear = ratio.to_linear_constraints()
        assert brute_force_arsp(example1_dataset, ratio) == pytest.approx(
            brute_force_arsp(example1_dataset, linear))

    def test_equation3_factorisation(self, example1_dataset,
                                     ratio_constraints_2d):
        """The possible-world definition matches equation (3) of the paper."""
        from repro.core.dominance import f_dominates
        result = brute_force_arsp(example1_dataset, ratio_constraints_2d)
        for instance in example1_dataset.instances:
            expected = instance.probability
            for obj in example1_dataset.objects:
                if obj.object_id == instance.object_id:
                    continue
                mass = sum(other.probability for other in obj
                           if f_dominates(other.values, instance.values,
                                          ratio_constraints_2d))
                expected *= (1.0 - mass)
            assert result[instance.instance_id] == pytest.approx(expected)

    def test_total_probability_conservation(self, example1_dataset,
                                            ratio_constraints_2d):
        """Expected rskyline size equals the sum over instances of Pr_rsky."""
        region = resolve_preference_region(ratio_constraints_2d)
        expected_size = 0.0
        for world, probability in iter_possible_worlds(example1_dataset):
            expected_size += probability * len(world_rskyline(world, region))
        result = brute_force_arsp(example1_dataset, ratio_constraints_2d)
        assert sum(result.values()) == pytest.approx(expected_size)

    def test_monotone_in_constraint_tightening(self, example1_dataset):
        """A larger F (tighter region ⊂ looser region ⇒ more functions?) —
        here: adding constraints can only decrease rskyline probabilities
        relative to the unconstrained skyline probability is *not* generally
        monotone, but the unconstrained case upper-bounds every instance's
        probability computed with the *same* dominance relation restricted
        further.  We check the specific fact the paper states: rskyline
        probabilities are at most the corresponding skyline probabilities.
        """
        skyline_result = brute_force_arsp(
            example1_dataset, LinearConstraints.unconstrained(2))
        rskyline_result = brute_force_arsp(
            example1_dataset, WeightRatioConstraints([(0.5, 2.0)]))
        for key in skyline_result:
            assert rskyline_result[key] <= skyline_result[key] + 1e-12
