"""Tests for the certain-data operators (repro.core.rskyline)."""

import numpy as np
import pytest

from repro import LinearConstraints, WeightRatioConstraints
from repro.core.rskyline import (dominance_counts, eclipse,
                                 is_f_dominated_by_any, rskyline, skyline)


class TestSkyline:
    def test_simple_skyline(self):
        points = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)]
        assert skyline(points) == [0, 1, 2]

    def test_single_point(self):
        assert skyline([(1.0, 1.0)]) == [0]

    def test_duplicates_stay_together(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert skyline(points) == [0, 1]

    def test_chain_keeps_only_minimum(self):
        points = [(3.0, 3.0), (2.0, 2.0), (1.0, 1.0)]
        assert skyline(points) == [2]

    def test_all_incomparable(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert skyline(points) == [0, 1, 2]


class TestRSkyline:
    def test_rskyline_subset_of_skyline(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 1, size=(40, 3))
        constraints = LinearConstraints.weak_ranking(3)
        assert set(rskyline(points, constraints)) <= set(skyline(points))

    def test_unconstrained_equals_skyline(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(30, 3))
        constraints = LinearConstraints.unconstrained(3)
        assert rskyline(points, constraints) == skyline(points)

    def test_constraints_shrink_result(self):
        points = [(1.0, 3.0), (2.0, 2.5), (3.0, 1.0)]
        unconstrained = rskyline(points, LinearConstraints.unconstrained(2))
        constrained = rskyline(points, LinearConstraints.weak_ranking(2))
        assert set(constrained) <= set(unconstrained)
        assert len(constrained) < len(unconstrained)

    def test_duplicates_stay_in_rskyline(self):
        points = [(1.0, 1.0), (1.0, 1.0), (5.0, 5.0)]
        constraints = LinearConstraints.weak_ranking(2)
        assert rskyline(points, constraints) == [0, 1]

    def test_example1_aggregated_style(self, example1_dataset,
                                       ratio_constraints_2d):
        aggregated = example1_dataset.aggregate()
        points = [obj.instances[0].values for obj in aggregated.objects]
        result = rskyline(points, ratio_constraints_2d)
        assert len(result) >= 1
        assert set(result) <= set(range(4))


class TestEclipse:
    def test_eclipse_equals_rskyline_of_ratio_region(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, size=(30, 3))
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
        assert eclipse(points, constraints) == rskyline(points, constraints)

    def test_eclipse_subset_of_skyline(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(50, 2))
        constraints = WeightRatioConstraints([(0.5, 2.0)])
        assert set(eclipse(points, constraints)) <= set(skyline(points))

    def test_tighter_range_gives_smaller_eclipse(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(0, 1, size=(60, 2))
        wide = eclipse(points, WeightRatioConstraints([(0.2, 5.0)]))
        narrow = eclipse(points, WeightRatioConstraints([(0.9, 1.1)]))
        assert len(narrow) <= len(wide)


class TestHelpers:
    def test_is_f_dominated_by_any(self):
        constraints = LinearConstraints.weak_ranking(2)
        assert is_f_dominated_by_any((2.0, 2.5), [(1.0, 3.0)], constraints)
        assert not is_f_dominated_by_any((0.5, 0.5), [(1.0, 3.0)],
                                         constraints)

    def test_dominance_counts(self):
        points = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        constraints = LinearConstraints.unconstrained(2)
        assert dominance_counts(points, constraints) == [0, 1, 2]

    def test_dominance_counts_with_constraints(self):
        points = [(1.0, 3.0), (2.0, 2.5)]
        constraints = LinearConstraints.weak_ranking(2)
        counts = dominance_counts(points, constraints)
        assert counts[1] == 1
        assert counts[0] == 0
