"""Unit tests for the execution backend (``repro.core.backend``).

The cross-backend *parity* guarantees live in
``tests/properties/test_property_parallel.py``; this file covers the
backend machinery itself: the deterministic shard layout, worker-count
validation and clamping, dataset shipping (shared memory and the pickle
fallback) and the graceful degradation paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend import (PickledDataset, ProcessBackend,
                                SerialBackend, SharedDatasetHandle,
                                get_backend, pool_size, resolve_workers,
                                run_sharded, shard_bounds, ship_dataset)

from tests.conftest import make_random_dataset


class TestResolveWorkers:
    def test_none_means_one_serial_shard(self):
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("workers", [1, 2, 7, 4096])
    def test_positive_counts_pass_through_unclamped(self, workers):
        # The shard layout must be machine-independent, so the CPU clamp
        # does not apply here (it applies to the pool size instead).
        assert resolve_workers(workers) == workers

    @pytest.mark.parametrize("workers", [0, -1, -100])
    def test_non_positive_counts_are_rejected(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(workers)

    @pytest.mark.parametrize("workers", [2.0, "2", True])
    def test_non_integers_are_rejected(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(workers)


class TestPoolSize:
    def test_clamps_to_the_cpu_count(self):
        assert pool_size(64, num_shards=64, available=3) == 3

    def test_clamps_to_the_shard_count(self):
        assert pool_size(8, num_shards=2, available=16) == 2

    def test_at_least_one_process(self):
        assert pool_size(4, num_shards=0, available=0) == 1

    def test_uses_os_cpu_count_by_default(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert pool_size(99, num_shards=99) == 2
        # An undeterminable CPU count means one CPU, never a crash.
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert pool_size(99, num_shards=99) == 1


class TestShardBounds:
    @pytest.mark.parametrize("num_targets,num_shards", [
        (10, 1), (10, 2), (10, 3), (7, 3), (5, 5),
        (3, 8),   # m < workers: one shard per target
        (1, 2),   # m == 1
        (192, 7),
    ])
    def test_bounds_partition_the_axis(self, num_targets, num_shards):
        bounds = shard_bounds(num_targets, num_shards)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == num_targets
        for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
            assert lo == prev_hi
        sizes = [hi - lo for lo, hi in bounds]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        assert len(bounds) == min(num_targets, num_shards)

    def test_layout_is_deterministic(self):
        assert shard_bounds(11, 3) == shard_bounds(11, 3)
        assert shard_bounds(11, 3) == [(0, 4), (4, 8), (8, 11)]

    def test_zero_targets_keep_one_empty_shard(self):
        # Degenerate inputs still reach the shard function, so they fail
        # (or succeed) exactly like the pre-backend code paths.
        assert shard_bounds(0, 4) == [(0, 0)]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_bounds(10, 0)


class TestDatasetShipping:
    def _roundtrip_checks(self, dataset, restored):
        assert restored.num_objects == dataset.num_objects
        assert restored.num_instances == dataset.num_instances
        np.testing.assert_array_equal(restored.instance_matrix(),
                                      dataset.instance_matrix())
        np.testing.assert_array_equal(restored.probability_vector(),
                                      dataset.probability_vector())
        np.testing.assert_array_equal(restored.object_ids(),
                                      dataset.object_ids())
        assert ([inst.instance_id for inst in restored.instances]
                == [inst.instance_id for inst in dataset.instances])

    def test_rebuilt_datasets_serve_flat_accessors_from_the_payload(self):
        # The shipped arrays *are* the flat views, so a worker's accessor
        # calls must not re-walk the rebuilt Python instance objects.
        dataset = make_random_dataset(seed=2, num_objects=6)
        payload = PickledDataset.create(dataset)
        restored = payload.restore()
        assert restored.instance_matrix() is payload.arrays["points"]
        assert (restored.probability_vector()
                is payload.arrays["probabilities"])
        assert restored.object_ids() is payload.arrays["object_ids"]

    def test_pickled_payload_roundtrip(self):
        dataset = make_random_dataset(seed=3, num_objects=9,
                                      incomplete_fraction=0.4)
        payload = PickledDataset.create(dataset)
        self._roundtrip_checks(dataset, payload.restore())
        payload.unlink()  # no-op, mirrors the shared-memory API

    def test_shared_memory_payload_roundtrip(self):
        dataset = make_random_dataset(seed=4, num_objects=9,
                                      incomplete_fraction=0.4)
        handle = SharedDatasetHandle.create(dataset)
        try:
            self._roundtrip_checks(dataset, handle.restore())
        finally:
            handle.unlink()

    def test_shared_memory_descriptor_pickles_without_the_block(self):
        import pickle

        dataset = make_random_dataset(seed=5, num_objects=4)
        handle = SharedDatasetHandle.create(dataset)
        try:
            shipped = pickle.loads(pickle.dumps(handle))
            assert not hasattr(shipped, "_block")
            self._roundtrip_checks(dataset, shipped.restore())
        finally:
            handle.unlink()

    def test_ship_prefers_shared_memory(self):
        dataset = make_random_dataset(seed=6, num_objects=4)
        payload, release = ship_dataset(dataset)
        try:
            assert isinstance(payload, SharedDatasetHandle)
        finally:
            release()

    def test_ship_falls_back_to_pickle_when_shm_unavailable(self,
                                                            monkeypatch):
        dataset = make_random_dataset(seed=7, num_objects=4)

        def broken_create(cls_dataset):
            raise OSError("no /dev/shm in this environment")

        monkeypatch.setattr(SharedDatasetHandle, "create",
                            staticmethod(broken_create))
        with pytest.warns(RuntimeWarning, match="shared memory unavailable"):
            payload, release = ship_dataset(dataset)
        assert isinstance(payload, PickledDataset)
        self._roundtrip_checks(dataset, payload.restore())
        release()


def _echo_shard(dataset, constraints, lo, hi, scale=1.0):
    """Toy shard function: instance id -> scaled owner id, shard-tagged."""
    return {instance.instance_id: scale * instance.object_id
            for instance in dataset.instances
            if lo <= instance.object_id < hi}


class TestRunSharded:
    def test_merges_in_target_order_with_base_template(self):
        dataset = make_random_dataset(seed=8, num_objects=7)
        base = {inst.instance_id: 0.0 for inst in dataset.instances}
        merged = run_sharded(_echo_shard, dataset, None,
                             num_targets=dataset.num_objects, workers=3,
                             backend="serial", base_result=base,
                             options={"scale": 2.0})
        assert list(merged) == list(base)
        for instance in dataset.instances:
            assert merged[instance.instance_id] == 2.0 * instance.object_id

    def test_unknown_backend_is_rejected(self):
        dataset = make_random_dataset(seed=8, num_objects=3)
        with pytest.raises(ValueError, match="unknown execution backend"):
            run_sharded(_echo_shard, dataset, None,
                        num_targets=3, workers=2, backend="threads")

    def test_auto_backend_selection(self):
        assert isinstance(get_backend("auto", 1), SerialBackend)
        assert isinstance(get_backend("auto", 2), ProcessBackend)
        assert isinstance(get_backend("serial", 8), SerialBackend)

    def test_single_shard_never_pays_for_a_pool(self, monkeypatch):
        # workers > 1 but m == 1: one shard, so no pool may be created.
        def no_pools(*args, **kwargs):
            raise AssertionError("a process pool was created for one shard")

        monkeypatch.setattr(ProcessBackend, "map_shards", no_pools)
        dataset = make_random_dataset(seed=9, num_objects=1)
        merged = run_sharded(_echo_shard, dataset, None, num_targets=1,
                             workers=4, backend="process")
        assert merged == _echo_shard(dataset, None, 0, 1)

    @pytest.mark.parallel
    def test_process_backend_executes_shards(self):
        dataset = make_random_dataset(seed=10, num_objects=5)
        merged = run_sharded(_echo_shard, dataset, None,
                             num_targets=dataset.num_objects, workers=2,
                             backend="process", options={"scale": 3.0})
        assert merged == _echo_shard(dataset, None, 0, 5, scale=3.0)

    def test_falls_back_to_serial_when_pools_are_unavailable(
            self, monkeypatch):
        def broken_pool(self, *args, **kwargs):
            raise OSError("semaphores are locked down here")

        monkeypatch.setattr(ProcessBackend, "map_shards", broken_pool)
        dataset = make_random_dataset(seed=11, num_objects=6)
        with pytest.warns(RuntimeWarning, match="process backend "
                                                "unavailable"):
            merged = run_sharded(_echo_shard, dataset, None,
                                 num_targets=dataset.num_objects,
                                 workers=3, backend="process")
        assert merged == _echo_shard(dataset, None, 0, 6)

    def test_shard_function_errors_propagate_from_serial(self):
        def exploding(dataset, constraints, lo, hi):
            raise RuntimeError("shard failure")

        dataset = make_random_dataset(seed=12, num_objects=4)
        with pytest.raises(RuntimeError, match="shard failure"):
            run_sharded(exploding, dataset, None, num_targets=4, workers=2,
                        backend="serial")

    def test_zero_targets_run_the_single_empty_shard(self, monkeypatch):
        # num_targets == 0 degrades to the one [(0, 0)] shard; it must
        # reach the shard function (exactly like the pre-backend serial
        # code) and never pay for a pool.
        def no_pools(*args, **kwargs):
            raise AssertionError("a pool was created for an empty shard")

        monkeypatch.setattr(ProcessBackend, "map_shards", no_pools)
        dataset = make_random_dataset(seed=13, num_objects=4)
        merged = run_sharded(_echo_shard, dataset, None, num_targets=0,
                             workers=4, backend="process")
        assert merged == {}
        report = merged.execution
        assert [record.as_dict()["targets"] for record in report.shards] \
            == [[0, 0]]
        assert report.clean

    @pytest.mark.parallel
    def test_process_run_survives_the_pickle_fallback(self, monkeypatch):
        # Shared memory unavailable at ship time: the dataset rides the
        # initargs pipe instead, and the pool still computes every shard.
        def broken_create(cls_dataset):
            raise OSError("no /dev/shm in this environment")

        monkeypatch.setattr(SharedDatasetHandle, "create",
                            staticmethod(broken_create))
        dataset = make_random_dataset(seed=14, num_objects=6)
        with pytest.warns(RuntimeWarning, match="shared memory unavailable"):
            merged = run_sharded(_echo_shard, dataset, None,
                                 num_targets=dataset.num_objects,
                                 workers=2, backend="process")
        assert merged == _echo_shard(dataset, None, 0, 6)
        assert merged.execution.clean
