"""Hypothesis strategies shared by the property-based tests.

Coordinates are drawn from a small integer grid on purpose: exact ties are
the interesting edge case for dominance-based algorithms, and a coarse grid
makes them common instead of measure-zero.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import UncertainDataset, WeightRatioConstraints


def grid_points(dimension: int, grid: int = 6):
    """A point with integer coordinates in [0, grid]^dimension."""
    return st.lists(st.integers(min_value=0, max_value=grid),
                    min_size=dimension, max_size=dimension).map(
                        lambda values: tuple(float(v) for v in values))


@st.composite
def uncertain_datasets(draw, max_objects: int = 5, max_instances: int = 3,
                       dimension: int = 2, grid: int = 6):
    """A small random uncertain dataset (enumerable possible worlds)."""
    num_objects = draw(st.integers(min_value=1, max_value=max_objects))
    instance_lists = []
    probability_lists = []
    for _ in range(num_objects):
        count = draw(st.integers(min_value=1, max_value=max_instances))
        points = [draw(grid_points(dimension, grid)) for _ in range(count)]
        # Either a complete object (probabilities sum to 1) or an incomplete
        # one (sum strictly below 1); both occur in the paper's workloads.
        complete = draw(st.booleans())
        if complete:
            probabilities = [1.0 / count] * count
        else:
            probabilities = [round(draw(st.floats(min_value=0.05,
                                                  max_value=0.9 / count)), 3)
                             for _ in range(count)]
        instance_lists.append(points)
        probability_lists.append(probabilities)
    return UncertainDataset.from_instance_lists(instance_lists,
                                                probability_lists)


@st.composite
def ratio_constraints(draw, dimension: int = 2):
    """Weight ratio constraints with moderate, well-separated bounds."""
    ranges = []
    for _ in range(dimension - 1):
        low = draw(st.floats(min_value=0.1, max_value=2.0))
        high = low + draw(st.floats(min_value=0.0, max_value=3.0))
        ranges.append((round(low, 3), round(high, 3)))
    return WeightRatioConstraints(ranges)
