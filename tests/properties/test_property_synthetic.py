"""Property tests for the synthetic workload generators.

The workload matrix (repro.experiments.workloads) leans on the generator
honouring the distribution semantics the paper's figures depend on: ANTI
centres must actually be anti-correlated, CORR centres correlated,
instances must stay inside the hyper-rectangle they were drawn from, and
the φ (incomplete fraction) machinery must remove exactly one instance
from exactly the first ⌈φ·m⌉ objects.  Random seeds and shapes are driven
by hypothesis; the statistical assertions use enough samples that the sign
of an empirical correlation is stable.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.numeric import PROB_ATOL
from repro.data.synthetic import (SyntheticConfig, generate_centers,
                                  generate_uncertain_dataset)

COMMON_SETTINGS = settings(max_examples=20, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])

#: Enough centres that the empirical pairwise correlation sign is stable.
_SIGN_SAMPLES = 512

seeds = st.integers(min_value=0, max_value=2**32 - 1)
dimensions = st.integers(min_value=2, max_value=4)


def _mean_pairwise_correlation(centers: np.ndarray) -> float:
    matrix = np.corrcoef(centers, rowvar=False)
    off_diagonal = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    return float(off_diagonal.mean())


class TestDistributionSigns:
    @COMMON_SETTINGS
    @given(seed=seeds, dimension=dimensions)
    def test_anti_centers_negatively_correlated(self, seed, dimension):
        rng = np.random.default_rng(seed)
        centers = generate_centers(_SIGN_SAMPLES, dimension, "ANTI", rng)
        assert _mean_pairwise_correlation(centers) < 0.0

    @COMMON_SETTINGS
    @given(seed=seeds, dimension=dimensions)
    def test_corr_centers_positively_correlated(self, seed, dimension):
        rng = np.random.default_rng(seed)
        centers = generate_centers(_SIGN_SAMPLES, dimension, "CORR", rng)
        assert _mean_pairwise_correlation(centers) > 0.0

    @COMMON_SETTINGS
    @given(seed=seeds, dimension=dimensions,
           distribution=st.sampled_from(["IND", "ANTI", "CORR"]))
    def test_centers_stay_in_unit_cube(self, seed, dimension, distribution):
        rng = np.random.default_rng(seed)
        centers = generate_centers(200, dimension, distribution, rng)
        assert centers.shape == (200, dimension)
        assert np.all(centers >= 0.0) and np.all(centers <= 1.0)


configs = st.builds(
    SyntheticConfig,
    num_objects=st.integers(min_value=1, max_value=60),
    max_instances=st.integers(min_value=1, max_value=6),
    dimension=dimensions,
    region_length=st.sampled_from([0.0, 0.1, 0.2, 0.5]),
    incomplete_fraction=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    distribution=st.sampled_from(["IND", "ANTI", "CORR"]),
    seed=seeds,
)


class TestGeneratedDatasets:
    @COMMON_SETTINGS
    @given(config=configs)
    def test_instances_inside_their_region(self, config):
        dataset, regions = generate_uncertain_dataset(config,
                                                      return_regions=True)
        assert regions.shape == (config.num_objects, 2, config.dimension)
        for obj, (lo, hi) in zip(dataset, regions):
            points = np.asarray([inst.values for inst in obj])
            assert np.all(points >= lo - 1e-12)
            assert np.all(points <= hi + 1e-12)
            assert np.all(hi - lo <= config.region_length + 1e-12)

    @COMMON_SETTINGS
    @given(config=configs)
    def test_object_probabilities_sum_to_at_most_one(self, config):
        dataset = generate_uncertain_dataset(config)
        dataset.validate()
        for obj in dataset:
            assert obj.total_probability <= 1.0 + PROB_ATOL

    @COMMON_SETTINGS
    @given(config=configs)
    def test_incomplete_prefix_loses_exactly_one_instance(self, config):
        dataset = generate_uncertain_dataset(config)
        num_incomplete = math.ceil(config.incomplete_fraction
                                   * config.num_objects)
        for index, obj in enumerate(dataset):
            probability = obj.instances[0].probability
            drawn = int(round(1.0 / probability))
            if index < num_incomplete and config.max_instances >= 2:
                # Exactly one of the drawn instances was removed.
                assert len(obj) == drawn - 1
                assert obj.total_probability < 1.0 - PROB_ATOL
            else:
                assert len(obj) == drawn
                assert obj.total_probability == pytest.approx(1.0)

    @COMMON_SETTINGS
    @given(config=configs)
    def test_same_seed_same_dataset(self, config):
        first = generate_uncertain_dataset(config)
        second = generate_uncertain_dataset(config)
        np.testing.assert_array_equal(first.instance_matrix(),
                                      second.instance_matrix())
        np.testing.assert_array_equal(first.probability_vector(),
                                      second.probability_vector())
