"""The delta-vs-recompute equivalence suite (the PR's pinning property).

:class:`repro.algorithms.incremental.IncrementalArsp` answers queries by
*maintaining* per-constraint σ matrices across dataset deltas; full
recompute through :func:`repro.core.arsp.compute_arsp` is the
specification.  This suite drives the engine through arbitrary random
edit sequences (insert / delete / update batches of Hypothesis' choosing)
and asserts the maintained answers stay **byte-identical** — same values
bit for bit, same canonical key order — to a from-scratch recompute on
the post-delta dataset, including across shard counts (the PR 5 rule that
sharding never changes bytes composes with maintenance).

Grid coordinates keep exact dominance ties common, which is precisely
where a wrong σ repair would surface: a copied entry that should have
been recomputed shifts a saturated ``1 - σ`` factor and flips a result
bit.
"""

from __future__ import annotations

import hashlib
import struct

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro import WeightRatioConstraints
from repro.algorithms.incremental import IncrementalArsp
from repro.core.arsp import compute_arsp
from repro.core.dataset import DatasetDelta, ObjectSpec

from tests.properties.strategies import (grid_points, ratio_constraints,
                                         uncertain_datasets)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

_DIMENSION = 2


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    for instance_id, probability in result.items():
        digest.update(struct.pack("<qd", instance_id, probability))
    return digest.hexdigest()


def _draw_object_spec(data) -> ObjectSpec:
    count = data.draw(st.integers(min_value=1, max_value=3),
                      label="instances")
    points = [data.draw(grid_points(_DIMENSION), label="point")
              for _ in range(count)]
    complete = data.draw(st.booleans(), label="complete")
    if complete:
        probabilities = [1.0 / count] * count
    else:
        probabilities = [round(data.draw(
            st.floats(min_value=0.05, max_value=0.9 / count),
            label="probability"), 3) for _ in range(count)]
    return ObjectSpec.make(points, probabilities)


def _draw_delta(data, num_objects: int) -> DatasetDelta:
    """One random edit batch valid against ``num_objects`` objects."""
    max_touch = max(0, num_objects - 1)
    touched = data.draw(
        st.lists(st.integers(min_value=0, max_value=num_objects - 1),
                 unique=True, max_size=min(3, max_touch)),
        label="touched")
    split = data.draw(st.integers(min_value=0, max_value=len(touched)),
                      label="split")
    deletes = tuple(sorted(touched[:split]))
    updates = tuple((object_id, _draw_object_spec(data))
                    for object_id in sorted(touched[split:]))
    num_inserts = data.draw(st.integers(min_value=0, max_value=2),
                            label="inserts")
    inserts = tuple(_draw_object_spec(data) for _ in range(num_inserts))
    return DatasetDelta(inserts=inserts, deletes=deletes, updates=updates)


def _recompute_fingerprints(dataset, constraints):
    """Specification fingerprints: serial and sharded-serial recomputes."""
    serial = _fingerprint(dict(compute_arsp(dataset, constraints,
                                            algorithm="dual")))
    sharded = _fingerprint(dict(compute_arsp(dataset, constraints,
                                             algorithm="dual", workers=3,
                                             backend="serial")))
    assert sharded == serial  # PR 5 invariant, restated on this dataset
    return serial


class TestIncrementalEqualsRecompute:
    @SETTINGS
    @given(uncertain_datasets(dimension=_DIMENSION, max_objects=5),
           ratio_constraints(dimension=_DIMENSION),
           ratio_constraints(dimension=_DIMENSION),
           st.integers(min_value=1, max_value=3),
           st.data())
    def test_any_edit_sequence_stays_byte_identical(self, dataset, hot,
                                                    cold, num_steps, data):
        """After every delta of a random edit sequence, the maintained
        answer for both a cached-hot and a freshly-asked constraint is
        byte-identical to full recompute on the post-delta dataset."""
        engine = IncrementalArsp(dataset)
        # Prime the σ cache so every subsequent delta exercises the
        # repair path (copy + recompute blocks), not just a cold miss.
        assert _fingerprint(engine.query(hot)) == \
            _recompute_fingerprints(dataset, hot)
        current = dataset
        for _ in range(num_steps):
            delta = _draw_delta(data, current.num_objects)
            try:
                delta.validate(current.num_objects)
            except ValueError:
                continue  # e.g. the delta would empty the dataset
            current = engine.apply_delta(delta)
            for constraints in (hot, cold):
                maintained = _fingerprint(engine.query(constraints))
                assert maintained == _recompute_fingerprints(current,
                                                             constraints)
        assert engine.deltas_applied <= num_steps

    @SETTINGS
    @given(uncertain_datasets(dimension=_DIMENSION, max_objects=4),
           ratio_constraints(dimension=_DIMENSION),
           st.data())
    def test_repair_equals_cold_rebuild_of_the_engine(self, dataset,
                                                      constraints, data):
        """A repaired engine and a fresh engine built on the post-delta
        dataset return identical bytes — the σ repair is undetectable."""
        engine = IncrementalArsp(dataset)
        engine.query(constraints)
        delta = _draw_delta(data, dataset.num_objects)
        try:
            delta.validate(dataset.num_objects)
        except ValueError:
            return
        current = engine.apply_delta(delta)
        fresh = IncrementalArsp(current)
        assert _fingerprint(engine.query(constraints)) == \
            _fingerprint(fresh.query(constraints))
        # The repaired query was a σ-cache hit, the fresh one a miss.
        assert engine.sigma_hits >= 1


class TestServingRetentionEqualsRecompute:
    """The PR 10 property: the serving layer's delta-retained cache is
    undetectable.  Whatever a random delta sequence does — retain a
    σ-repaired entry or drop it — the served answer stays byte-identical
    to recompute, and a pre-delta-epoch key can never hit."""

    @SETTINGS
    @given(uncertain_datasets(dimension=_DIMENSION, max_objects=5),
           ratio_constraints(dimension=_DIMENSION),
           st.integers(min_value=1, max_value=3),
           st.data())
    def test_retained_results_byte_identical_and_stale_keys_dead(
            self, dataset, constraints, num_steps, data):
        from repro.serve import ArspService

        service = ArspService(dataset)
        service.query(constraints)  # prime cache + σ matrix
        current = dataset
        for _ in range(num_steps):
            delta = _draw_delta(data, current.num_objects)
            try:
                delta.validate(current.num_objects)
            except ValueError:
                continue
            old_key = service.query_key(constraints)
            retained_before = service.cache.stats()["retained"]
            current = service.apply_delta(delta)
            # The negative half: the pre-delta epoch's key is gone, and
            # no post-delta lookup can ever mint it again.
            assert old_key not in service.cache
            new_key = service.query_key(constraints)
            assert new_key != old_key
            retained = (service.cache.stats()["retained"]
                        > retained_before)
            assert retained == (new_key in service.cache)
            outcome = service.query(constraints)
            # A retained entry answers from cache; either way the bytes
            # equal one-shot recompute on the post-delta dataset (serial
            # and sharded agree, restating the PR 5 invariant on top).
            assert outcome.cached == retained
            assert _fingerprint(outcome.full) == \
                _recompute_fingerprints(current, constraints)


@pytest.mark.parallel
def test_incremental_equals_process_sharded_recompute():
    """Maintained answers equal a process-pool sharded recompute too."""
    from tests.conftest import make_random_dataset

    dataset = make_random_dataset(seed=31, num_objects=10, dimension=3)
    constraints_hot = WeightRatioConstraints([(0.5, 2.0)] * 2)
    engine = IncrementalArsp(dataset)
    engine.query(constraints_hot)
    delta = DatasetDelta(
        inserts=(ObjectSpec.make([(0.2, 0.3, 0.4), (0.5, 0.5, 0.5)]),),
        deletes=(0, 4),
        updates=((2, ObjectSpec.make([(0.1, 0.9, 0.4)], [0.7])),))
    current = engine.apply_delta(delta)
    maintained = _fingerprint(engine.query(constraints_hot))
    recomputed = _fingerprint(dict(compute_arsp(
        current, constraints_hot, algorithm="dual", workers=2,
        backend="process")))
    assert maintained == recomputed
