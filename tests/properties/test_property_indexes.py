"""Property-based tests for the spatial index substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index.kdtree import KDTree
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def point_arrays(max_points=60, dimension=2):
    return arrays(dtype=float, shape=st.tuples(
        st.integers(min_value=0, max_value=max_points),
        st.just(dimension)),
        elements=st.floats(min_value=0.0, max_value=1.0, width=32))


def boxes(dimension=2):
    return st.tuples(
        st.lists(st.floats(min_value=0.0, max_value=1.0, width=32),
                 min_size=dimension, max_size=dimension),
        st.lists(st.floats(min_value=0.0, max_value=1.0, width=32),
                 min_size=dimension, max_size=dimension),
    ).map(lambda pair: (np.minimum(pair[0], pair[1]),
                        np.maximum(pair[0], pair[1])))


def brute_force_indices(points, lo, hi):
    return sorted(i for i, p in enumerate(points)
                  if np.all(lo <= p) and np.all(p <= hi))


class TestKDTreeProperties:
    @SETTINGS
    @given(point_arrays(), boxes())
    def test_range_query_matches_brute_force(self, points, box):
        lo, hi = box
        tree = KDTree(points, leaf_size=4)
        assert sorted(tree.range_indices(lo, hi)) == brute_force_indices(
            points, lo, hi)

    @SETTINGS
    @given(point_arrays(), boxes())
    def test_range_weight_matches_report(self, points, box):
        lo, hi = box
        weights = np.linspace(0.1, 1.0, num=len(points)) if len(points) else []
        tree = KDTree(points, weights=weights, leaf_size=4)
        indices = tree.range_indices(lo, hi)
        assert tree.range_weight(lo, hi) == pytest.approx(
            sum(weights[i] for i in indices))


class TestQuadTreeProperties:
    @SETTINGS
    @given(point_arrays(), boxes())
    def test_range_query_matches_brute_force(self, points, box):
        lo, hi = box
        tree = QuadTree(points, leaf_size=4)
        assert sorted(tree.range_indices(lo, hi)) == brute_force_indices(
            points, lo, hi)


class TestRTreeProperties:
    @SETTINGS
    @given(point_arrays(), boxes())
    def test_bulk_load_window_aggregate(self, points, box):
        lo, hi = box
        weights = np.linspace(0.1, 1.0, num=len(points)) if len(points) else []
        tree = RTree.bulk_load(points, weights=weights, max_entries=6)
        expected = sum(w for p, w in zip(points, weights)
                       if np.all(lo <= p) and np.all(p <= hi))
        assert tree.window_aggregate(lo, hi) == pytest.approx(expected)

    @SETTINGS
    @given(point_arrays(max_points=40), boxes())
    def test_insertion_window_aggregate(self, points, box):
        lo, hi = box
        tree = RTree(dimension=2, max_entries=5)
        weights = np.linspace(0.1, 1.0, num=len(points)) if len(points) else []
        for point, weight in zip(points, weights):
            tree.insert(point, weight=weight)
        expected = sum(w for p, w in zip(points, weights)
                       if np.all(lo <= p) and np.all(p <= hi))
        assert tree.window_aggregate(lo, hi) == pytest.approx(expected)

    @SETTINGS
    @given(point_arrays(max_points=40))
    def test_total_weight_preserved_by_insertion(self, points):
        tree = RTree(dimension=2, max_entries=4)
        for point in points:
            tree.insert(point, weight=0.5)
        assert tree.total_weight() == pytest.approx(0.5 * len(points))
        assert tree.size == len(points)
