"""Property-based tests for the dominance predicates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LinearConstraints
from repro.core.dominance import (dominates, f_dominates_region,
                                  strictly_dominates,
                                  weight_ratio_f_dominates)
from tests.properties.strategies import grid_points, ratio_constraints

POINTS_2D = grid_points(2)
POINTS_3D = grid_points(3)

WR_REGION_3 = LinearConstraints.weak_ranking(3).preference_region()


class TestClassicalDominanceProperties:
    @given(POINTS_3D)
    def test_reflexive_weak(self, point):
        assert dominates(point, point)
        assert not strictly_dominates(point, point)

    @given(POINTS_3D, POINTS_3D)
    def test_strict_dominance_antisymmetric(self, a, b):
        if strictly_dominates(a, b):
            assert not strictly_dominates(b, a)

    @given(POINTS_3D, POINTS_3D, POINTS_3D)
    def test_weak_dominance_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(POINTS_3D, POINTS_3D)
    def test_strict_implies_weak(self, a, b):
        if strictly_dominates(a, b):
            assert dominates(a, b)


class TestFDominanceProperties:
    @given(POINTS_3D, POINTS_3D)
    def test_pareto_implies_f_dominance(self, a, b):
        if dominates(a, b):
            assert f_dominates_region(a, b, WR_REGION_3)

    @given(POINTS_3D, POINTS_3D, POINTS_3D)
    def test_f_dominance_transitive(self, a, b, c):
        if (f_dominates_region(a, b, WR_REGION_3)
                and f_dominates_region(b, c, WR_REGION_3)):
            assert f_dominates_region(a, c, WR_REGION_3)

    @given(POINTS_3D)
    def test_f_dominance_reflexive(self, a):
        assert f_dominates_region(a, a, WR_REGION_3)


class TestWeightRatioProperties:
    @settings(max_examples=150)
    @given(ratio_constraints(dimension=3), POINTS_3D, POINTS_3D)
    def test_theorem5_equals_vertex_test(self, constraints, a, b):
        """Theorem 5's O(d) test agrees with the Theorem 2 vertex test."""
        region = constraints.preference_region()
        assert weight_ratio_f_dominates(a, b, constraints) == \
            f_dominates_region(a, b, region)

    @settings(max_examples=100)
    @given(ratio_constraints(dimension=2), POINTS_2D, POINTS_2D, POINTS_2D)
    def test_theorem5_transitive(self, constraints, a, b, c):
        if (weight_ratio_f_dominates(a, b, constraints)
                and weight_ratio_f_dominates(b, c, constraints)):
            assert weight_ratio_f_dominates(a, c, constraints)

    @settings(max_examples=100)
    @given(ratio_constraints(dimension=2), POINTS_2D, POINTS_2D)
    def test_pareto_implies_ratio_dominance(self, constraints, a, b):
        if dominates(a, b):
            assert weight_ratio_f_dominates(a, b, constraints)

    @settings(max_examples=100)
    @given(ratio_constraints(dimension=2), POINTS_2D, POINTS_2D)
    def test_linear_form_agrees(self, constraints, a, b):
        """The ratio constraints and their Aω <= b form define the same F."""
        linear_region = constraints.to_linear_constraints().preference_region()
        assert weight_ratio_f_dominates(a, b, constraints) == \
            f_dominates_region(a, b, linear_region)


class TestPreferenceRegionProperties:
    @settings(max_examples=50)
    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=0, max_value=4))
    def test_weak_ranking_vertices_feasible(self, dimension, extra):
        num_constraints = min(dimension - 1, extra)
        constraints = LinearConstraints.weak_ranking(dimension,
                                                     num_constraints)
        vertices = constraints.enumerate_vertices()
        for vertex in vertices:
            assert constraints.feasible(vertex)
            assert abs(vertex.sum() - 1.0) < 1e-9
            assert np.all(vertex >= -1e-9)

    @settings(max_examples=50)
    @given(ratio_constraints(dimension=3))
    def test_ratio_vertices_on_simplex(self, constraints):
        for vertex in constraints.enumerate_vertices():
            assert abs(vertex.sum() - 1.0) < 1e-9
            assert np.all(vertex > 0.0)
            ratios = vertex[:-1] / vertex[-1]
            for ratio, (low, high) in zip(ratios, constraints.ranges):
                assert low - 1e-9 <= ratio <= high + 1e-9
