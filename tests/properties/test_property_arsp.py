"""Property-based tests of the ARSP algorithms against the ground truth.

Datasets are drawn from a coarse integer grid so coordinate ties (the hard
edge case for dominance pruning) occur frequently.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import LinearConstraints
from repro.algorithms import (branch_and_bound_arsp, dual_arsp, dual_ms_arsp,
                              kdtree_traversal_arsp, loop_arsp,
                              quadtree_traversal_arsp)
from repro.core.numeric import PROB_ATOL
from repro.core.possible_worlds import brute_force_arsp
from tests.properties.strategies import ratio_constraints, uncertain_datasets

COMMON_SETTINGS = settings(max_examples=40, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])

WR2 = LinearConstraints.weak_ranking(2)


def check_against_ground_truth(dataset, constraints, algorithm):
    expected = brute_force_arsp(dataset, constraints)
    actual = algorithm(dataset, constraints)
    assert set(actual) == set(expected)
    for key, value in expected.items():
        assert actual[key] == pytest.approx(value, abs=1e-9)


class TestAlgorithmsMatchGroundTruth:
    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_loop(self, dataset):
        check_against_ground_truth(dataset, WR2, loop_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_kdtt_plus(self, dataset):
        check_against_ground_truth(dataset, WR2, kdtree_traversal_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_kdtt_non_integrated(self, dataset):
        check_against_ground_truth(
            dataset, WR2,
            lambda d, c: kdtree_traversal_arsp(d, c, integrated=False))

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_qdtt_plus(self, dataset):
        check_against_ground_truth(dataset, WR2, quadtree_traversal_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_branch_and_bound(self, dataset):
        check_against_ground_truth(dataset, WR2, branch_and_bound_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2), ratio_constraints(dimension=2))
    def test_dual(self, dataset, constraints):
        check_against_ground_truth(dataset, constraints, dual_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2), ratio_constraints(dimension=2))
    def test_dual_ms(self, dataset, constraints):
        check_against_ground_truth(dataset, constraints, dual_ms_arsp)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(uncertain_datasets(dimension=3, max_objects=4, max_instances=2),
           ratio_constraints(dimension=3))
    def test_three_dimensional_ratio(self, dataset, constraints):
        check_against_ground_truth(dataset, constraints,
                                   branch_and_bound_arsp)
        check_against_ground_truth(dataset, constraints, dual_arsp)


class TestARSPInvariants:
    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_probability_bounds(self, dataset):
        result = kdtree_traversal_arsp(dataset, WR2)
        for instance in dataset.instances:
            value = result[instance.instance_id]
            assert -PROB_ATOL <= value <= instance.probability + PROB_ATOL

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_rskyline_bounded_by_skyline(self, dataset):
        """Restricting the function set can only lower the probability."""
        from repro.algorithms.asp import compute_skyline_probabilities
        rsky = kdtree_traversal_arsp(dataset, WR2)
        sky = compute_skyline_probabilities(dataset)
        for key in rsky:
            assert rsky[key] <= sky[key] + 1e-9

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_object_probability_at_most_one(self, dataset):
        result = kdtree_traversal_arsp(dataset, WR2)
        for obj in dataset.objects:
            total = sum(result[inst.instance_id] for inst in obj)
            assert total <= 1.0 + 1e-9

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2, max_objects=4))
    def test_tighter_constraints_reduce_probability(self, dataset):
        """More constraints never shrink F below... the containment goes the
        other way: a *smaller* preference region means a *larger* F-dominance
        relation, so probabilities can only drop when the region shrinks from
        the full simplex to the weak-ranking region."""
        unconstrained = kdtree_traversal_arsp(
            dataset, LinearConstraints.unconstrained(2))
        constrained = kdtree_traversal_arsp(dataset, WR2)
        for key in unconstrained:
            assert constrained[key] <= unconstrained[key] + 1e-9
