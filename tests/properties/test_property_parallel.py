"""Cross-backend parity: sharded execution is bit-identical to serial.

The execution backend (``repro.core.backend``) promises more than
approximate agreement: for every ported algorithm, the merged result of a
``workers=N`` run must equal the ``workers=1`` result *bit for bit*, with
the same key order, for every N.  Each algorithm earns that guarantee a
different way — LOOP and DUAL accumulate each target's σ row in a
target-local order, the traversal family restores tracker snapshots
bit-exactly so skipped sibling subtrees leave no rounding residue, and
B&B replays the sequential pruning protocol while batching only its own
shard's σ queries — so the property suite hammers all of them on
tie-heavy Hypothesis datasets, including every ragged shard layout
(``m`` not divisible by the worker count, ``m < workers``, ``m == 1``).

Hypothesis runs use the serial backend with ``workers > 1`` — the shard
layout and merge are identical to the process backend's, without paying
process startup per example — and a seeded test per algorithm crosses the
real process boundary (marked ``parallel`` so constrained CI can deselect
it).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (branch_and_bound_arsp, dual_arsp,
                              kdtree_traversal_arsp, loop_arsp,
                              quadtree_traversal_arsp)
from repro.data.constraints import weak_ranking_constraints

from tests.conftest import make_random_dataset
from tests.properties.strategies import ratio_constraints, uncertain_datasets

#: (name, callable, constraints factory) for every ported algorithm; DUAL
#: needs its weight-ratio constraint class, the rest run the generic WR set.
PORTED = [
    ("loop", loop_arsp, "wr"),
    ("kdtt+", kdtree_traversal_arsp, "wr"),
    ("qdtt+", quadtree_traversal_arsp, "wr"),
    ("bnb", branch_and_bound_arsp, "wr"),
    ("dual", dual_arsp, "ratio"),
]


def assert_bit_identical(expected, actual):
    """Same keys, same order, same float bits."""
    assert list(expected) == list(actual)
    for key, value in expected.items():
        assert actual[key] == value, (
            "instance %d: %r != %r" % (key, value, actual[key]))
    # == treats -0.0 and 0.0 as equal, which is fine: both clamp to the
    # same serialized value; everything else must match exactly.


def _constraints_for(kind, draw=None, dimension=2):
    if kind == "ratio":
        return draw(ratio_constraints(dimension=dimension))
    return weak_ranking_constraints(dimension)


@pytest.mark.parametrize("name,algorithm,kind", PORTED,
                         ids=[name for name, _, _ in PORTED])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_sharded_runs_are_bit_identical(name, algorithm, kind, data):
    dataset = data.draw(uncertain_datasets(max_objects=6, max_instances=3))
    constraints = _constraints_for(kind, data.draw)
    workers = data.draw(st.integers(min_value=2, max_value=4))
    serial = algorithm(dataset, constraints, workers=1)
    sharded = algorithm(dataset, constraints, workers=workers,
                        backend="serial")
    assert_bit_identical(serial, sharded)


@pytest.mark.parametrize("name,algorithm,kind", PORTED,
                         ids=[name for name, _, _ in PORTED])
@pytest.mark.parametrize("num_objects,workers", [
    (7, 3),    # ragged: m not divisible by the worker count
    (2, 5),    # m < workers: one single-object shard per object
    (1, 2),    # m == 1: a single shard despite workers > 1
    (9, 9),    # every shard holds exactly one object
])
def test_ragged_shard_layouts(name, algorithm, kind, num_objects, workers):
    dataset = make_random_dataset(seed=31, num_objects=num_objects,
                                  max_instances=3, dimension=3,
                                  incomplete_fraction=0.4)
    if kind == "ratio":
        from repro import WeightRatioConstraints

        constraints = WeightRatioConstraints([(0.5, 2.0)] * 2)
    else:
        constraints = weak_ranking_constraints(3)
    serial = algorithm(dataset, constraints, workers=1)
    sharded = algorithm(dataset, constraints, workers=workers,
                        backend="serial")
    assert_bit_identical(serial, sharded)


@pytest.mark.parallel
@pytest.mark.parametrize("name,algorithm,kind", PORTED,
                         ids=[name for name, _, _ in PORTED])
def test_process_backend_matches_serial(name, algorithm, kind):
    """The real multi-process path: shared-memory shipping, pool
    execution, deterministic merge — bit-identical to serial."""
    dataset = make_random_dataset(seed=17, num_objects=11, max_instances=3,
                                  dimension=3, incomplete_fraction=0.3)
    if kind == "ratio":
        from repro import WeightRatioConstraints

        constraints = WeightRatioConstraints([(0.5, 2.0)] * 2)
    else:
        constraints = weak_ranking_constraints(3)
    serial = algorithm(dataset, constraints, workers=1)
    process = algorithm(dataset, constraints, workers=3, backend="process")
    assert_bit_identical(serial, process)


def test_default_workers_is_the_serial_path():
    """Omitting ``workers`` must stay exactly the pre-backend behaviour."""
    dataset = make_random_dataset(seed=23, num_objects=8, max_instances=3,
                                  dimension=3)
    constraints = weak_ranking_constraints(3)
    for name, algorithm, kind in PORTED:
        if kind == "ratio":
            continue
        assert_bit_identical(algorithm(dataset, constraints),
                             algorithm(dataset, constraints, workers=1))


def test_compute_arsp_threads_workers_through():
    from repro.core.arsp import compute_arsp

    dataset = make_random_dataset(seed=29, num_objects=6, max_instances=2,
                                  dimension=3)
    constraints = weak_ranking_constraints(3)
    serial = compute_arsp(dataset, constraints, algorithm="kdtt+")
    sharded = compute_arsp(dataset, constraints, algorithm="kdtt+",
                           workers=3, backend="serial")
    assert_bit_identical(serial, sharded)
    with pytest.raises(ValueError, match="does not support sharded"):
        compute_arsp(dataset, constraints, algorithm="enum", workers=2)
