"""Property-based tests for the eclipse algorithms and certain-data operators."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.rskyline import eclipse as reference_eclipse
from repro.core.rskyline import rskyline, skyline
from repro.eclipse import dual_s_eclipse, fast_skyline, naive_eclipse, quad_eclipse
from tests.properties.strategies import ratio_constraints

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def point_sets(dimension=2, max_points=40):
    return arrays(dtype=float, shape=st.tuples(
        st.integers(min_value=1, max_value=max_points), st.just(dimension)),
        elements=st.floats(min_value=0.0, max_value=1.0, width=16))


class TestSkylineProperties:
    @SETTINGS
    @given(point_sets())
    def test_fast_skyline_matches_quadratic_reference(self, points):
        assert fast_skyline(points) == sorted(skyline(points))

    @SETTINGS
    @given(point_sets())
    def test_skyline_members_not_dominated(self, points):
        members = fast_skyline(points)
        for i in members:
            for j in range(len(points)):
                if j == i:
                    continue
                strictly = (np.all(points[j] <= points[i])
                            and np.any(points[j] < points[i]))
                assert not strictly


class TestEclipseProperties:
    @SETTINGS
    @given(point_sets(), ratio_constraints(dimension=2))
    def test_all_algorithms_agree(self, points, constraints):
        expected = sorted(reference_eclipse(points, constraints))
        assert sorted(naive_eclipse(points, constraints)) == expected
        assert sorted(quad_eclipse(points, constraints)) == expected
        assert sorted(dual_s_eclipse(points, constraints)) == expected

    @SETTINGS
    @given(point_sets(), ratio_constraints(dimension=2))
    def test_eclipse_subset_of_skyline(self, points, constraints):
        assert set(dual_s_eclipse(points, constraints)) <= set(
            fast_skyline(points))

    @SETTINGS
    @given(point_sets(), ratio_constraints(dimension=2))
    def test_eclipse_nonempty(self, points, constraints):
        """At least one point is never eclipse-dominated (e.g. a score
        minimiser under any fixed admissible weight)."""
        assert len(dual_s_eclipse(points, constraints)) >= 1

    @SETTINGS
    @given(point_sets(dimension=3, max_points=25),
           ratio_constraints(dimension=3))
    def test_three_dimensional_agreement(self, points, constraints):
        expected = sorted(naive_eclipse(points, constraints))
        assert sorted(dual_s_eclipse(points, constraints)) == expected
        assert sorted(quad_eclipse(points, constraints)) == expected

    @SETTINGS
    @given(point_sets(), ratio_constraints(dimension=2))
    def test_rskyline_operator_agrees_with_eclipse(self, points, constraints):
        assert sorted(rskyline(points, constraints)) == sorted(
            naive_eclipse(points, constraints))
