"""Property tests pinning the flat R-tree layer to its scalar references.

The pointer-based :class:`repro.index.rtree.RTree` is the readable
specification of the aggregated R-tree; this suite asserts that the
array-backed :class:`FlatRTree` / :class:`RTreeForest` hot paths agree with
it (and with brute-force mask counts) on random bulk-load and insert
sequences, and that the flat layout itself satisfies the structural R-tree
invariants: MBR containment, aggregate weight sums, level-ordered child
spans.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.dominance import in_box
from repro.core.kernels import (box_containment_counts, points_in_boxes,
                                points_in_boxes_rows)
from repro.index.rtree import FlatRTree, RTree, RTreeForest

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def point_arrays(max_points=80, dimension=2):
    return arrays(dtype=float, shape=st.tuples(
        st.integers(min_value=0, max_value=max_points),
        st.just(dimension)),
        elements=st.floats(min_value=0.0, max_value=1.0, width=16))


def box_arrays(max_boxes=12, dimension=2):
    return arrays(dtype=float, shape=st.tuples(
        st.integers(min_value=1, max_value=max_boxes),
        st.just(2 * dimension)),
        elements=st.floats(min_value=0.0, max_value=1.0, width=16)
    ).map(lambda corners: (
        np.minimum(corners[:, :dimension], corners[:, dimension:]),
        np.maximum(corners[:, :dimension], corners[:, dimension:])))


def weights_for(points):
    return (np.linspace(0.1, 1.0, num=len(points))
            if len(points) else np.empty(0))


def brute_force_counts(points, weights, los, his):
    return np.asarray(
        [sum(w for p, w in zip(points, weights) if in_box(p, lo, hi))
         for lo, hi in zip(los, his)])


class TestContainmentKernels:
    @SETTINGS
    @given(point_arrays(), box_arrays())
    def test_points_in_boxes_matches_scalar(self, points, boxes):
        los, his = boxes
        mask = points_in_boxes(points, los, his)
        assert mask.shape == (len(los), len(points))
        for q in range(len(los)):
            for k in range(len(points)):
                assert mask[q, k] == in_box(points[k], los[q], his[q])

    @SETTINGS
    @given(point_arrays(max_points=12), box_arrays(max_boxes=12))
    def test_rows_variant_is_the_diagonal_shape(self, points, boxes):
        los, his = boxes
        k = min(len(points), len(los))
        if not k:
            return
        rows = points_in_boxes_rows(points[:k], los[:k], his[:k])
        full = points_in_boxes(points[:k], los[:k], his[:k])
        assert np.array_equal(rows, np.diagonal(full))

    @SETTINGS
    @given(point_arrays(), box_arrays())
    def test_containment_counts_fold_weights(self, points, boxes):
        los, his = boxes
        weights = weights_for(points)
        counts = box_containment_counts(points, weights, los, his)
        assert np.allclose(counts,
                           brute_force_counts(points, weights, los, his))


class TestFlatLayoutInvariants:
    @SETTINGS
    @given(point_arrays(), st.integers(min_value=4, max_value=9))
    def test_structure(self, points, max_entries):
        tree = FlatRTree.bulk_load(points, weights=weights_for(points),
                                   max_entries=max_entries)
        if not len(points):
            assert tree.num_nodes == 0
            return
        assert tree.num_nodes == tree.level_offsets[-1]
        assert np.all(tree.child_count >= 1)
        assert np.all(tree.child_count <= max(4, max_entries))
        # Leaves are exactly the last level; their spans tile the points.
        leaf_ids = np.flatnonzero(tree.leaf)
        assert np.array_equal(leaf_ids,
                              np.arange(tree.level_offsets[-2],
                                        tree.level_offsets[-1]))
        spans = sorted((int(tree.child_start[i]),
                        int(tree.child_start[i] + tree.child_count[i]))
                       for i in leaf_ids)
        assert spans[0][0] == 0 and spans[-1][1] == tree.size
        assert all(previous[1] == current[0]
                   for previous, current in zip(spans, spans[1:]))

    @SETTINGS
    @given(point_arrays(), st.integers(min_value=4, max_value=9))
    def test_mbr_containment_and_weight_sums(self, points, max_entries):
        weights = weights_for(points)
        tree = FlatRTree.bulk_load(points, weights=weights,
                                   max_entries=max_entries)
        for node in range(tree.num_nodes):
            start = int(tree.child_start[node])
            stop = start + int(tree.child_count[node])
            if tree.leaf[node]:
                child_lo = tree.points[start:stop]
                child_hi = child_lo
                child_weight = tree.point_weights[start:stop].sum()
            else:
                child_lo = tree.lo[start:stop]
                child_hi = tree.hi[start:stop]
                child_weight = tree.weight[start:stop].sum()
            assert np.all(tree.lo[node] <= child_lo + 1e-12)
            assert np.all(child_hi <= tree.hi[node] + 1e-12)
            assert tree.weight[node] == pytest.approx(child_weight)
        if tree.size:
            assert tree.total_weight() == pytest.approx(weights.sum())


class TestFlatAgainstReferences:
    @SETTINGS
    @given(point_arrays(), box_arrays(), st.integers(min_value=4,
                                                     max_value=9))
    def test_window_aggregate_batch_matches_brute_force(self, points, boxes,
                                                        max_entries):
        los, his = boxes
        weights = weights_for(points)
        tree = FlatRTree.bulk_load(points, weights=weights,
                                   max_entries=max_entries)
        assert np.allclose(tree.window_aggregate_batch(los, his),
                           brute_force_counts(points, weights, los, his))

    @SETTINGS
    @given(point_arrays(), box_arrays(), st.integers(min_value=4,
                                                     max_value=9))
    def test_flat_matches_pointer_tree_on_bulk_load(self, points, boxes,
                                                    max_entries):
        los, his = boxes
        weights = weights_for(points)
        flat = FlatRTree.bulk_load(points, weights=weights,
                                   max_entries=max_entries)
        pointer = RTree.bulk_load(points, weights=weights,
                                  max_entries=max_entries)
        expected = [pointer.window_aggregate(lo, hi)
                    for lo, hi in zip(los, his)]
        assert np.allclose(flat.window_aggregate_batch(los, his), expected)

    @SETTINGS
    @given(point_arrays(max_points=60), box_arrays(),
           st.lists(st.integers(min_value=0, max_value=4), max_size=60),
           st.lists(st.booleans(), max_size=60))
    def test_forest_matches_pointer_trees_on_insert_sequences(
            self, points, boxes, tree_choices, flush_flags):
        """Random insert/flush sequences: the forest's σ matrix equals one
        pointer-tree dominance window aggregate per (corner, tree) pair."""
        num_trees, dimension = 5, points.shape[1]
        forest = RTreeForest(num_trees, dimension, max_entries=4)
        reference = [RTree(dimension=dimension, max_entries=4)
                     for _ in range(num_trees)]
        weights = weights_for(points)
        for step, point in enumerate(points):
            tree_id = (tree_choices[step % max(1, len(tree_choices))]
                       if tree_choices else 0)
            forest.insert(tree_id, point, weight=float(weights[step]))
            reference[tree_id].insert(point, weight=float(weights[step]))
            if flush_flags and flush_flags[step % len(flush_flags)]:
                forest.flush()
        assert np.allclose(forest.total_weights(),
                           [tree.total_weight() for tree in reference])
        _, corners = boxes
        sigma = forest.dominance_aggregate(corners)
        window_lo = np.full(dimension, -np.inf)
        expected = [[tree.window_aggregate(window_lo, corner)
                     for tree in reference] for corner in corners]
        assert np.allclose(sigma, expected)

    @SETTINGS
    @given(point_arrays(max_points=60),
           st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                    max_size=60))
    def test_forest_flush_is_transparent(self, points, tree_choices):
        """Merging the pending buffers never changes query answers."""
        num_trees, dimension = 4, points.shape[1]
        buffered = RTreeForest(num_trees, dimension, max_entries=4)
        flushed = RTreeForest(num_trees, dimension, max_entries=4)
        for step, point in enumerate(points):
            tree_id = tree_choices[step % len(tree_choices)]
            buffered.insert(tree_id, point, weight=0.5)
            flushed.insert(tree_id, point, weight=0.5)
        flushed.flush()
        assert flushed.pending_count == 0
        corners = points[: min(len(points), 8)]
        if len(corners):
            assert np.allclose(buffered.dominance_aggregate(corners),
                               flushed.dominance_aggregate(corners))
