"""Parity properties: batch kernels versus the scalar reference predicates.

The vectorized kernels of :mod:`repro.core.kernels` are the hot-path
implementations; the scalar predicates in :mod:`repro.core.dominance`
remain the readable specification.  These tests draw random point blocks
from the tie-heavy integer grid and assert the two agree — bit-identically
for the pure comparison kernels, within float tolerance for the margin
kernels whose summation order may differ.

A second class pins the refactored index algorithms (KDTT+, QDTT+, DUAL)
to the possible-world ENUM baseline end to end.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LinearConstraints
from repro.algorithms.dual import dual_arsp
from repro.algorithms.enum_baseline import enum_arsp
from repro.algorithms.kdtree_traversal import kdtree_traversal_arsp
from repro.algorithms.quadtree_traversal import quadtree_traversal_arsp
from repro.core.dominance import (dominates, strictly_dominates,
                                  weight_ratio_min_margin)
from repro.core.kernels import (BOX_INSIDE, BOX_OUTSIDE, BOX_PARTIAL,
                                classify_against_box, classify_boxes_by_margin,
                                dominates_corner, orthant_codes,
                                strict_dominance_matrix, weak_dominance_matrix,
                                weight_ratio_margins,
                                weight_ratio_margins_matrix,
                                weight_ratio_margins_rows)
from tests.properties.strategies import (grid_points, ratio_constraints,
                                         uncertain_datasets)

COMMON_SETTINGS = settings(max_examples=40, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


def point_blocks(dimension: int, max_points: int = 8):
    """A non-empty (k, dimension) block of tie-heavy grid points."""
    return st.lists(grid_points(dimension), min_size=1,
                    max_size=max_points).map(lambda rows: np.asarray(rows))


class TestDominanceKernelParity:
    @COMMON_SETTINGS
    @given(point_blocks(3), point_blocks(3))
    def test_weak_dominance_matrix_matches_scalar(self, a, b):
        matrix = weak_dominance_matrix(a, b)
        for i, row in enumerate(a):
            for j, col in enumerate(b):
                assert matrix[i, j] == dominates(row, col)

    @COMMON_SETTINGS
    @given(point_blocks(3), point_blocks(3))
    def test_strict_dominance_matrix_matches_scalar(self, a, b):
        matrix = strict_dominance_matrix(a, b)
        for i, row in enumerate(a):
            for j, col in enumerate(b):
                assert matrix[i, j] == strictly_dominates(row, col)

    @COMMON_SETTINGS
    @given(point_blocks(3), grid_points(3))
    def test_dominates_corner_matches_scalar(self, points, corner):
        mask = dominates_corner(points, np.asarray(corner))
        for i, point in enumerate(points):
            assert mask[i] == dominates(point, corner)

    @COMMON_SETTINGS
    @given(point_blocks(3), grid_points(3), grid_points(3))
    def test_classify_against_box_matches_scalar(self, points, a, b):
        pmin = np.minimum(np.asarray(a), np.asarray(b))
        pmax = np.maximum(np.asarray(a), np.asarray(b))
        dominates_min, dominates_max = classify_against_box(points, pmin,
                                                            pmax)
        for i, point in enumerate(points):
            assert dominates_min[i] == dominates(point, pmin)
            assert dominates_max[i] == dominates(point, pmax)


class TestWeightRatioKernelParity:
    @COMMON_SETTINGS
    @given(ratio_constraints(dimension=3), grid_points(3), point_blocks(3))
    def test_margins_match_scalar_min_margin(self, constraints, target,
                                             points):
        margins = weight_ratio_margins(np.asarray(target), points,
                                       constraints.lows, constraints.highs)
        for i, point in enumerate(points):
            expected = weight_ratio_min_margin(point, target, constraints)
            assert margins[i] == pytest.approx(expected, abs=1e-12)

    @COMMON_SETTINGS
    @given(ratio_constraints(dimension=3), point_blocks(3), point_blocks(3))
    def test_rows_and_matrix_agree_with_single_target_kernel(
            self, constraints, targets, points):
        lows, highs = constraints.lows, constraints.highs
        matrix = weight_ratio_margins_matrix(targets, points, lows, highs)
        assert matrix.shape == (len(targets), len(points))
        for t, target in enumerate(targets):
            reference = weight_ratio_margins(target, points, lows, highs)
            np.testing.assert_allclose(matrix[t], reference, atol=1e-9)
            rows = weight_ratio_margins_rows(
                np.repeat(target[None, :], len(points), axis=0), points,
                lows, highs)
            np.testing.assert_allclose(rows, reference, atol=1e-12)

    @COMMON_SETTINGS
    @given(ratio_constraints(dimension=3), grid_points(3), point_blocks(3),
           point_blocks(3))
    def test_box_classification_is_conservative(self, constraints, target,
                                                a_corners, b_corners):
        size = min(len(a_corners), len(b_corners))
        los = np.minimum(a_corners[:size], b_corners[:size])
        his = np.maximum(a_corners[:size], b_corners[:size])
        target = np.asarray(target, dtype=float)
        lows, highs = constraints.lows, constraints.highs
        hi_margins = weight_ratio_margins(target, his, lows, highs)
        lo_margins = weight_ratio_margins(target, los, lows, highs)
        verdicts = classify_boxes_by_margin(hi_margins, lo_margins)
        for k, verdict in enumerate(verdicts):
            # Both corners are points of the box, so INSIDE forces both
            # margins non-negative and OUTSIDE forces both negative.
            assert verdict in (BOX_INSIDE, BOX_PARTIAL, BOX_OUTSIDE)
            if verdict == BOX_INSIDE:
                assert lo_margins[k] >= hi_margins[k] >= -1e-12
            if verdict == BOX_OUTSIDE:
                assert hi_margins[k] <= lo_margins[k] < 1e-12


class TestOrthantCodes:
    @COMMON_SETTINGS
    @given(point_blocks(3), grid_points(3))
    def test_matches_per_dimension_loop(self, points, center):
        codes = orthant_codes(points, np.asarray(center, dtype=float))
        for k, point in enumerate(points):
            expected = 0
            for dim in range(len(center)):
                expected = (expected << 1) | int(point[dim] >= center[dim])
            assert codes[k] == expected


class TestIndexAlgorithmsMatchEnumBaseline:
    """End-to-end parity of the refactored hot paths against ENUM."""

    WR2 = LinearConstraints.weak_ranking(2)

    def check(self, dataset, constraints, algorithm):
        expected = enum_arsp(dataset, constraints)
        actual = algorithm(dataset, constraints)
        assert set(actual) == set(expected)
        for key, value in expected.items():
            assert actual[key] == pytest.approx(value, abs=1e-9)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_kdtt_plus_matches_enum(self, dataset):
        self.check(dataset, self.WR2, kdtree_traversal_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_qdtt_plus_matches_enum(self, dataset):
        self.check(dataset, self.WR2, quadtree_traversal_arsp)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2), ratio_constraints(dimension=2))
    def test_dual_matches_enum(self, dataset, constraints):
        self.check(dataset, constraints, dual_arsp)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(uncertain_datasets(dimension=3, max_objects=4, max_instances=2),
           ratio_constraints(dimension=3))
    def test_dual_matches_enum_3d(self, dataset, constraints):
        self.check(dataset, constraints, dual_arsp)
