"""Parity properties for the kernel-layer vectorization sweep.

Every path ported onto :mod:`repro.core.kernels` keeps (or is pinned
against) its pre-port scalar behaviour: LOOP against the retained scalar
reference, the continuous world scoring against a per-world recount with
the scalar predicate, the new kernels against their scalar counterparts,
and the bulk-built DUAL forest against per-object tree construction.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import LinearConstraints
from repro.algorithms.dual import DualIndex
from repro.algorithms.loop_baseline import loop_arsp, loop_arsp_scalar
from repro.continuous.sampling import count_world_hits
from repro.core.dominance import f_dominates_scores
from repro.core.kernels import (eclipse_dominance_matrix, margin_matrix_terms,
                                weak_dominance_matrix, weak_dominance_tensor,
                                weight_ratio_margins_matrix,
                                weight_ratio_margins_matrix_from_terms)
from repro.eclipse import dual_s_eclipse, naive_eclipse, quad_eclipse
from repro.eclipse.naive import eclipse_dominates
from repro.eclipse.skyline import fast_skyline
from repro.index.kdtree import KDTree, build_forest
from tests.properties.strategies import (grid_points, ratio_constraints,
                                         uncertain_datasets)

COMMON_SETTINGS = settings(max_examples=30, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])

WR2 = LinearConstraints.weak_ranking(2)


def point_blocks(dimension: int, max_points: int = 8):
    return st.lists(grid_points(dimension), min_size=1,
                    max_size=max_points).map(lambda rows: np.asarray(rows))


class TestLoopParity:
    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_vectorized_matches_scalar_reference(self, dataset):
        expected = loop_arsp_scalar(dataset, WR2)
        actual = loop_arsp(dataset, WR2)
        assert set(actual) == set(expected)
        for key, value in expected.items():
            assert actual[key] == pytest.approx(value, abs=1e-12)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_chunked_sweep_matches_single_chunk(self, dataset):
        # Force multi-chunk processing so the prefix logic is exercised even
        # on small datasets.
        from repro.algorithms import loop_baseline
        original = loop_baseline._CHUNK_BUDGET
        try:
            loop_baseline._CHUNK_BUDGET = max(1, dataset.num_instances)
            chunked = loop_arsp(dataset, WR2)
        finally:
            loop_baseline._CHUNK_BUDGET = original
        expected = loop_arsp_scalar(dataset, WR2)
        for key, value in expected.items():
            assert chunked[key] == pytest.approx(value, abs=1e-12)


class TestWorldScoringParity:
    """The batched possible-world scoring of the continuous sampler."""

    @staticmethod
    def scalar_hits(scores, appearing):
        trials, num_objects = appearing.shape
        hits = np.zeros(num_objects, dtype=np.int64)
        for world in range(trials):
            present = np.flatnonzero(appearing[world])
            for i in present:
                dominated = any(
                    f_dominates_scores(scores[world, j], scores[world, i])
                    for j in present if j != i)
                if not dominated:
                    hits[i] += 1
        return hits

    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=5),
           st.data())
    def test_batched_hits_match_scalar_recount(self, trials, num_objects,
                                               data):
        scores = data.draw(arrays(
            dtype=float, shape=(trials, num_objects, 3),
            elements=st.integers(min_value=0, max_value=4).map(float)))
        appearing = data.draw(arrays(dtype=bool,
                                     shape=(trials, num_objects)))
        expected = self.scalar_hits(scores, appearing)
        np.testing.assert_array_equal(count_world_hits(scores, appearing),
                                      expected)

    def test_chunked_scoring_matches_unchunked(self):
        rng = np.random.default_rng(11)
        scores = rng.integers(0, 4, size=(64, 6, 3)).astype(float)
        appearing = rng.random((64, 6)) < 0.7
        from repro.continuous import sampling
        expected = count_world_hits(scores, appearing)
        original = sampling._CHUNK_BUDGET
        try:
            sampling._CHUNK_BUDGET = 1
            chunked = count_world_hits(scores, appearing)
        finally:
            sampling._CHUNK_BUDGET = original
        np.testing.assert_array_equal(chunked, expected)


class TestKernelAdditions:
    @COMMON_SETTINGS
    @given(st.integers(min_value=1, max_value=4), st.data())
    def test_weak_dominance_tensor_matches_matrix(self, batches, data):
        blocks = [data.draw(point_blocks(3, max_points=4)) for _ in
                  range(batches)]
        size = min(len(block) for block in blocks)
        stacked = np.stack([block[:size] for block in blocks])
        tensor = weak_dominance_tensor(stacked)
        for index in range(batches):
            np.testing.assert_array_equal(
                tensor[index],
                weak_dominance_matrix(stacked[index], stacked[index]))

    @COMMON_SETTINGS
    @given(point_blocks(3), ratio_constraints(dimension=3))
    def test_eclipse_dominance_matrix_matches_scalar(self, points,
                                                     constraints):
        matrix = eclipse_dominance_matrix(points, constraints.lows,
                                          constraints.highs)
        for i, t in enumerate(points):
            for j, s in enumerate(points):
                if i == j:
                    assert not matrix[i, j]
                else:
                    assert matrix[i, j] == eclipse_dominates(t, s,
                                                             constraints)

    @COMMON_SETTINGS
    @given(point_blocks(3), point_blocks(3), ratio_constraints(dimension=3))
    def test_margin_terms_reproduce_direct_matrix(self, targets, points,
                                                  constraints):
        direct = weight_ratio_margins_matrix(targets, points,
                                             constraints.lows,
                                             constraints.highs)
        terms = margin_matrix_terms(points, constraints.lows,
                                    constraints.highs)
        np.testing.assert_array_equal(
            weight_ratio_margins_matrix_from_terms(targets, terms), direct)


class TestDualForestAndCaches:
    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2))
    def test_build_forest_matches_per_object_trees(self, dataset):
        forest = build_forest(dataset.instance_matrix(),
                              dataset.object_ids(), dataset.num_objects,
                              weights=dataset.probability_vector())
        assert len(forest) == dataset.num_objects
        for obj, tree in zip(dataset.objects, forest):
            points = np.asarray([inst.values for inst in obj], dtype=float)
            weights = np.asarray([inst.probability for inst in obj],
                                 dtype=float)
            reference = KDTree(points, weights=weights)
            assert len(tree) == len(reference)
            if reference.root is None:
                assert tree.root is None
                continue
            np.testing.assert_allclose(tree.root.lo, reference.root.lo)
            np.testing.assert_allclose(tree.root.hi, reference.root.hi)
            assert tree.root.weight_sum == pytest.approx(
                reference.root.weight_sum)

    @COMMON_SETTINGS
    @given(uncertain_datasets(dimension=2), ratio_constraints(dimension=2))
    def test_repeated_query_served_from_cache(self, dataset, constraints):
        index = DualIndex(dataset)
        first = index.query(constraints)
        assert index.query_cache_hits == 0
        second = index.query(constraints)
        assert index.query_cache_hits == 1
        assert first == second
        # The cached copy must be isolated from caller mutation.
        second[next(iter(second), 0)] = 123.0
        assert index.query(constraints) == first


class TestEclipseAtScale:
    """Deterministic larger inputs exercising the blocked code paths."""

    def test_fast_skyline_crosses_block_boundary(self):
        rng = np.random.default_rng(5)
        points = rng.integers(0, 30, size=(1300, 3)).astype(float)
        strict = (np.all(points[:, None, :] <= points[None, :, :], axis=2)
                  & np.any(points[:, None, :] < points[None, :, :], axis=2))
        expected = sorted(np.flatnonzero(~strict.any(axis=0)).tolist())
        assert fast_skyline(points) == expected

    def test_eclipse_algorithms_agree_on_larger_input(self):
        from repro import WeightRatioConstraints
        rng = np.random.default_rng(6)
        points = rng.random((600, 3))
        constraints = WeightRatioConstraints([(0.4, 1.5), (0.8, 2.5)])
        expected = sorted(naive_eclipse(points, constraints))
        assert sorted(quad_eclipse(points, constraints)) == expected
        assert sorted(dual_s_eclipse(points, constraints)) == expected

    def test_eclipse_agreement_at_large_magnitudes(self):
        """Self-exclusion must be by index: nearby large-coordinate points
        are genuine dominators, not ties (regression for the former
        value-closeness test)."""
        from repro import WeightRatioConstraints
        points = np.asarray([[1e6, 1e6, 1e6],
                             [1e6 - 8.0, 1e6 + 1.0, 1e6 + 1.0]])
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
        expected = sorted(naive_eclipse(points, constraints))
        assert sorted(dual_s_eclipse(points, constraints)) == expected
        assert sorted(quad_eclipse(points, constraints)) == expected
