"""Tests for the workload-matrix registry (repro.experiments.workloads)."""

import numpy as np
import pytest

from repro.core.preference import (LinearConstraints, WeightRatioConstraints)
from repro.experiments.workloads import (VARIANT_FOR_ALGORITHM, VARIANT_RATIO,
                                         VARIANT_RATIO_2D, VARIANT_TINY,
                                         VARIANT_WR, VARIANTS, WorkloadScale,
                                         available_workloads, build_workload,
                                         get_workload_spec,
                                         variant_for_algorithm)

#: A seconds-scale build for the unit tests.
SCALE = WorkloadScale(num_objects=24, max_instances=3, dimension=3,
                      enum_objects=4, enum_instances=2, iip_records=30,
                      car_models=10, car_instances=3, nba_players=8,
                      nba_games=5, seed=7)

#: (name, expected kind, expected full dimension) for every workload.
EXPECTED = [
    ("ind", "synthetic", 3),
    ("anti", "synthetic", 3),
    ("corr", "synthetic", 3),
    ("iip", "real", 2),
    ("car", "real", 4),
    ("nba", "real", 8),
]


class TestRegistry:
    def test_axis_names_all_paper_workloads(self):
        assert available_workloads() == ["ind", "anti", "corr",
                                         "iip", "car", "nba"]

    def test_lookup_is_case_insensitive(self):
        assert get_workload_spec("ANTI").name == "anti"
        assert get_workload_spec("  Nba ").name == "nba"

    def test_unknown_workload_lists_available(self):
        with pytest.raises(KeyError, match="ind, anti, corr, iip, car, nba"):
            get_workload_spec("tpch")

    def test_variant_for_algorithm(self):
        assert variant_for_algorithm("enum") == VARIANT_TINY
        assert variant_for_algorithm("dual") == VARIANT_RATIO
        assert variant_for_algorithm("dual-ms") == VARIANT_RATIO_2D
        for generic in ("loop", "kdtt", "kdtt+", "qdtt+", "bnb"):
            assert variant_for_algorithm(generic) == VARIANT_WR
        assert set(VARIANT_FOR_ALGORITHM.values()) <= set(VARIANTS)


class TestBuiltWorkloads:
    @pytest.mark.parametrize("name,kind,dimension", EXPECTED)
    def test_variants_are_constraint_matched(self, name, kind, dimension):
        workload = build_workload(name, SCALE)
        assert workload.kind == kind
        assert sorted(workload.variants) == sorted(VARIANTS)

        full = workload.variants[VARIANT_WR]
        full.dataset.validate()
        assert full.dataset.dimension == dimension
        assert isinstance(full.constraints, LinearConstraints)
        assert full.constraints.num_constraints == dimension - 1

        ratio = workload.variants[VARIANT_RATIO]
        assert ratio.dataset is full.dataset
        assert isinstance(ratio.constraints, WeightRatioConstraints)
        assert ratio.constraints.dimension == dimension

        flat = workload.variants[VARIANT_RATIO_2D]
        flat.dataset.validate()
        assert flat.dataset.dimension == 2
        assert flat.constraints.dimension == 2
        if dimension == 2:
            assert flat.dataset is full.dataset
        else:
            # The projection keeps the first two attributes of the same data.
            np.testing.assert_allclose(
                flat.dataset.instance_matrix(),
                full.dataset.instance_matrix()[:, :2])

        tiny = workload.variants[VARIANT_TINY]
        tiny.dataset.validate()
        assert tiny.dataset.num_objects <= SCALE.enum_objects
        assert all(len(obj) <= SCALE.enum_instances for obj in tiny.dataset)
        assert tiny.dataset.dimension == dimension

    @pytest.mark.parametrize("name", [row[0] for row in EXPECTED])
    def test_build_is_deterministic(self, name):
        first = build_workload(name, SCALE)
        second = build_workload(name, SCALE)
        np.testing.assert_array_equal(
            first.variants[VARIANT_WR].dataset.instance_matrix(),
            second.variants[VARIANT_WR].dataset.instance_matrix())

    def test_variant_describe(self):
        workload = build_workload("ind", SCALE)
        meta = workload.variants[VARIANT_WR].describe()
        assert meta["num_objects"] == 24
        assert meta["dimension"] == 3
        assert meta["constraints"] == "WR(c=2)"
        assert meta["num_instances"] == \
            workload.variants[VARIANT_WR].dataset.num_instances

    def test_variant_accessor_follows_algorithm_mapping(self):
        workload = build_workload("corr", SCALE)
        assert workload.variant("enum") is workload.variants[VARIANT_TINY]
        assert workload.variant("loop") is workload.variants[VARIANT_WR]

    def test_distribution_character_survives_the_matrix(self):
        """The ANTI/CORR cells must actually be anti-/correlated — also in
        the 2-d projection DUAL-MS runs on."""
        big = WorkloadScale(num_objects=400, max_instances=2, dimension=3,
                            seed=11)
        for name, bound in (("anti", -0.05), ("corr", 0.5)):
            workload = build_workload(name, big)
            for key in (VARIANT_WR, VARIANT_RATIO_2D):
                points = workload.variants[key].dataset.instance_matrix()
                correlation = np.corrcoef(points[:, 0], points[:, 1])[0, 1]
                assert (correlation < bound if name == "anti"
                        else correlation > bound), (name, key)
