"""Tests for the effectiveness study (Tables I/II, Fig. 4)."""

import pytest

from repro import LinearConstraints, compute_arsp
from repro.data.real import nba_dataset
from repro.experiments.effectiveness import (aggregated_rskyline_ids,
                                             format_ranking_table,
                                             rank_correlation,
                                             rskyline_probability_ranking,
                                             score_distributions,
                                             skyline_probability_ranking)


@pytest.fixture(scope="module")
def nba():
    return nba_dataset(num_players=40, max_games=12, num_metrics=3, seed=99)


@pytest.fixture(scope="module")
def constraints():
    return LinearConstraints.weak_ranking(3)


class TestRankings:
    def test_table1_shape(self, nba, constraints):
        rows = rskyline_probability_ranking(nba, constraints, top_k=14)
        assert len(rows) == 14
        assert all(0.0 <= row.probability <= 1.0 for row in rows)
        # Sorted by decreasing probability.
        probabilities = [row.probability for row in rows]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_table1_accepts_precomputed_arsp(self, nba, constraints):
        arsp = compute_arsp(nba, constraints, algorithm="kdtt+")
        direct = rskyline_probability_ranking(nba, constraints, top_k=5,
                                              arsp=arsp)
        recomputed = rskyline_probability_ranking(nba, constraints, top_k=5)
        assert [r.object_id for r in direct] == [r.object_id
                                                 for r in recomputed]

    def test_table2_shape(self, nba):
        rows = skyline_probability_ranking(nba, top_k=14)
        assert len(rows) == 14
        probabilities = [row.probability for row in rows]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rskyline_probability_below_skyline_probability(self, nba,
                                                            constraints):
        """The paper's observation: Pr_rsky(T) <= Pr_sky(T) per object."""
        rsky = {row.object_id: row.probability
                for row in rskyline_probability_ranking(nba, constraints,
                                                        top_k=40)}
        sky = {row.object_id: row.probability
               for row in skyline_probability_ranking(nba, top_k=40)}
        for object_id, value in rsky.items():
            assert value <= sky[object_id] + 1e-9

    def test_aggregated_rskyline_ids(self, nba, constraints):
        ids = aggregated_rskyline_ids(nba, constraints)
        assert len(ids) >= 1
        assert all(0 <= i < nba.num_objects for i in ids)

    def test_some_aggregated_members_marked(self, nba, constraints):
        rows = rskyline_probability_ranking(nba, constraints, top_k=14)
        assert any(row.in_aggregated_rskyline for row in rows)

    def test_rank_correlation_bounds(self, nba, constraints):
        table1 = rskyline_probability_ranking(nba, constraints, top_k=14)
        table2 = skyline_probability_ranking(nba, top_k=14)
        overlap = rank_correlation(table1, table2)
        assert 0.0 <= overlap <= 1.0

    def test_rank_correlation_identity(self, nba, constraints):
        table = rskyline_probability_ranking(nba, constraints, top_k=10)
        assert rank_correlation(table, table) == pytest.approx(1.0)

    def test_rank_correlation_empty(self):
        assert rank_correlation([], []) == 0.0


class TestScoreDistributions:
    def test_summaries_shape(self, nba, constraints):
        summaries = score_distributions(nba, constraints, [0, 1])
        assert set(summaries) == {0, 1}
        region_vertices = constraints.preference_region().num_vertices
        assert len(summaries[0]) == region_vertices
        for summary in summaries[0]:
            assert summary["min"] <= summary["median"] <= summary["max"]
            assert summary["q1"] <= summary["q3"]

    def test_formatting(self, nba, constraints):
        rows = rskyline_probability_ranking(nba, constraints, top_k=3)
        text = format_ranking_table(rows, "Table I")
        assert "Table I" in text
        assert rows[0].label in text
