"""The scenario engine (repro.experiments.scenarios).

Covers the tentpole guarantees of the scenario PR: seeded scripts are
process-independent pure functions of their spec (and their component
streams are independent of each other), the query stream is genuinely
Zipf-skewed and bursty, and — the pinning property — every replay mode
(one-shot recompute, incremental σ maintenance, the warm service, the
PR 7 daemon) produces a byte-identical stream fingerprint.
"""

import collections

import numpy as np
import pytest

from repro.experiments.scenarios import (REPLAY_MODES, ScenarioSpec,
                                         build_scenario, replay_scenario,
                                         zipf_probabilities)

pytestmark = pytest.mark.stream

#: Small but non-trivial quick-profile spec used across this module: every
#: step inserts, deletes, updates and queries, and the pool is large
#: enough for both hot repeats and cold misses.
QUICK = ScenarioSpec(name="quick", seed=5, steps=3, num_objects=20,
                     max_instances=3, dimension=3, queries_per_step=8,
                     constraint_pool=4)


@pytest.fixture(scope="module")
def quick_script():
    return build_scenario(QUICK)


class TestZipf:
    def test_probabilities_normalised_and_monotone(self):
        popularity = zipf_probabilities(8, 1.1)
        assert popularity.sum() == pytest.approx(1.0)
        assert np.all(np.diff(popularity) < 0)

    def test_zero_exponent_is_uniform(self):
        popularity = zipf_probabilities(5, 0.0)
        np.testing.assert_allclose(popularity, np.full(5, 0.2))

    def test_stream_is_skewed_toward_the_head(self):
        spec = ScenarioSpec(name="skew", seed=3, steps=1, num_objects=8,
                            dimension=3, queries_per_step=300,
                            constraint_pool=6, zipf_exponent=1.4,
                            inserts_per_step=0, deletes_per_step=0,
                            updates_per_step=0)
        script = build_scenario(spec)
        counts = collections.Counter(
            event.constraint_index for event in script.steps[0].queries)
        # The hottest constraint dominates: more arrivals than any other
        # and a share far above uniform (1/6).
        head = counts[0]
        assert head == max(counts.values())
        assert head / 300 > 2.0 / 6.0


class TestScriptDeterminism:
    def test_same_spec_same_fingerprint(self, quick_script):
        again = build_scenario(QUICK)
        assert again.fingerprint() == quick_script.fingerprint()

    def test_different_seed_different_fingerprint(self, quick_script):
        other = build_scenario(ScenarioSpec(**dict(
            QUICK.__dict__, seed=QUICK.seed + 1)))
        assert other.fingerprint() != quick_script.fingerprint()

    def test_component_streams_are_independent(self, quick_script):
        """Changing the query knobs must not perturb dataset or deltas
        (each component draws from its own spawned SeedSequence child)."""
        more_queries = build_scenario(ScenarioSpec(**dict(
            QUICK.__dict__, queries_per_step=QUICK.queries_per_step + 7)))
        for step, other in zip(quick_script.steps, more_queries.steps):
            assert step.delta == other.delta
        base = quick_script.base_dataset
        other = more_queries.base_dataset
        assert [i.values for i in base.instances] == \
            [i.values for i in other.instances]
        assert quick_script.constraint_pool == more_queries.constraint_pool

    def test_script_does_not_touch_global_numpy_state(self):
        np.random.seed(4321)
        before = np.random.get_state()[1].copy()
        build_scenario(QUICK)
        after = np.random.get_state()[1].copy()
        np.testing.assert_array_equal(before, after)


class TestScriptShape:
    def test_steps_and_queries_counts(self, quick_script):
        assert len(quick_script.steps) == QUICK.steps
        assert quick_script.num_queries == QUICK.steps * QUICK.queries_per_step
        for step in quick_script.steps:
            assert len(step.delta.inserts) == QUICK.inserts_per_step
            assert len(step.delta.deletes) == QUICK.deletes_per_step
            assert len(step.delta.updates) == QUICK.updates_per_step

    def test_deltas_are_valid_against_the_evolving_population(
            self, quick_script):
        dataset = quick_script.base_dataset
        for step in quick_script.steps:
            step.delta.validate(dataset.num_objects)
            dataset = dataset.apply_delta(step.delta)
            dataset.validate()

    def test_bursts_share_a_constraint_and_time_is_monotone(
            self, quick_script):
        for step in quick_script.steps:
            arrivals = [event.arrival_s for event in step.queries]
            assert arrivals == sorted(arrivals)
            by_burst = collections.defaultdict(set)
            for event in step.queries:
                by_burst[event.burst].add(event.constraint_index)
            # One constraint per burst: the shape single-flight coalescing
            # absorbs.
            assert all(len(keys) == 1 for keys in by_burst.values())

    def test_constraint_pool_indices_in_range(self, quick_script):
        for step in quick_script.steps:
            for event in step.queries:
                assert 0 <= event.constraint_index < QUICK.constraint_pool


class TestSpecValidation:
    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="at least one step"):
            ScenarioSpec(steps=0).validate()
        with pytest.raises(ValueError, match="dimension"):
            ScenarioSpec(dimension=1).validate()
        with pytest.raises(ValueError, match="leave room"):
            ScenarioSpec(num_objects=4, deletes_per_step=2,
                         updates_per_step=2).validate()
        with pytest.raises(ValueError, match="mean_burst"):
            ScenarioSpec(mean_burst=0.5).validate()

    def test_replay_rejects_unknown_mode(self, quick_script):
        with pytest.raises(ValueError, match="unknown replay mode"):
            replay_scenario(quick_script, "warp")


class TestReplayEquivalence:
    def test_all_modes_byte_identical(self, quick_script):
        """The pinning property: every replay mode, one fingerprint."""
        reports = [replay_scenario(quick_script, mode)
                   for mode in REPLAY_MODES]
        fingerprints = {report.result_fingerprint for report in reports}
        assert len(fingerprints) == 1
        for report in reports:
            assert report.script_fingerprint == quick_script.fingerprint()
            assert len(report.steps) == QUICK.steps
            assert sum(step.num_queries for step in report.steps) == \
                quick_script.num_queries

    def test_incremental_mode_reports_maintenance_savings(self,
                                                          quick_script):
        report = replay_scenario(quick_script, "incremental")
        stats = report.engine_stats
        assert stats["deltas_applied"] == QUICK.steps
        assert stats["sigma_hits"] > 0
        assert stats["sigma_entries_copied"] > 0

    def test_service_mode_hits_the_cross_query_cache(self, quick_script):
        report = replay_scenario(quick_script, "service")
        cache = report.engine_stats["cache"]
        assert cache["hits"] > 0
        assert report.engine_stats["deltas"] == QUICK.steps

    def test_service_mode_retains_cache_entries_across_deltas(
            self, quick_script):
        """The quick script's per-step deltas touch a small fraction of
        the objects, so the σ repair is cheap and hot constraints'
        entries must survive the delta and serve post-delta hits —
        under the same stream fingerprint as full recompute (pinned by
        ``test_all_modes_byte_identical``)."""
        report = replay_scenario(quick_script, "service")
        cache = report.engine_stats["cache"]
        assert cache["retained"] > 0
        assert cache["retained_hits"] > 0

    @pytest.mark.serve
    def test_daemon_mode_coalesces_bursts(self, quick_script):
        report = replay_scenario(quick_script, "daemon")
        # Multi-query bursts exist in the quick script, so at least one
        # follower must have piggybacked on an in-flight leader.
        sizes = [len(list(group)) for step in quick_script.steps
                 for group in _burst_groups(step.queries)]
        assert max(sizes) > 1
        assert report.engine_stats["coalesced"] > 0

    def test_oneshot_sharded_matches_serial(self, quick_script):
        serial = replay_scenario(quick_script, "oneshot")
        sharded = replay_scenario(quick_script, "oneshot", workers=2,
                                  backend="serial")
        assert sharded.result_fingerprint == serial.result_fingerprint


def _burst_groups(queries):
    grouped = collections.defaultdict(list)
    for event in queries:
        grouped[event.burst].append(event)
    return grouped.values()


@pytest.mark.bench
@pytest.mark.parametrize("distribution", ["IND", "ANTI", "CORR"])
@pytest.mark.parametrize("zipf_exponent", [0.0, 1.1])
def test_full_matrix_replay_equivalence(distribution, zipf_exponent):
    """The full scenario matrix (distributions × skews) behind ``bench``:
    bigger populations, every replay mode, one fingerprint each."""
    spec = ScenarioSpec(name="matrix", seed=17, steps=4, num_objects=48,
                        max_instances=4, dimension=4,
                        distribution=distribution,
                        inserts_per_step=3, deletes_per_step=3,
                        updates_per_step=3, queries_per_step=16,
                        constraint_pool=8, zipf_exponent=zipf_exponent)
    script = build_scenario(spec)
    fingerprints = {replay_scenario(script, mode).result_fingerprint
                    for mode in REPLAY_MODES}
    assert len(fingerprints) == 1
