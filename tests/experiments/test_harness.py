"""Tests for the timing harness and reporting helpers."""

import pytest

from repro import LinearConstraints
from repro.experiments.harness import (AlgorithmRun, run_algorithms, sweep,
                                       sweep_to_series, time_call)
from repro.experiments.reporting import (format_series, format_table,
                                         merge_series)
from tests.conftest import make_random_dataset


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0

    def test_kwargs_forwarded(self):
        result, _ = time_call(sorted, [3, 1, 2], reverse=True)
        assert result == [3, 2, 1]


class TestRunAlgorithms:
    @pytest.fixture
    def workload(self):
        dataset = make_random_dataset(seed=80, num_objects=10,
                                      max_instances=3, dimension=3)
        return dataset, LinearConstraints.weak_ranking(3)

    def test_runs_all_requested_algorithms(self, workload):
        runs = run_algorithms(*workload, algorithms=["loop", "kdtt+", "bnb"])
        assert set(runs) == {"loop", "kdtt+", "bnb"}
        assert all(run.finished for run in runs.values())

    def test_sizes_agree_across_algorithms(self, workload):
        runs = run_algorithms(*workload, algorithms=["loop", "kdtt+", "bnb"])
        sizes = {run.arsp_size for run in runs.values()}
        assert len(sizes) == 1

    def test_consistency_check_passes(self, workload):
        runs = run_algorithms(*workload, algorithms=["loop", "kdtt+"],
                              check_consistency=True)
        assert all(run.error is None for run in runs.values())

    def test_skip_records_skipped_run(self, workload):
        runs = run_algorithms(*workload, algorithms=["loop", "enum"],
                              skip=["enum"])
        assert runs["enum"].skipped
        assert runs["enum"].seconds is None
        assert runs["loop"].finished

    def test_error_recorded_not_raised(self, workload):
        dataset, _ = workload
        bad_constraints = LinearConstraints.weak_ranking(4)  # wrong dimension
        runs = run_algorithms(dataset, bad_constraints, algorithms=["loop"])
        assert not runs["loop"].finished
        assert runs["loop"].error


class TestSweep:
    def test_sweep_and_series(self):
        def factory(num_objects):
            dataset = make_random_dataset(seed=81, num_objects=num_objects,
                                          max_instances=2, dimension=2)
            return dataset, LinearConstraints.weak_ranking(2)

        points = sweep("m", [5, 10], factory, algorithms=["loop", "kdtt+"])
        assert len(points) == 2
        assert points[0].parameter == "m"
        series = sweep_to_series(points, ["loop", "kdtt+"])
        assert len(series["loop"]) == 2
        assert len(series["ARSP size"]) == 2
        assert all(value is not None for value in series["kdtt+"])


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", None]],
                            title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "-" in text  # None rendered as dash

    def test_format_series(self):
        text = format_series("m", [5, 10],
                             {"loop": [0.1, 0.2], "kdtt+": [0.05, None]})
        lines = text.splitlines()
        assert lines[0].split()[0] == "m"
        assert len(lines) == 4

    def test_merge_series(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        merged = merge_series(rows, ["a", "b"])
        assert merged == {"a": [1, 3], "b": [2, None]}

    def test_algorithm_run_finished_flag(self):
        assert AlgorithmRun("x", seconds=1.0, arsp_size=5).finished
        assert not AlgorithmRun("x", seconds=None, arsp_size=None).finished
        assert not AlgorithmRun("x", seconds=1.0, arsp_size=5,
                                error="boom").finished
