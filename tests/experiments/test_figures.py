"""Tests for the figure sweeps (Figs. 5-8).

These run with very small parameters — the point is to exercise the sweep
machinery and the qualitative claims (results agree across algorithms, the
expected monotonicities hold), not to reproduce the paper-scale timings,
which is the benchmarks' job.
"""

import pytest

from repro.experiments.figures import (DEFAULT_ALGORITHMS, figure5_sweep,
                                       figure6_sweep, figure7_dual_ms,
                                       figure8_sweep, real_dataset,
                                       synthetic_workload)

SMALL_ALGORITHMS = ("loop", "kdtt+", "bnb")


class TestSyntheticWorkload:
    def test_workload_shapes(self):
        dataset, constraints = synthetic_workload(num_objects=30,
                                                  max_instances=3,
                                                  dimension=3)
        assert dataset.num_objects == 30
        assert constraints.dimension == 3

    def test_im_constraints(self):
        _, constraints = synthetic_workload(num_objects=10, dimension=3,
                                            constraint_generator="IM",
                                            num_constraints=4)
        assert constraints.num_constraints >= 1

    def test_unknown_generator(self):
        with pytest.raises(ValueError):
            synthetic_workload(constraint_generator="XX")


class TestFigure5:
    def test_vary_m(self):
        points = figure5_sweep("m", [10, 20], algorithms=SMALL_ALGORITHMS,
                               base={"max_instances": 3, "dimension": 3},
                               check_consistency=True)
        assert len(points) == 2
        for point in points:
            assert all(run.finished for run in point.runs.values())
            assert all(run.error is None for run in point.runs.values())

    def test_vary_d(self):
        points = figure5_sweep("d", [2, 3], algorithms=("kdtt+",),
                               base={"num_objects": 15, "max_instances": 3})
        assert [p.value for p in points] == [2, 3]

    def test_size_grows_with_cnt(self):
        points = figure5_sweep("cnt", [2, 6], algorithms=("kdtt+",),
                               base={"num_objects": 30, "dimension": 3})
        assert points[1].size() >= points[0].size()

    def test_unknown_parameter(self):
        with pytest.raises(ValueError):
            figure5_sweep("bogus", [1], algorithms=("kdtt+",))

    def test_default_algorithm_tuple_is_valid(self):
        from repro.algorithms import list_algorithms
        assert set(DEFAULT_ALGORITHMS) <= set(list_algorithms())


class TestFigure6:
    def test_real_dataset_lookup(self):
        assert real_dataset("IIP", num_records=30).num_objects == 30
        assert real_dataset("CAR", num_models=10).num_objects == 10
        assert real_dataset("NBA", num_players=10).num_objects == 10
        with pytest.raises(ValueError):
            real_dataset("XYZ")

    def test_vary_m_on_iip(self):
        points = figure6_sweep("IIP", "m", [50, 100],
                               algorithms=("kdtt+",),
                               dataset_kwargs={"num_records": 80})
        assert len(points) == 2
        assert points[1].size() >= points[0].size()

    def test_vary_d_on_nba(self):
        points = figure6_sweep("NBA", "d", [2, 3], algorithms=("kdtt+",),
                               dataset_kwargs={"num_players": 15,
                                               "max_games": 6})
        assert [p.value for p in points] == [2, 3]

    def test_vary_c_on_nba(self):
        points = figure6_sweep("NBA", "c", [1, 2], algorithms=("kdtt+",),
                               dataset_kwargs={"num_players": 15,
                                               "max_games": 6,
                                               "num_metrics": 3})
        assert all(run.finished for point in points
                   for run in point.runs.values())

    def test_unknown_parameter(self):
        with pytest.raises(ValueError):
            figure6_sweep("IIP", "bogus", [1],
                          dataset_kwargs={"num_records": 10})


class TestFigure7:
    def test_rows_and_monotonicity(self):
        rows = figure7_dual_ms(fractions=(50, 100), num_records=60)
        assert len(rows) == 2
        for row in rows:
            assert row["dual_ms_preprocess_s"] >= 0.0
            assert row["dual_ms_query_s"] >= 0.0
            assert row["kdtt_plus_s"] >= 0.0
        assert rows[1]["num_instances"] >= rows[0]["num_instances"]

    def test_preprocessing_dominates_query(self):
        """The qualitative shape of Fig. 7: preprocessing >> query time."""
        rows = figure7_dual_ms(fractions=(100,), num_records=150)
        row = rows[0]
        assert row["dual_ms_preprocess_s"] > row["dual_ms_query_s"]


class TestFigure8:
    def test_vary_n(self):
        rows = figure8_sweep("n", [128, 256], default_d=3)
        assert len(rows) == 2
        assert all(row["results_match"] for row in rows)

    def test_vary_d(self):
        rows = figure8_sweep("d", [2, 3], default_n=256)
        assert all(row["results_match"] for row in rows)

    def test_vary_q(self):
        rows = figure8_sweep("q", [(0.84, 1.19), (0.36, 2.75)],
                             default_n=256, default_d=3)
        assert all(row["results_match"] for row in rows)
        # A wider ratio range admits at least as many eclipse points.
        assert rows[1]["eclipse_size"] >= rows[0]["eclipse_size"]

    def test_unknown_parameter(self):
        with pytest.raises(ValueError):
            figure8_sweep("bogus", [1])
