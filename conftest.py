"""Repo-level pytest plugins.

Fallback per-test timeout
-------------------------
The suite declares ``pytest-timeout`` in the test extras and a ``timeout``
cap in ``pyproject.toml`` so no hung worker (the exact failure mode the
fault-injection tests provoke on purpose) can wedge CI forever.  Not every
environment has the plugin installed, so this conftest ships a minimal
SIGALRM-based stand-in that honours the same ``timeout`` ini value and
``@pytest.mark.timeout(seconds)`` marker.  It deactivates itself entirely
when the real plugin is importable, and degrades to a no-op on platforms
without ``SIGALRM`` (Windows) or off the main thread.
"""

from __future__ import annotations

import importlib.util
import signal
import threading

import pytest

_HAVE_PYTEST_TIMEOUT = (
    importlib.util.find_spec("pytest_timeout") is not None)


def pytest_addoption(parser):
    if _HAVE_PYTEST_TIMEOUT:
        return
    parser.addini(
        "timeout",
        "per-test timeout in seconds; enforced by the SIGALRM fallback shim "
        "when pytest-timeout is not installed (0 disables)",
        default="0")


def pytest_configure(config):
    if _HAVE_PYTEST_TIMEOUT:
        return
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout; honoured by the SIGALRM "
        "fallback shim when pytest-timeout is not installed")


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = 0.0 if _HAVE_PYTEST_TIMEOUT else _timeout_for(item)
    if (seconds <= 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            "test exceeded the %gs timeout (SIGALRM fallback shim; install "
            "pytest-timeout for stack dumps)" % seconds)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
