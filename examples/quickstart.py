"""Quickstart: compute all restricted skyline probabilities on a toy dataset.

This reproduces the structure of the paper's running example (Example 1):
four uncertain objects with ten instances and the preference
``F = {ω1 t[1] + ω2 t[2] | 0.5 ω2 <= ω1 <= 2 ω2}``.  The coordinates below
are chosen so that the headline value of the example holds exactly:
``Pr_rsky(t1,1) = 2/9`` and ``Pr_rsky(t1,2) = 0``, hence
``Pr_rsky(T1) = 2/9``.

Run with::

    python examples/quickstart.py
"""

from repro import (LinearConstraints, UncertainDataset,
                   WeightRatioConstraints, compute_arsp,
                   object_rskyline_probabilities, top_k_objects)

# Four uncertain objects, ten instances (Example 1 structure).
DATASET = UncertainDataset.from_instance_lists(
    instance_lists=[
        [(2.0, 9.0), (12.0, 10.0)],                 # T1: t1,1  t1,2
        [(1.0, 8.0), (10.0, 4.0), (9.0, 12.0)],     # T2: t2,1  t2,2  t2,3
        [(3.0, 5.0), (4.0, 9.0), (12.0, 3.0)],      # T3: t3,1  t3,2  t3,3
        [(5.0, 13.0), (13.0, 2.0)],                 # T4: t4,1  t4,2
    ],
    probability_lists=[
        [1.0 / 2, 1.0 / 2],
        [1.0 / 3, 1.0 / 3, 1.0 / 3],
        [1.0 / 3, 1.0 / 3, 1.0 / 3],
        [1.0 / 2, 1.0 / 2],
    ],
    labels=["T1", "T2", "T3", "T4"],
)


def main() -> None:
    # The same preference region expressed two equivalent ways: a weight
    # ratio constraint 0.5 <= ω1/ω2 <= 2 ...
    ratio = WeightRatioConstraints([(0.5, 2.0)])
    # ... or explicit linear constraints ω1 - 2ω2 <= 0 and 0.5ω2 - ω1 <= 0.
    linear = LinearConstraints.from_halfspaces(
        2, [((1.0, -2.0), 0.0), ((-1.0, 0.5), 0.0)])

    print("Preference region vertices (ratio form):")
    print(ratio.preference_region().vertices)
    print("Preference region vertices (linear form):")
    print(linear.preference_region().vertices)

    # Compute ARSP with two different algorithms and check they agree.
    arsp_kdtt = compute_arsp(DATASET, linear, algorithm="kdtt+")
    arsp_dual = compute_arsp(DATASET, ratio, algorithm="dual")
    assert all(abs(arsp_kdtt[key] - arsp_dual[key]) < 1e-9
               for key in arsp_kdtt)

    print("\nInstance-level rskyline probabilities:")
    for obj in DATASET.objects:
        for position, instance in enumerate(obj.instances, start=1):
            print("  %s,%d at %s -> %.4f"
                  % (obj.label, position, instance.values,
                     arsp_kdtt[instance.instance_id]))

    print("\nObject-level rskyline probabilities:")
    per_object = object_rskyline_probabilities(DATASET, arsp_kdtt)
    for obj in DATASET.objects:
        print("  %s -> %.4f" % (obj.label, per_object[obj.object_id]))

    # The headline value of the paper's Example 1.
    t11 = DATASET.objects[0].instances[0]
    assert abs(arsp_kdtt[t11.instance_id] - 2.0 / 9.0) < 1e-9
    assert abs(per_object[0] - 2.0 / 9.0) < 1e-9
    print("\nPr_rsky(t1,1) = %.4f = 2/9, matching Example 1 of the paper."
          % arsp_kdtt[t11.instance_id])

    print("\nTop-2 objects by rskyline probability:")
    for object_id, probability in top_k_objects(DATASET, arsp_kdtt, k=2):
        print("  %s -> %.4f" % (DATASET.object(object_id).label, probability))


if __name__ == "__main__":
    main()
