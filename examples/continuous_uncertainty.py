"""Continuous uncertainty: the paper's future-work direction, made runnable.

Sensor readings or model predictions often come with continuous error models
rather than a finite instance set.  This example builds objects with uniform
and Gaussian uncertainty, then compares the two reductions shipped in
``repro.continuous``: discretisation followed by exact ARSP, and direct
Monte Carlo estimation over sampled possible worlds.

Run with::

    python examples/continuous_uncertainty.py
"""

from repro import LinearConstraints
from repro.continuous import (GaussianObject, UniformBoxObject,
                              discretized_arsp, monte_carlo_object_arsp)


def build_fleet():
    """A small fleet of delivery drones: (energy per km, failure rate)."""
    return [
        UniformBoxObject(0, lo=[0.10, 0.05], hi=[0.20, 0.15],
                         label="drone-A (efficient, reliable)"),
        UniformBoxObject(1, lo=[0.15, 0.02], hi=[0.45, 0.30],
                         label="drone-B (erratic)"),
        GaussianObject(2, mean=[0.30, 0.10], std=[0.03, 0.02],
                       label="drone-C (consistent mid-field)"),
        GaussianObject(3, mean=[0.18, 0.08], std=[0.10, 0.08],
                       appearance_probability=0.8,
                       bounds=([0.0, 0.0], [1.0, 1.0]),
                       label="drone-D (promising but often unavailable)"),
        UniformBoxObject(4, lo=[0.55, 0.40], hi=[0.90, 0.80],
                         label="drone-E (outclassed)"),
    ]


def main() -> None:
    objects = build_fleet()
    # Energy matters at least as much as failure rate.
    constraints = LinearConstraints.weak_ranking(2)

    exact = discretized_arsp(objects, constraints, samples_per_object=32,
                             seed=11)
    estimated = monte_carlo_object_arsp(objects, constraints,
                                        num_trials=2000, seed=12)

    print("Object-level rskyline probabilities "
          "(discretised exact vs Monte Carlo):\n")
    print("%-40s %12s %20s" % ("object", "discretised", "monte carlo (±se)"))
    for obj in objects:
        estimate, stderr = estimated[obj.object_id]
        print("%-40s %12.3f %14.3f ± %.3f"
              % (obj.label, exact[obj.object_id], estimate, stderr))

    print("\nThe efficient-and-reliable drone dominates; the erratic one "
          "keeps a moderate probability thanks to its occasional excellent "
          "draws — the same effect the paper highlights for high-variance "
          "NBA players.")


if __name__ == "__main__":
    main()
