"""Eclipse queries on a certain dataset (Section IV / Fig. 8).

The eclipse query retrieves all points not F-dominated under weight ratio
constraints.  This example compares the three implementations shipped with
the package (naive, QUAD-style baseline, DUAL-S) on an independent synthetic
dataset and shows how the result shrinks as the ratio range tightens.

Run with::

    python examples/eclipse_demo.py
"""

import time

from repro import WeightRatioConstraints
from repro.data.synthetic import generate_certain_points
from repro.eclipse import dual_s_eclipse, fast_skyline, naive_eclipse, quad_eclipse


def main() -> None:
    points = generate_certain_points(2000, 3, distribution="IND", seed=5)
    skyline_size = len(fast_skyline(points))
    print("Dataset: %d points in dimension 3; skyline size %d"
          % (len(points), skyline_size))

    for low, high in [(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)]:
        constraints = WeightRatioConstraints([(low, high)] * 2)
        timings = {}
        results = {}
        for name, algorithm in [("naive", naive_eclipse),
                                ("quad", quad_eclipse),
                                ("dual-s", dual_s_eclipse)]:
            start = time.perf_counter()
            results[name] = algorithm(points, constraints)
            timings[name] = time.perf_counter() - start
        assert sorted(results["naive"]) == sorted(results["quad"])
        assert sorted(results["naive"]) == sorted(results["dual-s"])
        print("ratio range [%.2f, %.2f]: eclipse size %3d | "
              "naive %.3fs  quad %.3fs  dual-s %.3fs"
              % (low, high, len(results["naive"]), timings["naive"],
                 timings["quad"], timings["dual-s"]))


if __name__ == "__main__":
    main()
