"""E-commerce scenario: probabilistic car rentals (paper introduction).

A rental platform groups cars by model; choosing a model yields any car of
that model with equal probability, so every model is an uncertain object.
The customer cannot pin down exact attribute weights, only rough demands
("mileage matters at least as much as price"), which become linear
constraints on the weights.  ARSP then surfaces the models with the highest
probability of being an undominated choice under *any* admissible weighting.

Run with::

    python examples/car_rental.py
"""

from repro import LinearConstraints, compute_arsp, object_rskyline_probabilities
from repro.core.rskyline import rskyline
from repro.data.real import car_dataset


def main() -> None:
    dataset = car_dataset(num_models=60, max_cars_per_model=8, seed=42)
    print("Dataset: %d car models, %d individual cars, %d attributes "
          "(price, inverse power, mileage, age)"
          % (dataset.num_objects, dataset.num_instances, dataset.dimension))

    # "Running costs matter at least as much as purchase price": weak ranking
    # over (price, inverse power, mileage, age).
    constraints = LinearConstraints.weak_ranking(dimension=4,
                                                 num_constraints=3)

    arsp = compute_arsp(dataset, constraints, algorithm="bnb")
    per_model = object_rskyline_probabilities(dataset, arsp)
    ranking = sorted(per_model.items(), key=lambda item: -item[1])

    print("\nTop 10 models by rskyline probability:")
    for object_id, probability in ranking[:10]:
        model = dataset.object(object_id)
        print("  %-10s  Pr_rsky = %.3f  (%d cars in the pool)"
              % (model.label, probability, len(model)))

    # Contrast with the aggregated view (average car per model): models that
    # look mediocre on average can still be strong probabilistic choices.
    aggregated = dataset.aggregate()
    aggregated_points = [obj.instances[0].values for obj in aggregated]
    aggregated_ids = set(rskyline(aggregated_points, constraints))
    newcomers = [object_id for object_id, _ in ranking[:10]
                 if object_id not in aggregated_ids]
    print("\nModels in the probabilistic top-10 but *not* in the aggregated "
          "rskyline: %s"
          % (", ".join(dataset.object(i).label for i in newcomers) or "none"))


if __name__ == "__main__":
    main()
