"""Prediction-service scenario: uncertain stock forecasts (paper introduction).

A prediction service emits several (price, growth-rate) forecasts per stock,
each with a confidence value; the forecasts of one stock form an uncertain
object whose instance probabilities sum to at most one.  The analyst only
knows that price and growth rate matter within a factor of two of each other
— the weight ratio constraint ``0.5 ω2 <= ω1 <= 2 ω2`` — and wants an
overview of stocks likely to be undominated under any such weighting.

Run with::

    python examples/stock_prediction.py
"""

import numpy as np

from repro import (UncertainDataset, WeightRatioConstraints, compute_arsp,
                   object_rskyline_probabilities, threshold_query)


def build_forecast_dataset(num_stocks: int = 40, seed: int = 7
                           ) -> UncertainDataset:
    """Synthesise per-stock forecast distributions.

    Lower stored values are better, so the generator stores negated growth
    rate and normalised price directly.
    """
    rng = np.random.default_rng(seed)
    instance_lists = []
    probability_lists = []
    labels = []
    for stock in range(num_stocks):
        quality = rng.beta(2.0, 3.0)
        num_forecasts = int(rng.integers(2, 6))
        forecasts = []
        confidences = rng.dirichlet(np.ones(num_forecasts)) * rng.uniform(0.7, 1.0)
        for _ in range(num_forecasts):
            price = rng.uniform(0.2, 1.0) * (1.2 - quality)
            growth = np.clip(quality + rng.normal(0.0, 0.2), 0.0, 1.5)
            forecasts.append((price, 1.5 - growth))
        instance_lists.append(forecasts)
        probability_lists.append(list(confidences))
        labels.append("STK-%03d" % stock)
    return UncertainDataset.from_instance_lists(instance_lists,
                                                probability_lists,
                                                labels=labels)


def main() -> None:
    dataset = build_forecast_dataset()
    constraints = WeightRatioConstraints([(0.5, 2.0)])
    print("Dataset: %d stocks, %d forecasts; weight ratio constraint "
          "0.5 <= ω_price/ω_growth <= 2"
          % (dataset.num_objects, dataset.num_instances))

    # The DUAL algorithm is the natural choice for weight ratio constraints;
    # the dispatcher would also pick it with algorithm="auto".
    arsp = compute_arsp(dataset, constraints, algorithm="dual")
    per_stock = object_rskyline_probabilities(dataset, arsp)

    print("\nStocks with rskyline probability >= 0.25:")
    for object_id, probability in sorted(per_stock.items(),
                                         key=lambda item: -item[1]):
        if probability < 0.25:
            break
        print("  %s  Pr_rsky = %.3f" % (dataset.object(object_id).label,
                                        probability))

    strong_forecasts = threshold_query(arsp, threshold=0.25)
    print("\n%d individual forecasts clear the 0.25 threshold "
          "(threshold queries come for free once ARSP is computed)."
          % len(strong_forecasts))


if __name__ == "__main__":
    main()
