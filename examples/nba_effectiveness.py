"""Effectiveness study on the (simulated) NBA dataset — Tables I/II, Fig. 4.

Reproduces the structure of the paper's Section V-B: rank players by
rskyline probability under ``ω_rebounds >= ω_assists >= ω_points``, mark the
members of the aggregated rskyline, compare against the skyline-probability
ranking, and print the per-vertex score summaries that explain the
differences.

Run with::

    python examples/nba_effectiveness.py
"""

from repro import LinearConstraints, compute_arsp
from repro.data.real import nba_dataset
from repro.experiments.effectiveness import (format_ranking_table,
                                             rank_correlation,
                                             rskyline_probability_ranking,
                                             score_distributions,
                                             skyline_probability_ranking)


def main() -> None:
    # Three metrics, as in the paper: rebounds, assists, points.
    dataset = nba_dataset(num_players=120, max_games=25, num_metrics=3,
                          seed=2021)
    constraints = LinearConstraints.weak_ranking(dimension=3)

    arsp = compute_arsp(dataset, constraints, algorithm="kdtt+")
    table1 = rskyline_probability_ranking(dataset, constraints, top_k=14,
                                          arsp=arsp)
    table2 = skyline_probability_ranking(dataset, top_k=14)

    print(format_ranking_table(
        table1, "Table I — top-14 players by rskyline probability "
                "(* = member of the aggregated rskyline)"))
    print()
    print(format_ranking_table(
        table2, "Table II — top-14 players by skyline probability",
        probability_header="Pr_sky"))

    overlap = rank_correlation(table1, table2)
    print("\nOverlap between the two top-14 lists: %.0f%%" % (100 * overlap))

    # Fig. 4: score distributions of the strongest player under each vertex
    # of the preference region.
    best = table1[0]
    summaries = score_distributions(dataset, constraints, [best.object_id])
    print("\nScore distribution of %s under the preference-region vertices "
          "(lower is better):" % best.label)
    for vertex_index, summary in enumerate(summaries[best.object_id]):
        print("  vertex %d: min=%.1f q1=%.1f median=%.1f q3=%.1f max=%.1f "
              "mean=%.1f"
              % (vertex_index, summary["min"], summary["q1"],
                 summary["median"], summary["q3"], summary["max"],
                 summary["mean"]))


if __name__ == "__main__":
    main()
