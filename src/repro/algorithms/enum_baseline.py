"""ENUM: the possible-world enumeration baseline.

This is the first baseline of Section III-A: enumerate every possible world,
compute its rskyline and accumulate the world probability onto every member.
It is exponential in the number of objects and exists as ground truth for the
other algorithms and for the (small) ENUM series of Figure 5.
"""

from __future__ import annotations

from typing import Dict

from ..core.dataset import UncertainDataset
from ..core.possible_worlds import brute_force_arsp, number_of_possible_worlds
from .base import finalize_result

#: Refuse to enumerate more worlds than this by default; the figure-5
#: experiments show ENUM timing out even at the smallest settings, and an
#: accidental call on a benchmark-sized dataset would effectively hang.
DEFAULT_MAX_WORLDS = 5_000_000


def enum_arsp(dataset: UncertainDataset, constraints,
              max_worlds: int = DEFAULT_MAX_WORLDS) -> Dict[int, float]:
    """Compute ARSP by enumerating all possible worlds.

    Parameters
    ----------
    dataset, constraints:
        The ARSP input.
    max_worlds:
        Safety limit on the number of possible worlds; a ``ValueError`` is
        raised when the dataset would exceed it.  Pass ``None`` to disable.
    """
    if max_worlds is not None:
        worlds = number_of_possible_worlds(dataset)
        if worlds > max_worlds:
            raise ValueError(
                "dataset has %d possible worlds which exceeds the ENUM limit "
                "of %d; use one of the polynomial algorithms instead"
                % (worlds, max_worlds))
    return finalize_result(brute_force_arsp(dataset, constraints))
