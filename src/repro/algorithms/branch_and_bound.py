"""B&B: the branch-and-bound algorithm (Algorithm 2).

Instead of mapping the whole dataset into score space up front, the
branch-and-bound algorithm traverses an R-tree over the *raw* instances in
best-first order of their score under one vertex of the preference region and
maps instances on the fly.  Two structures make it fast:

* one aggregated R-tree ``R_j`` per uncertain object, holding the score
  vectors of the already-processed instances of ``T_j`` — a window aggregate
  query against ``R_j`` yields the probability mass of ``T_j`` that
  F-dominates the current instance;
* a pruning set ``P`` with at most one point per object: once the entire
  probability mass of an object has been processed, the component-wise
  maximum of its score vectors is added to ``P``, and any R-tree node whose
  min-corner score vector is dominated by a member of ``P`` contains only
  zero-probability instances (Theorems 3 and 4) and is skipped entirely.

Expected time complexity ``O(m n log n)``.

Both R-tree roles run on the flat array layer of :mod:`repro.index.rtree`
(see docs/ARCHITECTURE.md):

* the *static* index is a :class:`repro.index.rtree.FlatRTree`; its node
  min corners are score-mapped once with two matrix products at build time
  (heap keys and pruning-test scores for every node of the tree), and each
  expansion prunes a whole contiguous child span with one kernel call
  against the pruning set;
* the *aggregated* trees ``R_1 … R_m`` live in one
  :class:`repro.index.rtree.RTreeForest` block.  A tied batch inserts all
  surviving score vectors, then resolves every survivor's σ values against
  every other object with a single
  :meth:`~repro.index.rtree.RTreeForest.dominance_aggregate` call instead
  of a per-(survivor, object) Python loop of ``window_aggregate`` queries.
  Survivors whose own existence probability is zero skip the σ query
  entirely — their rskyline probability is zero regardless.

The pruning set is kept as a stacked corner matrix tested with
:func:`repro.core.kernels.dominates_corner` /
:func:`repro.core.kernels.weak_dominance_matrix`; the σ window aggregates
query the closed box at ``corner + SCORE_ATOL`` so the forest's exact
containment test implements the same tolerant weak dominance as every
other algorithm's score-space comparison (ulp-level ties count in both
directions).

Instances with identical scores under the sort vertex are processed as one
batch (all of them are inserted into their aggregated R-trees before any of
them is queried) so that weak dominance between tied instances is accounted
for exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.kernels import dominates_corner, weak_dominance_matrix
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from ..core.preference import resolve_preference_region
from ..core.profiling import phase
from ..index.rtree import FlatRTree, RTreeForest
from .base import ExecutionPolicy, finalize_result, sharded_arsp

_NODE = 0
_INSTANCE = 1


class _PruningSet:
    """The pruning set ``P`` as a lazily stacked corner matrix.

    Membership tests are the B&B per-node dominance tests; keeping the
    corners in one ``(k, d')`` array lets a single kernel call decide a
    whole block of score vectors instead of looping corner by corner.
    Insertions append to a list in O(1); the stacked matrix is rebuilt only
    when the next test observes new corners.
    """

    __slots__ = ("_pending", "_corners")

    def __init__(self, dimension: int):
        self._pending: List[np.ndarray] = []
        self._corners = np.empty((0, dimension))

    def add(self, corner: np.ndarray) -> None:
        self._pending.append(corner.copy())

    def _matrix(self) -> np.ndarray:
        if self._pending:
            self._corners = np.concatenate(
                [self._corners, np.stack(self._pending)])
            self._pending = []
        return self._corners

    def prunes(self, score_vector: np.ndarray) -> bool:
        """Does any pruning corner weakly dominate ``score_vector``?"""
        corners = self._matrix()
        if not len(corners):
            return False
        return bool(dominates_corner(corners, score_vector,
                                     atol=SCORE_ATOL).any())

    def prunes_block(self, score_vectors: np.ndarray) -> np.ndarray:
        """Batched :meth:`prunes` over a ``(b, d')`` score block."""
        corners = self._matrix()
        if not len(corners) or not len(score_vectors):
            return np.zeros(len(score_vectors), dtype=bool)
        return weak_dominance_matrix(corners, score_vectors,
                                     atol=SCORE_ATOL).any(axis=0)


def branch_and_bound_arsp(dataset: UncertainDataset, constraints,
                          max_entries: int = 16,
                          workers: Optional[int] = None,
                          backend: Optional[str] = None,
                          policy: Optional[ExecutionPolicy] = None
                          ) -> Dict[int, float]:
    """Compute ARSP with the branch-and-bound algorithm.

    Parameters
    ----------
    dataset, constraints:
        The ARSP input (any constraint type with a preference region).
    max_entries:
        Fan-out of the R-trees (both the static index and the per-object
        aggregated forest).
    workers, backend:
        Target-axis sharding across the execution backend
        (:mod:`repro.core.backend`).  Every worker replays the full
        best-first traversal (the pruning-set evolution is inherently
        sequential) but runs the dominant per-survivor σ queries and the
        result emission only for its own shard of target objects; the
        forest's per-corner aggregates are batch-order independent, so
        shard results are bit-identical to the serial run.
    """
    return sharded_arsp(_bnb_shard, dataset, constraints,
                        workers=workers, backend=backend,
                        options={"max_entries": max_entries}, policy=policy)


def _bnb_shard(dataset: UncertainDataset, constraints,
               lo: int, hi: int, max_entries: int = 16) -> Dict[int, float]:
    """B&B results for the instances owned by objects in ``[lo, hi)``."""
    region = resolve_preference_region(constraints)
    if region.dimension != dataset.dimension:
        raise ValueError(
            "constraints are defined for dimension %d but the dataset has "
            "dimension %d" % (region.dimension, dataset.dimension))
    result = {instance.instance_id: 0.0 for instance in dataset.instances
              if lo <= instance.object_id < hi}
    n = dataset.num_instances
    if n == 0:
        return result

    instances = dataset.instances
    points = dataset.instance_matrix()
    probabilities = dataset.probability_vector()
    object_ids = dataset.object_ids()
    vertices = region.vertices
    sort_vertex = vertices[0]
    mapped_dimension = region.num_vertices
    # Heap keys of all instances in one product instead of one dot per push.
    instance_keys = points @ sort_vertex

    with phase("index"):
        index = FlatRTree.bulk_load(points,
                                    weights=probabilities,
                                    data=np.arange(n),
                                    max_entries=max_entries)
        # Score-map every node's min corner once: heap keys and pruning-test
        # scores for the whole static tree come from two matrix products.
        node_keys = index.lo @ sort_vertex
        node_scores = index.lo @ vertices.T

    forest = RTreeForest(dataset.num_objects, mapped_dimension,
                         max_entries=max_entries)

    pruning_set = _PruningSet(mapped_dimension)
    processed_mass = np.zeros(dataset.num_objects)
    object_totals = np.asarray(
        [obj.total_probability for obj in dataset.objects])
    max_corners = np.full((dataset.num_objects, mapped_dimension), -np.inf)

    counter = itertools.count()
    heap: List[Tuple[float, int, int, int]] = []

    def push_node(node_id: int) -> None:
        heapq.heappush(heap, (float(node_keys[node_id]), next(counter),
                              _NODE, node_id))

    def push_instance(position: int) -> None:
        heapq.heappush(heap, (float(instance_keys[position]), next(counter),
                              _INSTANCE, position))

    def expand(node_id: int) -> None:
        """Open a static-index node, pruning children dominated by ``P``."""
        start = int(index.child_start[node_id])
        stop = start + int(index.child_count[node_id])
        if index.leaf[node_id]:
            for position in index.payloads[start:stop]:
                push_instance(int(position))
        else:
            # The child span is contiguous in the flat layout: its
            # precomputed score rows feed one kernel call against P.
            pruned = pruning_set.prunes_block(node_scores[start:stop])
            for child_id in range(start, stop):
                if not pruned[child_id - start]:
                    push_node(child_id)

    with phase("query"):
        if index.size and not pruning_set.prunes(node_scores[0]):
            push_node(0)

        while heap:
            key, _, kind, payload = heapq.heappop(heap)
            if kind == _NODE:
                if not pruning_set.prunes(node_scores[payload]):
                    expand(payload)
                continue

            # Gather every instance with the same sort key (plus any node
            # whose min corner shares the key, which may hide further tied
            # instances).
            batch: List[int] = [payload]
            while heap and heap[0][0] <= key + SCORE_ATOL:
                _, _, other_kind, other_payload = heapq.heappop(heap)
                if other_kind == _NODE:
                    if not pruning_set.prunes(node_scores[other_payload]):
                        expand(other_payload)
                else:
                    batch.append(other_payload)

            # First pass: map the whole batch into score space with one
            # block product and discard instances already known to have zero
            # probability (Theorem 3 makes this safe).
            batch_scores = points[batch] @ vertices.T
            pruned_batch = pruning_set.prunes_block(batch_scores)
            survivors = [(position, batch_scores[row])
                         for row, position in enumerate(batch)
                         if not pruned_batch[row]]

            # Second pass: insert all survivors before querying any of them
            # so tied instances see each other in the window aggregates.
            for position, score_vector in survivors:
                forest.insert(int(object_ids[position]), score_vector,
                              weight=float(probabilities[position]))

            # Third pass: one forest call resolves σ against every other
            # object for the whole batch.  Survivors with zero existence
            # probability skip the query — their result is zero either way
            # — and so do survivors outside this shard's target range:
            # their masses were inserted above (they stay candidate
            # dominators for everyone), but their own σ rows belong to
            # another shard.  The forest's per-corner rows do not depend on
            # which other corners share the batch, so the remaining rows
            # are bit-identical to the unsharded batch.
            live = [(position, score_vector)
                    for position, score_vector in survivors
                    if probabilities[position] > 0.0
                    and lo <= int(object_ids[position]) < hi]
            if live:
                corners = np.stack([score for _, score in live])
                owners = np.asarray([int(object_ids[position])
                                     for position, _ in live])
                # Querying the closed window at corner + SCORE_ATOL makes
                # the exact containment test of the forest implement the
                # same tolerant weak dominance (candidate <= target + atol)
                # as every other algorithm's score-space comparison —
                # without it, ulp-level score ties (e.g. under degenerate
                # single-vertex regions) are counted in one direction only.
                sigma = forest.dominance_aggregate(corners + SCORE_ATOL)
                sigma[np.arange(len(live)), owners] = 0.0
                saturated = (sigma >= 1.0 - PROB_ATOL).any(axis=1)
                live_probabilities = (
                    np.asarray([probabilities[position]
                                for position, _ in live])
                    * np.prod(1.0 - sigma, axis=1))
                live_probabilities[saturated] = 0.0
                for row, (position, _) in enumerate(live):
                    result[instances[position].instance_id] = float(
                        live_probabilities[row])

            for position, score_vector in survivors:
                owner = int(object_ids[position])
                processed_mass[owner] += probabilities[position]
                max_corners[owner] = np.maximum(max_corners[owner],
                                                score_vector)
                if (object_totals[owner] >= 1.0 - PROB_ATOL
                        and processed_mass[owner] >= 1.0 - PROB_ATOL
                        and len(dataset.objects[owner]) > 0):
                    pruning_set.add(max_corners[owner])

    return finalize_result(result)
