"""B&B: the branch-and-bound algorithm (Algorithm 2).

Instead of mapping the whole dataset into score space up front, the
branch-and-bound algorithm traverses an R-tree over the *raw* instances in
best-first order of their score under one vertex of the preference region and
maps instances on the fly.  Two structures make it fast:

* one aggregated R-tree ``R_j`` per uncertain object, holding the score
  vectors of the already-processed instances of ``T_j`` — a window aggregate
  query against ``R_j`` yields the probability mass of ``T_j`` that
  F-dominates the current instance;
* a pruning set ``P`` with at most one point per object: once the entire
  probability mass of an object has been processed, the component-wise
  maximum of its score vectors is added to ``P``, and any R-tree node whose
  min-corner score vector is dominated by a member of ``P`` contains only
  zero-probability instances (Theorems 3 and 4) and is skipped entirely.

Expected time complexity ``O(m n log n)``.

The per-node dominance and bound tests run through the kernel layer
(docs/ARCHITECTURE.md): the pruning set is kept as a stacked corner matrix
tested with :func:`repro.core.kernels.dominates_corner` /
:func:`repro.core.kernels.weak_dominance_matrix`, a node's children are
score-mapped and pruned with one matrix product per expansion, and tied
batches map all their instances with a single block product.  The
comparisons are identical to the former per-corner Python loops, so results
are unchanged.

Instances with identical scores under the sort vertex are processed as one
batch (all of them are inserted into their aggregated R-trees before any of
them is queried) so that weak dominance between tied instances is accounted
for exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Tuple

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.kernels import dominates_corner, weak_dominance_matrix
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from ..core.preference import resolve_preference_region
from ..index.rtree import RTree
from .base import empty_result, finalize_result

_NODE = 0
_INSTANCE = 1


class _PruningSet:
    """The pruning set ``P`` as a lazily stacked corner matrix.

    Membership tests are the B&B per-node dominance tests; keeping the
    corners in one ``(k, d')`` array lets a single kernel call decide a
    whole block of score vectors instead of looping corner by corner.
    Insertions append to a list in O(1); the stacked matrix is rebuilt only
    when the next test observes new corners.
    """

    __slots__ = ("_pending", "_corners")

    def __init__(self, dimension: int):
        self._pending: List[np.ndarray] = []
        self._corners = np.empty((0, dimension))

    def add(self, corner: np.ndarray) -> None:
        self._pending.append(corner.copy())

    def _matrix(self) -> np.ndarray:
        if self._pending:
            self._corners = np.concatenate(
                [self._corners, np.stack(self._pending)])
            self._pending = []
        return self._corners

    def prunes(self, score_vector: np.ndarray) -> bool:
        """Does any pruning corner weakly dominate ``score_vector``?"""
        corners = self._matrix()
        if not len(corners):
            return False
        return bool(dominates_corner(corners, score_vector,
                                     atol=SCORE_ATOL).any())

    def prunes_block(self, score_vectors: np.ndarray) -> np.ndarray:
        """Batched :meth:`prunes` over a ``(b, d')`` score block."""
        corners = self._matrix()
        if not len(corners) or not len(score_vectors):
            return np.zeros(len(score_vectors), dtype=bool)
        return weak_dominance_matrix(corners, score_vectors,
                                     atol=SCORE_ATOL).any(axis=0)


def branch_and_bound_arsp(dataset: UncertainDataset, constraints,
                          max_entries: int = 16) -> Dict[int, float]:
    """Compute ARSP with the branch-and-bound algorithm.

    Parameters
    ----------
    dataset, constraints:
        The ARSP input (any constraint type with a preference region).
    max_entries:
        Fan-out of the R-trees (both the static index and the per-object
        aggregated trees).
    """
    region = resolve_preference_region(constraints)
    if region.dimension != dataset.dimension:
        raise ValueError(
            "constraints are defined for dimension %d but the dataset has "
            "dimension %d" % (region.dimension, dataset.dimension))
    result = empty_result(dataset)
    n = dataset.num_instances
    if n == 0:
        return result

    instances = dataset.instances
    points = dataset.instance_matrix()
    probabilities = dataset.probability_vector()
    object_ids = dataset.object_ids()
    vertices = region.vertices
    sort_vertex = vertices[0]
    mapped_dimension = region.num_vertices
    # Heap keys of all instances in one product instead of one dot per push.
    instance_keys = points @ sort_vertex

    index = RTree.bulk_load(points,
                            weights=probabilities,
                            data=list(range(n)),
                            max_entries=max_entries)

    aggregated: List[RTree] = [RTree(mapped_dimension, max_entries=max_entries)
                               for _ in range(dataset.num_objects)]
    window_lo = np.full(mapped_dimension, -np.inf)

    pruning_set = _PruningSet(mapped_dimension)
    processed_mass = np.zeros(dataset.num_objects)
    object_totals = np.asarray(
        [obj.total_probability for obj in dataset.objects])
    max_corners = np.full((dataset.num_objects, mapped_dimension), -np.inf)

    counter = itertools.count()
    heap: List[Tuple[float, int, int, object]] = []

    def push_node(node) -> None:
        key = float(np.dot(sort_vertex, node.lo))
        heapq.heappush(heap, (key, next(counter), _NODE, node))

    def push_instance(position: int) -> None:
        heapq.heappush(heap, (float(instance_keys[position]), next(counter),
                              _INSTANCE, position))

    def expand(node) -> None:
        """Open an R-tree node, pruning children dominated by ``P``."""
        if node.is_leaf:
            for entry in node.entries:
                push_instance(int(entry.data))
        else:
            # Score-map all children's min corners with one product and test
            # them against the pruning set with one kernel call.
            child_scores = np.stack([child.lo for child in node.children
                                     ]) @ vertices.T
            pruned = pruning_set.prunes_block(child_scores)
            for child, skip in zip(node.children, pruned.tolist()):
                if not skip:
                    push_node(child)

    root_scores = vertices @ index.root.lo
    if index.size and not pruning_set.prunes(root_scores):
        push_node(index.root)

    while heap:
        key, _, kind, payload = heapq.heappop(heap)
        if kind == _NODE:
            node_scores = vertices @ payload.lo
            if not pruning_set.prunes(node_scores):
                expand(payload)
            continue

        # Gather every instance with the same sort key (plus any node whose
        # min corner shares the key, which may hide further tied instances).
        batch: List[int] = [payload]
        while heap and heap[0][0] <= key + SCORE_ATOL:
            _, _, other_kind, other_payload = heapq.heappop(heap)
            if other_kind == _NODE:
                node_scores = vertices @ other_payload.lo
                if not pruning_set.prunes(node_scores):
                    expand(other_payload)
            else:
                batch.append(other_payload)

        # First pass: map the whole batch into score space with one block
        # product and discard instances already known to have zero
        # probability (Theorem 3 makes this safe).
        batch_scores = points[batch] @ vertices.T
        pruned_batch = pruning_set.prunes_block(batch_scores)
        survivors: List[Tuple[int, np.ndarray]] = [
            (position, batch_scores[row])
            for row, position in enumerate(batch)
            if not pruned_batch[row]]

        # Second pass: insert all survivors before querying any of them so
        # tied instances see each other in the window aggregates.
        for position, score_vector in survivors:
            aggregated[object_ids[position]].insert(
                score_vector, weight=float(probabilities[position]),
                data=position)

        for position, score_vector in survivors:
            owner = int(object_ids[position])
            probability = float(probabilities[position])
            for other in range(dataset.num_objects):
                if other == owner or probability == 0.0:
                    continue
                tree = aggregated[other]
                if tree.size == 0:
                    continue
                sigma = tree.window_aggregate(window_lo, score_vector)
                if sigma >= 1.0 - PROB_ATOL:
                    probability = 0.0
                    break
                probability *= 1.0 - sigma
            result[instances[position].instance_id] = probability

            processed_mass[owner] += probabilities[position]
            max_corners[owner] = np.maximum(max_corners[owner], score_vector)
            if (object_totals[owner] >= 1.0 - PROB_ATOL
                    and processed_mass[owner] >= 1.0 - PROB_ATOL
                    and len(dataset.objects[owner]) > 0):
                pruning_set.add(max_corners[owner])

    return finalize_result(result)
