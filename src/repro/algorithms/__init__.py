"""ARSP algorithms.

Every algorithm shares the same signature::

    algorithm(dataset, constraints, **options) -> {instance_id: probability}

and they all return identical probabilities (up to floating point noise); the
differences are purely about how much work they avoid:

================  =====================================================
``enum``          possible-world enumeration (exponential ground truth)
``loop``          sorted pairwise F-dominance tests, O(d d' n^2)
``kdtt``          kd-tree traversal, tree built up front
``kdtt+``         kd-tree traversal integrated with construction + pruning
``qdtt+``         quadtree traversal integrated with construction + pruning
``bnb``           best-first branch and bound with aggregated R-trees
``dual``          half-space aggregation (weight ratio constraints only)
``dual-ms``       specialised 2-D dual structure with preprocessing
================  =====================================================
"""

from .asp import compute_asp, compute_skyline_probabilities
from .branch_and_bound import branch_and_bound_arsp
from .dual import dual_arsp
from .dual2d import Dual2DIndex, dual_ms_arsp
from .enum_baseline import enum_arsp
from .kdtree_traversal import kdtree_traversal_arsp
from .loop_baseline import loop_arsp
from .quadtree_traversal import quadtree_traversal_arsp
from .registry import ALGORITHMS, get_algorithm, list_algorithms

__all__ = [
    "ALGORITHMS",
    "Dual2DIndex",
    "branch_and_bound_arsp",
    "compute_asp",
    "compute_skyline_probabilities",
    "dual_arsp",
    "dual_ms_arsp",
    "enum_arsp",
    "get_algorithm",
    "kdtree_traversal_arsp",
    "list_algorithms",
    "loop_arsp",
    "quadtree_traversal_arsp",
]
