"""DUAL-MS: the specialised two-dimensional dual algorithm (Section V-D).

For ``d = 2`` the two half-space queries of the DUAL reduction merge into a
single *angular range* around the target instance: representing every other
instance ``s`` by the angle of ``s - t`` (measured counter-clockwise from the
positive x-axis), the instances F-dominating ``t`` under the ratio range
``[l, h]`` are exactly those with angle in ``[π - arctan(l), 2π - arctan(h)]``
plus any instance coincident with ``t``.

The preprocessing therefore stores, for every instance, the other objects'
instances sorted by that angle; a query binary-searches the two angular
bounds and folds the per-object probability masses inside the range into the
product of equation (3).  As in the paper, preprocessing is heavy
(``O(n^2 log n)`` time and ``O(n^2)`` space) while queries are fast, which is
the trade-off Figure 7 illustrates.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Tuple

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from .base import empty_result, finalize_result


class Dual2DIndex:
    """Preprocessed angular structure for 2-D weight ratio ARSP queries."""

    def __init__(self, dataset: UncertainDataset):
        if dataset.dimension != 2:
            raise ValueError("DUAL-MS is specialised for 2-dimensional data")
        self.dataset = dataset
        # For every instance: sorted angles, matching object ids and
        # probabilities, and the list of coincident instances.
        self._angles: List[np.ndarray] = []
        self._angle_objects: List[np.ndarray] = []
        self._angle_probs: List[np.ndarray] = []
        self._coincident: List[List[Tuple[int, float]]] = []
        self._preprocess()

    # ------------------------------------------------------------------
    def _preprocess(self) -> None:
        points = self.dataset.instance_matrix()
        probabilities = self.dataset.probability_vector()
        object_ids = self.dataset.object_ids()
        n = len(points)
        for i in range(n):
            angles: List[float] = []
            objects: List[int] = []
            probs: List[float] = []
            coincident: List[Tuple[int, float]] = []
            xi, yi = points[i]
            for j in range(n):
                if object_ids[j] == object_ids[i]:
                    continue
                dx = points[j, 0] - xi
                dy = points[j, 1] - yi
                if abs(dx) <= SCORE_ATOL and abs(dy) <= SCORE_ATOL:
                    coincident.append((int(object_ids[j]),
                                       float(probabilities[j])))
                    continue
                angle = math.atan2(dy, dx)
                if angle < 0.0:
                    angle += 2.0 * math.pi
                angles.append(angle)
                objects.append(int(object_ids[j]))
                probs.append(float(probabilities[j]))
            order = np.argsort(angles, kind="stable") if angles else []
            self._angles.append(np.asarray(angles)[order]
                                if len(angles) else np.empty(0))
            self._angle_objects.append(np.asarray(objects, dtype=int)[order]
                                       if len(objects) else np.empty(0, int))
            self._angle_probs.append(np.asarray(probs)[order]
                                     if len(probs) else np.empty(0))
            self._coincident.append(coincident)

    # ------------------------------------------------------------------
    @staticmethod
    def angular_range(constraints: WeightRatioConstraints
                      ) -> Tuple[float, float]:
        """The dominating angular range ``[π - arctan(l), 2π - arctan(h)]``."""
        if constraints.dimension != 2:
            raise ValueError("DUAL-MS requires a single ratio range (d = 2)")
        low, high = constraints.ranges[0]
        return (math.pi - math.atan(low), 2.0 * math.pi - math.atan(high))

    def query(self, constraints: WeightRatioConstraints) -> Dict[int, float]:
        """Compute the full ARSP for the given ratio range."""
        start, end = self.angular_range(constraints)
        result = empty_result(self.dataset)
        instances = self.dataset.instances
        num_objects = self.dataset.num_objects

        for position, instance in enumerate(instances):
            angles = self._angles[position]
            sigma: Dict[int, float] = {}
            if len(angles):
                lo = bisect.bisect_left(angles, start - SCORE_ATOL)
                hi = bisect.bisect_right(angles, end + SCORE_ATOL)
                objects = self._angle_objects[position]
                probs = self._angle_probs[position]
                for k in range(lo, hi):
                    obj = int(objects[k])
                    sigma[obj] = sigma.get(obj, 0.0) + float(probs[k])
            for obj, prob in self._coincident[position]:
                sigma[obj] = sigma.get(obj, 0.0) + prob

            probability = instance.probability
            for obj, mass in sigma.items():
                if mass >= 1.0 - PROB_ATOL:
                    probability = 0.0
                    break
                probability *= 1.0 - mass
            result[instance.instance_id] = probability

        return finalize_result(result)


def dual_ms_arsp(dataset: UncertainDataset,
                 constraints: WeightRatioConstraints) -> Dict[int, float]:
    """One-shot DUAL-MS: preprocess and answer a single ratio range."""
    if not isinstance(constraints, WeightRatioConstraints):
        raise TypeError("DUAL-MS requires WeightRatioConstraints")
    return Dual2DIndex(dataset).query(constraints)
