"""DUAL-MS: the specialised two-dimensional dual algorithm (Section V-D).

For ``d = 2`` the two half-space queries of the DUAL reduction merge into a
single *angular range* around the target instance: representing every other
instance ``s`` by the angle of ``s - t`` (measured counter-clockwise from the
positive x-axis), the instances F-dominating ``t`` under the ratio range
``[l, h]`` are exactly those with angle in ``[π - arctan(l), 2π - arctan(h)]``
plus any instance coincident with ``t``.

The preprocessing therefore stores, for every instance, the other objects'
instances sorted by that angle; a query binary-searches the two angular
bounds and folds the per-object probability masses inside the range into the
product of equation (3).  As in the paper, preprocessing is heavy
(``O(n^2 log n)`` time and ``O(n^2)`` space) while queries are fast, which is
the trade-off Figure 7 illustrates.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Tuple

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from .base import empty_result, finalize_result


class Dual2DIndex:
    """Preprocessed angular structure for 2-D weight ratio ARSP queries."""

    def __init__(self, dataset: UncertainDataset):
        if dataset.dimension != 2:
            raise ValueError("DUAL-MS is specialised for 2-dimensional data")
        self.dataset = dataset
        # For every instance: sorted angles, matching object ids and
        # probabilities, and the list of coincident instances.
        self._angles: List[np.ndarray] = []
        self._angle_objects: List[np.ndarray] = []
        self._angle_probs: List[np.ndarray] = []
        self._coincident: List[List[Tuple[int, float]]] = []
        self._preprocess()

    # ------------------------------------------------------------------
    def _preprocess(self) -> None:
        points = self.dataset.instance_matrix()
        probabilities = self.dataset.probability_vector()
        object_ids = self.dataset.object_ids()
        n = len(points)
        for i in range(n):
            # One broadcast pass per pivot: deltas, coincidence detection and
            # angles for every other-object instance at once.
            other = object_ids != object_ids[i]
            dx = points[:, 0] - points[i, 0]
            dy = points[:, 1] - points[i, 1]
            coincident_mask = other & ((np.abs(dx) <= SCORE_ATOL)
                                       & (np.abs(dy) <= SCORE_ATOL))
            angular_mask = other & ~coincident_mask
            angles = np.arctan2(dy[angular_mask], dx[angular_mask])
            angles = np.where(angles < 0.0, angles + 2.0 * math.pi, angles)
            order = np.argsort(angles, kind="stable")
            self._angles.append(angles[order])
            self._angle_objects.append(
                np.asarray(object_ids[angular_mask], dtype=int)[order])
            self._angle_probs.append(
                np.asarray(probabilities[angular_mask], dtype=float)[order])
            self._coincident.append(
                [(int(obj), float(prob))
                 for obj, prob in zip(object_ids[coincident_mask],
                                      probabilities[coincident_mask])])

    # ------------------------------------------------------------------
    @staticmethod
    def angular_range(constraints: WeightRatioConstraints
                      ) -> Tuple[float, float]:
        """The dominating angular range ``[π - arctan(l), 2π - arctan(h)]``."""
        if constraints.dimension != 2:
            raise ValueError("DUAL-MS requires a single ratio range (d = 2)")
        low, high = constraints.ranges[0]
        return (math.pi - math.atan(low), 2.0 * math.pi - math.atan(high))

    def query(self, constraints: WeightRatioConstraints) -> Dict[int, float]:
        """Compute the full ARSP for the given ratio range."""
        start, end = self.angular_range(constraints)
        result = empty_result(self.dataset)
        instances = self.dataset.instances
        num_objects = self.dataset.num_objects

        for position, instance in enumerate(instances):
            angles = self._angles[position]
            sigma = np.zeros(num_objects)
            if len(angles):
                lo = bisect.bisect_left(angles, start - SCORE_ATOL)
                hi = bisect.bisect_right(angles, end + SCORE_ATOL)
                np.add.at(sigma, self._angle_objects[position][lo:hi],
                          self._angle_probs[position][lo:hi])
            for obj, prob in self._coincident[position]:
                sigma[obj] += prob

            if np.any(sigma >= 1.0 - PROB_ATOL):
                probability = 0.0
            else:
                contributing = sigma > 0.0
                probability = (instance.probability
                               * float(np.prod(1.0 - sigma[contributing])))
            result[instance.instance_id] = probability

        return finalize_result(result)


def dual_ms_arsp(dataset: UncertainDataset,
                 constraints: WeightRatioConstraints) -> Dict[int, float]:
    """One-shot DUAL-MS: preprocess and answer a single ratio range."""
    if not isinstance(constraints, WeightRatioConstraints):
        raise TypeError("DUAL-MS requires WeightRatioConstraints")
    return Dual2DIndex(dataset).query(constraints)
