"""Registry mapping algorithm names to implementations.

The experiment harness, the benchmarks and the public ``compute_arsp`` API
all refer to algorithms by the short names used in the paper's figures
(ENUM, LOOP, KDTT, KDTT+, QDTT+, B&B, DUAL, DUAL-MS).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .branch_and_bound import branch_and_bound_arsp
from .dual import dual_arsp
from .dual2d import dual_ms_arsp
from .enum_baseline import enum_arsp
from .kdtree_traversal import kdtree_traversal_arsp, kdtt
from .loop_baseline import loop_arsp
from .quadtree_traversal import quadtree_traversal_arsp

#: Canonical name -> callable(dataset, constraints, **options).
ALGORITHMS: Dict[str, Callable] = {
    "enum": enum_arsp,
    "loop": loop_arsp,
    "kdtt": kdtt,
    "kdtt+": kdtree_traversal_arsp,
    "qdtt+": quadtree_traversal_arsp,
    "bnb": branch_and_bound_arsp,
    "dual": dual_arsp,
    "dual-ms": dual_ms_arsp,
}

#: Algorithms ported onto the execution backend: they accept the uniform
#: ``workers=`` / ``backend=`` options and shard the target axis
#: (docs/ARCHITECTURE.md, "Execution backends").  ENUM and DUAL-MS remain
#: serial-only.
PARALLEL_ALGORITHMS = frozenset(
    {"loop", "kdtt", "kdtt+", "qdtt+", "bnb", "dual"})

#: Accepted aliases (case-insensitive, punctuation-tolerant).
_ALIASES: Dict[str, str] = {
    "enum": "enum",
    "loop": "loop",
    "kdtt": "kdtt",
    "kdtt+": "kdtt+",
    "kdttplus": "kdtt+",
    "qdtt+": "qdtt+",
    "qdttplus": "qdtt+",
    "quadtree": "qdtt+",
    "bnb": "bnb",
    "b&b": "bnb",
    "branch-and-bound": "bnb",
    "dual": "dual",
    "dual-ms": "dual-ms",
    "dualms": "dual-ms",
}


def canonical_name(name: str) -> str:
    """Canonical registry name for ``name`` (case- and alias-tolerant)."""
    key = name.strip().lower()
    canonical = _ALIASES.get(key, key)
    if canonical not in ALGORITHMS:
        raise KeyError("unknown ARSP algorithm %r; available: %s"
                       % (name, ", ".join(sorted(ALGORITHMS))))
    return canonical


def get_algorithm(name: str) -> Callable:
    """Look up an algorithm by (case-insensitive) name or alias."""
    return ALGORITHMS[canonical_name(name)]


def list_algorithms() -> List[str]:
    """Canonical names of all registered algorithms."""
    return sorted(ALGORITHMS)


def supports_workers(name: str) -> bool:
    """Whether the named algorithm accepts the ``workers=`` option."""
    return canonical_name(name) in PARALLEL_ALGORITHMS
