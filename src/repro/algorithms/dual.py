"""DUAL: half-space based ARSP for weight ratio constraints (Section IV-A).

Under weight ratio constraints the F-dominance test collapses to the O(d)
condition of Theorem 5, and the instances F-dominating a target ``t`` form a
union of ``2^{d-1}`` half-spaces (one per orthant around ``t``).  The paper
reduces the per-instance work to half-space *reporting* queries answered with
a theoretical point-location structure over hyperplane arrangements
(Theorem 6); as discussed in DESIGN.md the practical substitute used here is
a per-object aggregated kd-tree queried with the half-space predicate:

* the margin function ``g(s) = min_{r ∈ R} sum_i r[i](t[i]-s[i]) + (t[d]-s[d])``
  is monotonically decreasing in every coordinate of ``s``,
* therefore a kd-tree node with box ``[lo, hi]`` contains only dominators of
  ``t`` when ``g(hi) >= 0`` and no dominator when ``g(lo) < 0``,

which gives exactly the box classification the kd-tree aggregate queries
need.  The query consequently prunes whole subtrees on both sides of the
half-space boundary, mirroring the role of the point-location structure
while remaining practical for any ``d``.

The query path is batched end to end (see PERFORMANCE.md): instead of one
tree walk per (target, object) pair, a full ARSP query classifies the root
boxes of *all* per-object trees against a whole chunk of targets with one
corner-margin matrix (:func:`repro.core.kernels.weight_ratio_margins_matrix`),
resolves every straddling leaf root with a single row-aligned margin batch,
descends only into the rare straddling internal trees, and folds the σ
matrix into rskyline probabilities with array arithmetic.  Zero-probability
target instances skip the index entirely.

Preprocessing is bulk too: the per-object tree forest comes from one
:func:`repro.index.kdtree.build_forest` pass over the flat instance matrix,
and repeated queries reuse per-constraint caches of the root-corner margin
terms and of full results (see :class:`DualIndex`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cache import bounded_insert, bounded_lookup
from ..core.dataset import UncertainDataset
from ..core.kernels import (MarginTerms, classify_boxes_by_margin,
                            margin_matrix_terms, weight_ratio_margins,
                            weight_ratio_margins_matrix_from_terms,
                            weight_ratio_margins_rows)
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from ..core.profiling import phase
from ..index.kdtree import KDTree, build_forest
from .base import (ExecutionPolicy, empty_result, finalize_result,
                   shard_covers_all, sharded_arsp)

#: Upper bound on the number of (target, tree-root, dimension) floats held
#: in memory at once — the margin-matrix kernel's largest intermediate is
#: the (T, K, d-1) absolute-difference tensor.  The query chunks its target
#: axis accordingly, so memory stays bounded while every chunk still
#: vectorizes across all objects.
_CHUNK_BUDGET = 4_000_000

#: Bounds on the per-constraint caches of :class:`DualIndex`.  Results are
#: O(num_instances) dicts, so only a handful are retained; margin terms are
#: O(num_objects) arrays and afford a larger window.  Both evict LRU via
#: the shared helpers in :mod:`repro.core.cache` — reads and re-inserts
#: refresh recency, so a hot constraint survives a long sweep.
_RESULT_CACHE_LIMIT = 8
_TERM_CACHE_LIMIT = 64


class DualIndex:
    """Preprocessing state of the DUAL algorithm.

    One aggregated kd-tree per uncertain object, over the raw instance
    coordinates, weighted by the existence probabilities.  The whole forest
    is built with one bulk pass (:func:`repro.index.kdtree.build_forest`)
    over the flat instance matrix instead of per-object Python loops.  The
    index is constraint-independent: the same preprocessing serves any
    weight ratio constraint issued later, which is the preprocessing/query
    split the paper's Section IV is about.  Root boxes, point blocks and
    weights of all trees are additionally stacked into contiguous arrays so
    a query can classify every object's tree in batched kernel calls.

    Repeated queries are served from two per-constraint caches keyed by
    ``constraints.ranges``: the target-independent root-corner margin terms
    (:func:`repro.core.kernels.margin_matrix_terms`) are computed once per
    constraint box and reused across target chunks and queries, and a full
    repeat of an already-answered constraint box returns the memoised
    result without touching the index (``query_cache_hits`` counts these).
    Both caches are LRU-bounded (:mod:`repro.core.cache`) so long constraint
    sweeps stay within a fixed memory footprint while hot constraints keep
    their entries alive.
    """

    def __init__(self, dataset: UncertainDataset, leaf_size: int = 16):
        self.dataset = dataset
        self.leaf_size = int(leaf_size)
        # The flat instance views are constraint-independent; materialise
        # them once here and share them between the forest build and every
        # query instead of re-walking the Python instance objects per query.
        self._load_flat_views(dataset)
        self.trees: List[KDTree] = build_forest(
            self._targets, self._target_objects, dataset.num_objects,
            weights=self._target_probabilities, leaf_size=self.leaf_size)
        self._build_batch_views()
        self._root_term_cache: Dict[tuple, MarginTerms] = {}
        self._result_cache: Dict[tuple, Dict[int, float]] = {}
        self.query_cache_hits = 0

    def _load_flat_views(self, dataset: UncertainDataset) -> None:
        self._targets = dataset.instance_matrix()
        self._target_objects = dataset.object_ids()
        self._target_probabilities = dataset.probability_vector()
        self._target_instance_ids = np.asarray(
            [instance.instance_id for instance in dataset.instances],
            dtype=int)

    def apply_delta(self, new_dataset: UncertainDataset,
                    unchanged: np.ndarray) -> None:
        """Delta-aware index update: rebuild only the changed trees.

        ``unchanged`` is the per-new-object translation of
        :meth:`repro.core.dataset.DatasetDelta.mappings`: entry ``j >= 0``
        names the old object whose instance list new object ``j`` carries
        unmodified — its kd-tree is reused verbatim (``build_forest`` is a
        deterministic per-object function of the instance segment, so the
        reused tree is identical to a fresh build).  Entries of ``-1``
        (inserted or updated objects) get their trees rebuilt from the new
        dataset.  The batch views are restacked and the per-constraint
        caches invalidated, after which every query is bit-identical to a
        query against ``DualIndex(new_dataset)`` built from scratch — the
        update-vs-rebuild delta contract of docs/ARCHITECTURE.md.
        """
        unchanged = np.asarray(unchanged, dtype=int)
        if unchanged.shape != (new_dataset.num_objects,):
            raise ValueError("unchanged mapping must have one entry per "
                             "object of the new dataset")
        old_trees = self.trees
        old_count = len(old_trees)
        self.dataset = new_dataset
        self._load_flat_views(new_dataset)
        changed = np.flatnonzero(unchanged < 0)
        rebuilt: List[KDTree] = []
        if len(changed):
            mask = np.isin(self._target_objects, changed)
            dense_ids = np.searchsorted(changed, self._target_objects[mask])
            rebuilt = build_forest(
                self._targets[mask], dense_ids, len(changed),
                weights=self._target_probabilities[mask],
                leaf_size=self.leaf_size)
        position = {int(j): k for k, j in enumerate(changed)}
        trees: List[KDTree] = []
        for j in range(new_dataset.num_objects):
            old = int(unchanged[j])
            if old >= 0:
                if not 0 <= old < old_count:
                    raise ValueError("unchanged[%d] names old object %d "
                                     "out of range [0, %d)"
                                     % (j, old, old_count))
                trees.append(old_trees[old])
            else:
                trees.append(rebuilt[position[j]])
        self.trees = trees
        self._build_batch_views()
        self._root_term_cache.clear()
        self._result_cache.clear()

    def _build_batch_views(self) -> None:
        """Stack per-tree state into the arrays the batched query consumes."""
        dimension = self.dataset.dimension
        rooted = [j for j, tree in enumerate(self.trees)
                  if tree.root is not None]
        self._root_objects = np.asarray(rooted, dtype=int)
        if rooted:
            self._root_lo = np.stack([self.trees[j].root.lo for j in rooted])
            self._root_hi = np.stack([self.trees[j].root.hi for j in rooted])
            self._root_weights = np.asarray(
                [self.trees[j].root.weight_sum for j in rooted])
            self._root_is_leaf = np.asarray(
                [self.trees[j].root.is_leaf for j in rooted])
        else:
            self._root_lo = np.empty((0, dimension))
            self._root_hi = np.empty((0, dimension))
            self._root_weights = np.empty(0)
            self._root_is_leaf = np.empty(0, dtype=bool)
        # Flat views over every instance point, ordered tree by tree, with
        # the start offset and size of each tree's block.
        sizes = [len(tree) for tree in self.trees]
        self._tree_sizes = np.asarray(sizes, dtype=int)
        self._tree_offsets = np.concatenate(
            [[0], np.cumsum(sizes)[:-1]]).astype(int)
        if self.trees:
            self._points = np.concatenate([tree.points for tree in self.trees])
            self._point_weights = np.concatenate(
                [tree.weights for tree in self.trees])
        else:
            self._points = np.empty((0, dimension))
            self._point_weights = np.empty(0)
        self._point_objects = np.repeat(
            np.arange(len(self.trees)), self._tree_sizes)

    # ------------------------------------------------------------------
    def dominating_mass(self, target: np.ndarray, object_id: int,
                        constraints: WeightRatioConstraints) -> float:
        """Probability mass of ``object_id`` that F-dominates ``target``."""
        return self._tree_mass(np.asarray(target, dtype=float), object_id,
                               constraints.lows, constraints.highs)

    def _tree_mass(self, target: np.ndarray, object_id: int,
                   lows: np.ndarray, highs: np.ndarray) -> float:
        """Single-tree frontier walk with batched corner classification."""

        def batch_classifier(los: np.ndarray, his: np.ndarray) -> np.ndarray:
            # g is monotone decreasing in every coordinate of the candidate
            # dominator, so the extremes over each box sit at its corners.
            hi_margins = weight_ratio_margins(target, his, lows, highs)
            lo_margins = weight_ratio_margins(target, los, lows, highs)
            return classify_boxes_by_margin(hi_margins, lo_margins)

        def batch_predicate(points: np.ndarray) -> np.ndarray:
            return (weight_ratio_margins(target, points, lows, highs)
                    >= -SCORE_ATOL)

        return self.trees[object_id].aggregate_frontier(batch_classifier,
                                                        batch_predicate)

    def _root_terms(self, constraints: WeightRatioConstraints) -> MarginTerms:
        """Cached target-independent margin terms of the root lo corners.

        Keyed by ``constraints.ranges`` — the class's canonical hashable
        identity — and bounded by LRU eviction so a long constraint sweep
        cannot grow the cache without limit.
        """
        key = constraints.ranges
        terms = bounded_lookup(self._root_term_cache, key)
        if terms is None:
            terms = margin_matrix_terms(self._root_lo, constraints.lows,
                                        constraints.highs)
            bounded_insert(self._root_term_cache, key, terms,
                           _TERM_CACHE_LIMIT)
        return terms

    # ------------------------------------------------------------------
    def _sigma_chunk(self, targets: np.ndarray, lows: np.ndarray,
                     highs: np.ndarray,
                     root_lo_terms: MarginTerms) -> np.ndarray:
        """σ matrix for a chunk of targets: ``out[t, j]`` is the probability
        mass of object ``j`` F-dominating ``targets[t]``."""
        num_targets = targets.shape[0]
        num_objects = self.dataset.num_objects
        sigma = np.zeros((num_targets, num_objects))
        if not len(self._root_objects):
            return sigma

        # Stage 1: the lo corner carries each box's *maximum* margin, so one
        # margin matrix rules out every (target, tree root) pair whose box
        # holds no dominator at all — typically the bulk of the pairs.  The
        # per-corner terms are constraint-cached and shared across chunks.
        lo_margins = weight_ratio_margins_matrix_from_terms(targets,
                                                            root_lo_terms)
        live_rows, live_cols = np.nonzero(lo_margins >= -SCORE_ATOL)
        if not len(live_rows):
            return sigma

        # Stage 2: the hi corner (minimum margin) separates fully-dominating
        # boxes from straddling ones, evaluated only for the live pairs.
        hi_margins = weight_ratio_margins_rows(
            targets[live_rows], self._root_hi[live_cols], lows, highs)
        inside = hi_margins >= -SCORE_ATOL
        if np.any(inside):
            # (target, root) pairs are unique, so the flat indices are too.
            flat = (live_rows[inside] * num_objects
                    + self._root_objects[live_cols[inside]])
            sigma.ravel()[flat] += self._root_weights[live_cols[inside]]

        target_rows = live_rows[~inside]
        root_cols = live_cols[~inside]
        if not len(target_rows):
            return sigma

        # Straddling single-leaf trees: resolve all their points for all
        # affected targets in one row-aligned margin batch.
        leaf_pair = self._root_is_leaf[root_cols]
        if np.any(leaf_pair):
            pair_targets = target_rows[leaf_pair]
            pair_objects = self._root_objects[root_cols[leaf_pair]]
            lengths = self._tree_sizes[pair_objects]
            starts = self._tree_offsets[pair_objects]
            # Expand [start, start + length) for every pair into one flat
            # index vector.
            ends = np.cumsum(lengths)
            flat_offsets = np.arange(ends[-1]) - np.repeat(
                ends - lengths, lengths)
            point_rows = np.repeat(starts, lengths) + flat_offsets
            margin_rows = np.repeat(pair_targets, lengths)
            margins = weight_ratio_margins_rows(
                targets[margin_rows], self._points[point_rows], lows, highs)
            mask = margins >= -SCORE_ATOL
            if np.any(mask):
                flat_sigma = (margin_rows[mask]
                              * self.dataset.num_objects
                              + self._point_objects[point_rows[mask]])
                np.add.at(sigma.ravel(), flat_sigma,
                          self._point_weights[point_rows[mask]])

        # Straddling multi-node trees are rare (the half-space boundary has
        # to cross the root box); walk each one with the batched frontier.
        deep_pair = ~leaf_pair
        for target_row, root_col in zip(target_rows[deep_pair].tolist(),
                                        root_cols[deep_pair].tolist()):
            object_id = int(self._root_objects[root_col])
            sigma[target_row, object_id] += self._tree_mass(
                targets[target_row], object_id, lows, highs)
        return sigma

    # ------------------------------------------------------------------
    def sigma_targets(self, constraints: WeightRatioConstraints,
                      targets: np.ndarray) -> np.ndarray:
        """Raw σ matrix of arbitrary target coordinates against the forest.

        ``targets`` is ``(T, d)``; the return value is the
        ``(T, num_objects)`` matrix :meth:`query` folds into rskyline
        probabilities, *before* the own-column zeroing (the targets here
        need not be dataset instances, so there is no "own" object).  Every
        entry is accumulated per (target, tree) pair in tree point order —
        independent of how the target axis is chunked — so the entries are
        bit-identical to the σ values a full query computes for the same
        (coordinate, tree-content) pairs.  This is the primitive the
        incremental-maintenance engine
        (:mod:`repro.algorithms.incremental`) uses to recompute only the
        σ rows and columns a delta invalidated.
        """
        if constraints.dimension != self.dataset.dimension:
            raise ValueError(
                "constraints are defined for dimension %d but the dataset "
                "has dimension %d"
                % (constraints.dimension, self.dataset.dimension))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        sigma = np.zeros((targets.shape[0], self.dataset.num_objects))
        if not targets.shape[0] or not self.dataset.instances:
            return sigma
        root_lo_terms = self._root_terms(constraints)
        lows = constraints.lows
        highs = constraints.highs
        entries_per_target = (max(1, len(self._root_objects))
                              * max(1, self.dataset.dimension - 1))
        chunk = max(1, _CHUNK_BUDGET // entries_per_target)
        for begin in range(0, targets.shape[0], chunk):
            block = targets[begin:begin + chunk]
            sigma[begin:begin + block.shape[0]] = self._sigma_chunk(
                block, lows, highs, root_lo_terms)
        return sigma

    # ------------------------------------------------------------------
    def query(self, constraints: WeightRatioConstraints,
              target_range: Optional[Tuple[int, int]] = None
              ) -> Dict[int, float]:
        """Compute the ARSP for the given weight ratio constraints.

        ``target_range`` restricts the *targets* to the instances owned by
        objects in ``[lo, hi)`` (the execution backend's shard contract);
        the candidate forest always spans every object.  Each target's σ
        row is computed pair by pair with per-target accumulation order,
        so restricting the target set leaves the surviving targets'
        results bit-identical to a full query.
        """
        if constraints.dimension != self.dataset.dimension:
            raise ValueError(
                "constraints are defined for dimension %d but the dataset "
                "has dimension %d"
                % (constraints.dimension, self.dataset.dimension))
        key = (constraints.ranges, target_range)
        cached = bounded_lookup(self._result_cache, key)
        if cached is not None:
            self.query_cache_hits += 1
            return dict(cached)
        lows = constraints.lows
        highs = constraints.highs
        if target_range is None:
            result = empty_result(self.dataset)
            target_mask = None
        else:
            lo, hi = target_range
            target_mask = ((self._target_objects >= lo)
                           & (self._target_objects < hi))
            result = {int(instance_id): 0.0 for instance_id
                      in self._target_instance_ids[target_mask]}
        if not self.dataset.instances:
            return finalize_result(result)
        root_lo_terms = self._root_terms(constraints)
        targets = self._targets
        probabilities = self._target_probabilities
        object_ids = self._target_objects
        instance_ids = self._target_instance_ids

        # Zero-probability instances never touch the index: their rskyline
        # probability is zero regardless of the constraints.
        live_mask = probabilities != 0.0
        if target_mask is not None:
            live_mask &= target_mask
        live = np.flatnonzero(live_mask)
        entries_per_target = (max(1, len(self._root_objects))
                              * max(1, self.dataset.dimension - 1))
        chunk = max(1, _CHUNK_BUDGET // entries_per_target)
        for begin in range(0, len(live), chunk):
            rows = live[begin:begin + chunk]
            sigma = self._sigma_chunk(targets[rows], lows, highs,
                                      root_lo_terms)
            # The owning object's mass never counts against its own
            # instances; zeroing its column makes the factor exactly 1.
            sigma[np.arange(len(rows)), object_ids[rows]] = 0.0
            saturated = np.any(sigma >= 1.0 - PROB_ATOL, axis=1)
            values = np.where(saturated, 0.0,
                              probabilities[rows]
                              * np.prod(1.0 - sigma, axis=1))
            for instance_id, value in zip(instance_ids[rows].tolist(),
                                          values.tolist()):
                result[instance_id] = value
        final = finalize_result(result)
        bounded_insert(self._result_cache, key, final, _RESULT_CACHE_LIMIT)
        return dict(final)


def _dual_shard(dataset: UncertainDataset,
                constraints: WeightRatioConstraints,
                lo: int, hi: int, leaf_size: int = 16) -> Dict[int, float]:
    """DUAL results for the instances owned by objects in ``[lo, hi)``.

    Every shard builds the full constraint-independent forest (the
    candidate dominators span all objects) and restricts only the query's
    target axis; the repeated index build is the per-worker overhead the
    sharded mode pays.  The ``phase`` annotations are captured only when
    the shard runs in-process (``workers=1`` or the serial backend) —
    phase collection is process-local, so process-sharded bench cells
    record empty ``phases_s`` (docs/ARCHITECTURE.md, "Execution
    backends").
    """
    with phase("index"):
        index = DualIndex(dataset, leaf_size=leaf_size)
    with phase("query"):
        target_range = (None if shard_covers_all(dataset, lo, hi)
                        else (lo, hi))
        return index.query(constraints, target_range=target_range)


def dual_arsp(dataset: UncertainDataset,
              constraints: WeightRatioConstraints,
              leaf_size: int = 16,
              workers: Optional[int] = None,
              backend: Optional[str] = None,
              policy: Optional[ExecutionPolicy] = None) -> Dict[int, float]:
    """One-shot DUAL: build the index and answer a single constraint set."""
    if not isinstance(constraints, WeightRatioConstraints):
        raise TypeError("the DUAL algorithm requires WeightRatioConstraints; "
                        "use the tree-traversal or branch-and-bound "
                        "algorithms for general linear constraints")
    return sharded_arsp(_dual_shard, dataset, constraints,
                        workers=workers, backend=backend,
                        options={"leaf_size": leaf_size}, policy=policy)
