"""DUAL: half-space based ARSP for weight ratio constraints (Section IV-A).

Under weight ratio constraints the F-dominance test collapses to the O(d)
condition of Theorem 5, and the instances F-dominating a target ``t`` form a
union of ``2^{d-1}`` half-spaces (one per orthant around ``t``).  The paper
reduces the per-instance work to half-space *reporting* queries answered with
a theoretical point-location structure over hyperplane arrangements
(Theorem 6); as discussed in DESIGN.md the practical substitute used here is
a per-object aggregated kd-tree queried with the half-space predicate:

* the margin function ``g(s) = min_{r ∈ R} sum_i r[i](t[i]-s[i]) + (t[d]-s[d])``
  is monotonically decreasing in every coordinate of ``s``,
* therefore a kd-tree node with box ``[lo, hi]`` contains only dominators of
  ``t`` when ``g(hi) >= 0`` and no dominator when ``g(lo) < 0``,

which gives exactly the ``classifier`` needed by
:meth:`repro.index.kdtree.KDTree.aggregate`.  The query consequently prunes
whole subtrees on both sides of the half-space boundary, mirroring the role
of the point-location structure while remaining practical for any ``d``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from ..index.kdtree import INSIDE, OUTSIDE, PARTIAL, KDTree
from .base import empty_result, finalize_result


class DualIndex:
    """Preprocessing state of the DUAL algorithm.

    One aggregated kd-tree per uncertain object, over the raw instance
    coordinates, weighted by the existence probabilities.  The index is
    constraint-independent: the same preprocessing serves any weight ratio
    constraint issued later, which is the preprocessing/query split the
    paper's Section IV is about.
    """

    def __init__(self, dataset: UncertainDataset, leaf_size: int = 16):
        self.dataset = dataset
        self.trees: List[KDTree] = []
        for obj in dataset.objects:
            points = np.asarray([inst.values for inst in obj], dtype=float)
            weights = np.asarray([inst.probability for inst in obj],
                                 dtype=float)
            self.trees.append(KDTree(points, weights=weights,
                                     leaf_size=leaf_size))

    # ------------------------------------------------------------------
    def dominating_mass(self, target: np.ndarray, object_id: int,
                        constraints: WeightRatioConstraints) -> float:
        """Probability mass of ``object_id`` that F-dominates ``target``."""
        lows = constraints.lows
        highs = constraints.highs
        d = constraints.dimension
        target = np.asarray(target, dtype=float)

        def margin(point: np.ndarray) -> float:
            diffs = target[:d - 1] - point[:d - 1]
            coeffs = np.where(diffs > 0.0, lows, highs)
            return float(np.dot(coeffs, diffs) + target[d - 1] - point[d - 1])

        def classifier(lo: np.ndarray, hi: np.ndarray) -> int:
            # g is monotone decreasing in every coordinate of the candidate
            # dominator, so the extremes over the box sit at its corners.
            if margin(hi) >= -SCORE_ATOL:
                return INSIDE
            if margin(lo) < -SCORE_ATOL:
                return OUTSIDE
            return PARTIAL

        def predicate(point: np.ndarray) -> bool:
            return margin(point) >= -SCORE_ATOL

        return self.trees[object_id].aggregate(classifier, predicate)

    # ------------------------------------------------------------------
    def query(self, constraints: WeightRatioConstraints) -> Dict[int, float]:
        """Compute the full ARSP for the given weight ratio constraints."""
        if constraints.dimension != self.dataset.dimension:
            raise ValueError(
                "constraints are defined for dimension %d but the dataset "
                "has dimension %d"
                % (constraints.dimension, self.dataset.dimension))
        result = empty_result(self.dataset)
        for instance in self.dataset.instances:
            probability = instance.probability
            target = instance.as_array()
            for other in range(self.dataset.num_objects):
                if other == instance.object_id or probability == 0.0:
                    continue
                sigma = self.dominating_mass(target, other, constraints)
                if sigma >= 1.0 - PROB_ATOL:
                    probability = 0.0
                    break
                probability *= 1.0 - sigma
            result[instance.instance_id] = probability
        return finalize_result(result)


def dual_arsp(dataset: UncertainDataset,
              constraints: WeightRatioConstraints,
              leaf_size: int = 16) -> Dict[int, float]:
    """One-shot DUAL: build the index and answer a single constraint set."""
    if not isinstance(constraints, WeightRatioConstraints):
        raise TypeError("the DUAL algorithm requires WeightRatioConstraints; "
                        "use the tree-traversal or branch-and-bound "
                        "algorithms for general linear constraints")
    return DualIndex(dataset, leaf_size=leaf_size).query(constraints)
