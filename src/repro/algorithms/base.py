"""Shared plumbing for the ARSP algorithms.

The central concept is the *score space*: Theorem 2 reduces F-dominance under
linear constraints to classical dominance between the vectors of scores under
the vertices of the preference region.  :class:`ScoreSpace` performs that
mapping once and exposes the arrays all index-based algorithms work on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.arsp import arsp_size, object_rskyline_probabilities
from ..core.backend import (AlgorithmResult, ExecutionPolicy,
                            ExecutionReport, run_sharded)
from ..core.dataset import UncertainDataset
from ..core.numeric import PROB_ATOL, SCORE_ATOL, clamp_probability
from ..core.preference import PreferenceRegion, resolve_preference_region


@dataclass
class ScoreSpace:
    """The dataset mapped into the ``d'``-dimensional score space.

    Attributes
    ----------
    dataset:
        The original uncertain dataset.
    region:
        The resolved preference region (its vertices define the mapping).
    scores:
        ``(n, d')`` array: row ``k`` is ``S_V(t_k)`` for the ``k``-th instance
        in ``dataset.instances`` order.
    probabilities:
        ``(n,)`` array of existence probabilities in the same order.
    object_ids:
        ``(n,)`` array with the owning object of every instance.
    instance_ids:
        ``(n,)`` array with the global instance ids (result dictionary keys).
    object_totals:
        ``(m,)`` array with the total probability mass of every object.
    """

    dataset: UncertainDataset
    region: PreferenceRegion
    scores: np.ndarray
    probabilities: np.ndarray
    object_ids: np.ndarray
    instance_ids: np.ndarray
    object_totals: np.ndarray

    @property
    def num_instances(self) -> int:
        return self.scores.shape[0]

    @property
    def num_objects(self) -> int:
        return self.object_totals.shape[0]

    @property
    def mapped_dimension(self) -> int:
        return self.scores.shape[1]


def build_score_space(dataset: UncertainDataset, constraints) -> ScoreSpace:
    """Resolve the constraints and map every instance into score space."""
    region = resolve_preference_region(constraints)
    if region.dimension != dataset.dimension:
        raise ValueError(
            "constraints are defined for dimension %d but the dataset has "
            "dimension %d" % (region.dimension, dataset.dimension))
    points = dataset.instance_matrix()
    scores = region.score_matrix(points)
    object_totals = np.zeros(dataset.num_objects)
    for obj in dataset.objects:
        object_totals[obj.object_id] = obj.total_probability
    return ScoreSpace(
        dataset=dataset,
        region=region,
        scores=scores,
        probabilities=dataset.probability_vector(),
        object_ids=dataset.object_ids(),
        instance_ids=np.asarray(
            [inst.instance_id for inst in dataset.instances], dtype=int),
        object_totals=object_totals,
    )


def empty_result(dataset: UncertainDataset) -> Dict[int, float]:
    """Result dictionary with every instance initialised to probability 0."""
    return {instance.instance_id: 0.0 for instance in dataset.instances}


def shard_covers_all(dataset: UncertainDataset, lo: int, hi: int) -> bool:
    """True when a shard's ``[lo, hi)`` range is the whole object axis.

    Shard functions with a cheaper unmasked full-range path (the
    traversal family's subtree skipping, DUAL's target restriction) use
    this to keep the serial ``workers=1`` hot path free of per-target
    bookkeeping; defined once here so every ported algorithm applies the
    same sentinel.
    """
    return lo == 0 and hi == dataset.num_objects


def sharded_arsp(shard_fn: Callable, dataset: UncertainDataset, constraints,
                 workers: Optional[int] = None,
                 backend: Optional[str] = None,
                 options: Optional[Dict[str, object]] = None,
                 policy: Optional[ExecutionPolicy] = None
                 ) -> AlgorithmResult:
    """Run an ARSP shard function over the object axis via the backend layer.

    This is the uniform entry point behind every ported algorithm's
    ``workers=`` parameter (see :mod:`repro.core.backend`): the object axis
    ``[0, m)`` is cut into ``workers`` contiguous shards,
    ``shard_fn(dataset, constraints, lo, hi, **options)`` computes the
    results for the instances owned by objects in ``[lo, hi)``, and the
    shard results are merged into a full result dictionary whose key order
    is the canonical instance order regardless of worker count.  The
    returned :class:`AlgorithmResult` carries the run's
    :class:`ExecutionReport` (``.execution``); ``policy`` selects the
    supervision knobs (shard timeout, retry budget, terminal behaviour).
    """
    return run_sharded(shard_fn, dataset, constraints,
                       num_targets=dataset.num_objects,
                       workers=workers, backend=backend,
                       base_result=empty_result(dataset),
                       options=options, policy=policy)


def finalize_result(result: Dict[int, float]) -> Dict[int, float]:
    """Clamp accumulated float noise so probabilities stay within [0, 1]."""
    return {key: clamp_probability(value) for key, value in result.items()}


def result_arsp_size(result: Dict[int, float]) -> int:
    """Number of instances with non-zero rskyline probability.

    This is the "Size" series reported next to the running times in the
    paper's Figures 5 and 6.  Alias of :func:`repro.core.arsp.arsp_size`,
    which holds the canonical implementation.
    """
    return arsp_size(result)


def object_probabilities(dataset: UncertainDataset,
                         result: Dict[int, float]) -> Dict[int, float]:
    """Aggregate instance-level ARSP into per-object rskyline probabilities.

    Alias of :func:`repro.core.arsp.object_rskyline_probabilities`, which
    holds the canonical implementation.
    """
    return object_rskyline_probabilities(dataset, result)


def weak_dominates(a: np.ndarray, b: np.ndarray,
                   atol: float = SCORE_ATOL) -> bool:
    """Weak component-wise dominance used on score vectors."""
    return bool(np.all(a <= b + atol))


class SaturationTracker:
    """Incrementally maintained ``σ`` / ``β`` / ``χ`` state.

    This is the bookkeeping shared by the kd-tree and quadtree traversal
    algorithms: ``sigma[j]`` is the probability mass of object ``j`` known to
    dominate the current node's min corner, ``beta`` is the product of
    ``(1 - sigma[j])`` over non-saturated objects and ``chi`` counts the
    saturated objects.  Updates are undoable so the traversal can backtrack.
    """

    __slots__ = ("sigma", "beta", "saturated")

    def __init__(self, num_objects: int):
        self.sigma = np.zeros(num_objects)
        self.beta = 1.0
        self.saturated: set = set()

    @property
    def chi(self) -> int:
        return len(self.saturated)

    def add(self, object_id: int, probability: float) -> None:
        """Record that ``probability`` more mass of ``object_id`` dominates."""
        old = self.sigma[object_id]
        new = old + probability
        self.sigma[object_id] = new
        if object_id in self.saturated:
            return
        if new >= 1.0 - PROB_ATOL:
            self.saturated.add(object_id)
            # The factor (1 - old) leaves the product.
            if 1.0 - old > 0.0:
                self.beta /= (1.0 - old)
        else:
            self.beta *= (1.0 - new) / (1.0 - old)

    def remove(self, object_id: int, probability: float) -> None:
        """Undo a previous :meth:`add` with the same arguments.

        The arithmetic inversion is exact only up to float rounding — a
        remove leaves ulp-level residue in ``beta`` and ``sigma``.  The
        traversal engine therefore undoes whole blocks with
        :meth:`apply_block` / :meth:`restore` instead, whose snapshot
        restore is bit-exact; this scalar pair remains the readable
        specification (and the unit-tested reference) of what an undo
        means.
        """
        new = self.sigma[object_id]
        old = new - probability
        self.sigma[object_id] = old
        if object_id in self.saturated:
            if old >= 1.0 - PROB_ATOL:
                return
            self.saturated.remove(object_id)
            self.beta *= (1.0 - old)
        else:
            self.beta *= (1.0 - old) / (1.0 - new)

    def apply_block(self, object_ids, probabilities) -> tuple:
        """Apply a block of :meth:`add` updates; return an undo token.

        The token snapshots ``beta`` and the touched ``sigma`` entries, so
        :meth:`restore` rewinds the tracker *bit-exactly* — after a
        restore, the state is precisely what it was before the block, with
        none of the rounding residue an arithmetic :meth:`remove` leaves
        behind.  That makes the state at any tree node a pure function of
        the promotions along its root path, which is what lets the
        execution backend skip sibling subtrees without perturbing results
        (docs/ARCHITECTURE.md, "Execution backends").
        """
        old_beta = self.beta
        old_sigma = []
        newly_saturated = []
        for object_id, probability in zip(object_ids, probabilities):
            object_id = int(object_id)
            old = self.sigma[object_id]
            old_sigma.append((object_id, old))
            new = old + probability
            self.sigma[object_id] = new
            if object_id in self.saturated:
                continue
            if new >= 1.0 - PROB_ATOL:
                self.saturated.add(object_id)
                newly_saturated.append(object_id)
                # The factor (1 - old) leaves the product.
                if 1.0 - old > 0.0:
                    self.beta /= (1.0 - old)
            else:
                self.beta *= (1.0 - new) / (1.0 - old)
        return (old_beta, old_sigma, newly_saturated)

    def restore(self, token: tuple) -> None:
        """Bit-exact inverse of the :meth:`apply_block` that made the
        token (tokens must be restored in reverse application order)."""
        old_beta, old_sigma, newly_saturated = token
        # Reverse order puts the pre-block value back when one object was
        # promoted several times within the block.
        for object_id, old in reversed(old_sigma):
            self.sigma[object_id] = old
        for object_id in newly_saturated:
            self.saturated.discard(object_id)
        self.beta = old_beta

    def probabilities_for(self, object_ids: np.ndarray,
                          probabilities: np.ndarray) -> np.ndarray:
        """Batched :meth:`probability_for` over whole leaf blocks.

        Performs the same case analysis once for the block instead of per
        instance, so leaf emission in the traversal is a single array write.
        """
        object_ids = np.asarray(object_ids)
        probabilities = np.asarray(probabilities, dtype=float)
        if len(self.saturated) >= 2:
            return np.zeros(probabilities.shape)
        if len(self.saturated) == 1:
            saturated_object = next(iter(self.saturated))
            return np.where(object_ids == saturated_object,
                            probabilities * self.beta, 0.0)
        return probabilities * self.beta / (1.0 - self.sigma[object_ids])

    def probability_for(self, object_id: int, probability: float) -> float:
        """Rskyline probability of an instance of ``object_id`` with ``p``.

        Assumes ``sigma`` currently reflects exactly the mass dominating the
        instance.  The owning object's factor is excluded: if another object
        is saturated the probability is zero, otherwise it is
        ``p * beta / (1 - sigma[own])`` (or ``p * beta`` when the own object
        itself is saturated, because ``beta`` already excludes it).
        """
        others_saturated = self.saturated - {object_id}
        if others_saturated:
            return 0.0
        if object_id in self.saturated:
            return probability * self.beta
        own = self.sigma[object_id]
        return probability * self.beta / (1.0 - own)
