"""Incremental ARSP maintenance for DUAL under dataset deltas.

The scenario engine (:mod:`repro.experiments.scenarios`) feeds the system
time-stepped edit batches (:class:`repro.core.dataset.DatasetDelta`).
Recomputing every constraint from scratch after each step is the
*specification*; this module is the maintenance path that produces the
same answers by updating state instead:

* the warm :class:`~repro.algorithms.dual.DualIndex` is updated through
  its :meth:`~repro.algorithms.dual.DualIndex.apply_delta` (only changed
  objects' kd-trees are rebuilt);
* per already-answered constraint, the engine keeps the **raw σ matrix**
  (``sigma[t, j]`` = probability mass of object ``j`` F-dominating target
  ``t``, own-object mass included) and repairs only what the delta
  invalidated: σ entries of (unchanged target, unchanged object) pairs
  are copied over, new columns for inserted/updated objects come from a
  throwaway sub-index over just those objects, and new rows for
  inserted/updated objects' instances come from the updated full index.

**Byte-identity argument.**  Every σ entry is a per-(target, tree) value
accumulated in tree point order, independent of how the target axis is
chunked and of which other trees are in the forest
(:meth:`DualIndex.sigma_targets`); a kd-tree is a deterministic function
of its own object's instance segment, which ``apply_delta`` preserves for
unchanged objects.  So the repaired matrix is entry-for-entry bit-equal
to the matrix a fresh full query would compute, and folding it with the
*same* array expression ``DualIndex.query`` uses (own-column zeroing,
saturation test, ``p * prod(1 - sigma)`` row reduction over the same row
length ``m``, ``finalize_result`` clamp, canonical key order from
``empty_result``) yields results **byte-identical** to recompute from
scratch — the equivalence the Hypothesis suite in
``tests/properties/test_property_incremental.py`` pins after arbitrary
insert/delete/update sequences.

The σ cache is LRU-bounded: matrices are ``O(n · m)`` floats, so only a
handful of hot constraints keep their incremental fast path; a cold
constraint after a delta simply recomputes its matrix once (still against
the warm index) and is hot from then on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cache import bounded_insert, bounded_lookup
from ..core.dataset import DatasetDelta, UncertainDataset
from ..core.numeric import PROB_ATOL
from ..core.preference import WeightRatioConstraints
from .base import empty_result, finalize_result
from .dual import DualIndex

#: Bound on the per-constraint σ-matrix cache.  Each entry is an
#: ``(n, m)`` float matrix, far heavier than DUAL's result dicts, so the
#: default window is small; the Zipf-skewed streams the scenario engine
#: generates concentrate almost all repetition on this many constraints.
_SIGMA_CACHE_LIMIT = 8


class IncrementalArsp:
    """DUAL ARSP with delta maintenance instead of per-step recomputes.

    One engine owns one evolving dataset.  :meth:`query` answers a
    weight-ratio constraint (byte-identical to serial one-shot
    ``dual_arsp``), :meth:`apply_delta` advances the dataset one
    :class:`~repro.core.dataset.DatasetDelta` while repairing the warm
    index and every cached σ matrix.  ``stats()`` exposes how much work
    maintenance saved (entries copied vs recomputed).
    """

    def __init__(self, dataset: UncertainDataset, leaf_size: int = 16,
                 sigma_cache_limit: int = _SIGMA_CACHE_LIMIT):
        self.index = DualIndex(dataset, leaf_size=leaf_size)
        self._sigma_cache: Dict[tuple, Tuple[WeightRatioConstraints,
                                             np.ndarray]] = {}
        self._sigma_cache_limit = int(sigma_cache_limit)
        self.queries = 0
        self.sigma_hits = 0
        self.deltas_applied = 0
        self.entries_copied = 0
        self.entries_recomputed = 0

    @property
    def dataset(self) -> UncertainDataset:
        return self.index.dataset

    # ------------------------------------------------------------------
    def query(self, constraints: WeightRatioConstraints) -> Dict[int, float]:
        """Full ARSP for one weight-ratio constraint set.

        A σ-cache hit folds the maintained matrix (no index traversal at
        all); a miss computes the matrix once through the warm index and
        caches it for the deltas and repeats to come.
        """
        if not isinstance(constraints, WeightRatioConstraints):
            raise TypeError("incremental maintenance covers the DUAL path; "
                            "general linear constraints must recompute "
                            "through compute_arsp")
        self.queries += 1
        key = constraints.ranges
        cached = bounded_lookup(self._sigma_cache, key)
        if cached is not None:
            self.sigma_hits += 1
            return self._evaluate(cached[1])
        sigma = self._full_sigma(constraints)
        bounded_insert(self._sigma_cache, key, (constraints, sigma),
                       self._sigma_cache_limit)
        return self._evaluate(sigma)

    def _full_sigma(self, constraints: WeightRatioConstraints) -> np.ndarray:
        """Raw σ matrix over every live instance row (zero-probability
        rows stay zero: their results never read σ)."""
        index = self.index
        sigma = np.zeros((self.dataset.num_instances,
                          self.dataset.num_objects))
        live = np.flatnonzero(index._target_probabilities != 0.0)
        if len(live):
            sigma[live] = index.sigma_targets(constraints,
                                              index._targets[live])
            self.entries_recomputed += len(live) * self.dataset.num_objects
        return sigma

    def _evaluate(self, sigma: np.ndarray) -> Dict[int, float]:
        """Fold a raw σ matrix exactly the way ``DualIndex.query`` does.

        The fold must replicate the query's array expressions verbatim —
        own-column zeroing, the saturation short-circuit, the
        ``prod(1 - σ)`` row reduction (bit-stable for a fixed row length
        ``m``) and the final clamp — so maintained answers stay
        byte-identical to recomputed ones.
        """
        index = self.index
        probabilities = index._target_probabilities
        object_ids = index._target_objects
        instance_ids = index._target_instance_ids
        result = empty_result(self.dataset)
        live = np.flatnonzero(probabilities != 0.0)
        if len(live):
            block = sigma[live]
            block[np.arange(len(live)), object_ids[live]] = 0.0
            saturated = np.any(block >= 1.0 - PROB_ATOL, axis=1)
            values = np.where(saturated, 0.0,
                              probabilities[live]
                              * np.prod(1.0 - block, axis=1))
            for instance_id, value in zip(instance_ids[live].tolist(),
                                          values.tolist()):
                result[instance_id] = value
        return dict(finalize_result(result))

    # ------------------------------------------------------------------
    def apply_delta(self, delta: DatasetDelta) -> UncertainDataset:
        """Advance the dataset one delta; repair index and σ matrices."""
        old_dataset = self.dataset
        old_objects = old_dataset.object_ids()
        _, unchanged = delta.mappings(old_dataset.num_objects)
        new_dataset = old_dataset.apply_delta(delta)

        # Instance-row translation: instances are grouped by object in
        # object order on both sides, and an unchanged object keeps its
        # instance count, so its rows map block to block.
        old_rows_of = _object_row_blocks(old_objects,
                                         old_dataset.num_objects)
        self.index.apply_delta(new_dataset, unchanged)
        new_objects = self.index._target_objects
        new_rows_of = _object_row_blocks(new_objects,
                                         new_dataset.num_objects)
        kept_new = np.flatnonzero(unchanged >= 0)
        kept_old_rows = (np.concatenate([old_rows_of[unchanged[j]]
                                         for j in kept_new])
                         if len(kept_new) else np.empty(0, dtype=int))
        kept_new_rows = (np.concatenate([new_rows_of[j] for j in kept_new])
                         if len(kept_new) else np.empty(0, dtype=int))
        changed_new = np.flatnonzero(unchanged < 0)

        new_live = self.index._target_probabilities != 0.0
        # Rows to recompute in full: live instances of changed objects.
        fresh_rows = np.flatnonzero(
            new_live & (unchanged[new_objects] < 0))
        # Unchanged-but-live rows still need σ against the changed columns.
        kept_live_rows = kept_new_rows[new_live[kept_new_rows]]

        sub_index: Optional[DualIndex] = None
        if len(changed_new) and len(kept_live_rows):
            # A throwaway forest over only the changed objects answers the
            # invalidated columns; its per-object trees are identical to
            # the full index's (same instance segments), so the entries
            # match a fresh full query bit for bit.
            sub_index = DualIndex(
                new_dataset.subset(changed_new.tolist()),
                leaf_size=self.index.leaf_size)

        repaired: Dict[tuple, Tuple[WeightRatioConstraints, np.ndarray]] = {}
        for key, (constraints, old_sigma) in self._sigma_cache.items():
            sigma = np.zeros((new_dataset.num_instances,
                              new_dataset.num_objects))
            if len(kept_old_rows):
                sigma[np.ix_(kept_new_rows, kept_new)] = \
                    old_sigma[np.ix_(kept_old_rows, unchanged[kept_new])]
                self.entries_copied += len(kept_old_rows) * len(kept_new)
            if sub_index is not None:
                sigma[np.ix_(kept_live_rows, changed_new)] = \
                    sub_index.sigma_targets(
                        constraints, self.index._targets[kept_live_rows])
                self.entries_recomputed += (len(kept_live_rows)
                                            * len(changed_new))
            if len(fresh_rows):
                sigma[fresh_rows] = self.index.sigma_targets(
                    constraints, self.index._targets[fresh_rows])
                self.entries_recomputed += (len(fresh_rows)
                                            * new_dataset.num_objects)
            repaired[key] = (constraints, sigma)
        self._sigma_cache = repaired
        self.deltas_applied += 1
        return new_dataset

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-ready maintenance counters."""
        total = self.entries_copied + self.entries_recomputed
        return {
            "queries": self.queries,
            "sigma_hits": self.sigma_hits,
            "deltas_applied": self.deltas_applied,
            "sigma_entries_copied": self.entries_copied,
            "sigma_entries_recomputed": self.entries_recomputed,
            "copied_fraction": (round(self.entries_copied / total, 6)
                                if total else 0.0),
            "sigma_cache_size": len(self._sigma_cache),
        }


def _object_row_blocks(object_ids: np.ndarray, num_objects: int
                       ) -> List[np.ndarray]:
    """Per-object instance-row index blocks of a grouped flat layout."""
    counts = np.bincount(object_ids, minlength=num_objects)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)
    return [np.arange(starts[j], starts[j] + counts[j])
            for j in range(num_objects)]
