"""Incremental ARSP maintenance for DUAL under dataset deltas.

The scenario engine (:mod:`repro.experiments.scenarios`) feeds the system
time-stepped edit batches (:class:`repro.core.dataset.DatasetDelta`).
Recomputing every constraint from scratch after each step is the
*specification*; this module is the maintenance path that produces the
same answers by updating state instead:

* the warm :class:`~repro.algorithms.dual.DualIndex` is updated through
  its :meth:`~repro.algorithms.dual.DualIndex.apply_delta` (only changed
  objects' kd-trees are rebuilt);
* per already-answered constraint, the engine keeps the **raw σ matrix**
  (``sigma[t, j]`` = probability mass of object ``j`` F-dominating target
  ``t``, own-object mass included) and repairs only what the delta
  invalidated: σ entries of (unchanged target, unchanged object) pairs
  are copied over, new columns for inserted/updated objects come from a
  throwaway sub-index over just those objects, and new rows for
  inserted/updated objects' instances come from the updated full index.

**Byte-identity argument.**  Every σ entry is a per-(target, tree) value
accumulated in tree point order, independent of how the target axis is
chunked and of which other trees are in the forest
(:meth:`DualIndex.sigma_targets`); a kd-tree is a deterministic function
of its own object's instance segment, which ``apply_delta`` preserves for
unchanged objects.  So the repaired matrix is entry-for-entry bit-equal
to the matrix a fresh full query would compute, and folding it with the
*same* array expression ``DualIndex.query`` uses (own-column zeroing,
saturation test, ``p * prod(1 - sigma)`` row reduction over the same row
length ``m``, ``finalize_result`` clamp, canonical key order from
``empty_result``) yields results **byte-identical** to recompute from
scratch — the equivalence the Hypothesis suite in
``tests/properties/test_property_incremental.py`` pins after arbitrary
insert/delete/update sequences.

The σ cache is LRU-bounded: matrices are ``O(n · m)`` floats, so only a
handful of hot constraints keep their incremental fast path; a cold
constraint after a delta simply recomputes its matrix once (still against
the warm index) and is hot from then on.

The row/column translation of a delta is factored into
:class:`SigmaRepairPlan` — built once per delta, applied per matrix — so
the serving layer can reuse the exact same repair (and its
``copied_fraction`` cost model) to retain cross-query cache entries
across deltas instead of dropping them (:mod:`repro.serve.service`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cache import bounded_insert, bounded_lookup
from ..core.dataset import DatasetDelta, UncertainDataset
from ..core.numeric import PROB_ATOL
from ..core.preference import WeightRatioConstraints
from .base import empty_result, finalize_result
from .dual import DualIndex

#: Bound on the per-constraint σ-matrix cache.  Each entry is an
#: ``(n, m)`` float matrix, far heavier than DUAL's result dicts, so the
#: default window is small; the Zipf-skewed streams the scenario engine
#: generates concentrate almost all repetition on this many constraints.
_SIGMA_CACHE_LIMIT = 8


class IncrementalArsp:
    """DUAL ARSP with delta maintenance instead of per-step recomputes.

    One engine owns one evolving dataset.  :meth:`query` answers a
    weight-ratio constraint (byte-identical to serial one-shot
    ``dual_arsp``), :meth:`apply_delta` advances the dataset one
    :class:`~repro.core.dataset.DatasetDelta` while repairing the warm
    index and every cached σ matrix.  ``stats()`` exposes how much work
    maintenance saved (entries copied vs recomputed).
    """

    def __init__(self, dataset: UncertainDataset, leaf_size: int = 16,
                 sigma_cache_limit: int = _SIGMA_CACHE_LIMIT):
        self.index = DualIndex(dataset, leaf_size=leaf_size)
        self._sigma_cache: Dict[tuple, Tuple[WeightRatioConstraints,
                                             np.ndarray]] = {}
        self._sigma_cache_limit = int(sigma_cache_limit)
        self.queries = 0
        self.sigma_hits = 0
        self.deltas_applied = 0
        self.entries_copied = 0
        self.entries_recomputed = 0
        #: Per-entry repair shape of the most recent delta (see
        #: :meth:`SigmaRepairPlan.summary`); ``None`` before any delta.
        #: The serving layer's retain-vs-drop decision reads this.
        self.last_repair: Optional[Dict[str, object]] = None

    @property
    def dataset(self) -> UncertainDataset:
        return self.index.dataset

    # ------------------------------------------------------------------
    def query(self, constraints: WeightRatioConstraints) -> Dict[int, float]:
        """Full ARSP for one weight-ratio constraint set.

        A σ-cache hit folds the maintained matrix (no index traversal at
        all); a miss computes the matrix once through the warm index and
        caches it for the deltas and repeats to come.
        """
        if not isinstance(constraints, WeightRatioConstraints):
            raise TypeError("incremental maintenance covers the DUAL path; "
                            "general linear constraints must recompute "
                            "through compute_arsp")
        self.queries += 1
        key = constraints.ranges
        cached = bounded_lookup(self._sigma_cache, key)
        if cached is not None:
            self.sigma_hits += 1
            return self._evaluate(cached[1])
        sigma = self._full_sigma(constraints)
        bounded_insert(self._sigma_cache, key, (constraints, sigma),
                       self._sigma_cache_limit)
        return self._evaluate(sigma)

    def _full_sigma(self, constraints: WeightRatioConstraints) -> np.ndarray:
        """Raw σ matrix over every live instance row (zero-probability
        rows stay zero: their results never read σ)."""
        index = self.index
        sigma = np.zeros((self.dataset.num_instances,
                          self.dataset.num_objects))
        live = np.flatnonzero(index._target_probabilities != 0.0)
        if len(live):
            sigma[live] = index.sigma_targets(constraints,
                                              index._targets[live])
            self.entries_recomputed += len(live) * self.dataset.num_objects
        return sigma

    def _evaluate(self, sigma: np.ndarray) -> Dict[int, float]:
        """Fold a raw σ matrix exactly the way ``DualIndex.query`` does.

        The fold must replicate the query's array expressions verbatim —
        own-column zeroing, the saturation short-circuit, the
        ``prod(1 - σ)`` row reduction (bit-stable for a fixed row length
        ``m``) and the final clamp — so maintained answers stay
        byte-identical to recomputed ones.
        """
        index = self.index
        probabilities = index._target_probabilities
        object_ids = index._target_objects
        instance_ids = index._target_instance_ids
        result = empty_result(self.dataset)
        live = np.flatnonzero(probabilities != 0.0)
        if len(live):
            block = sigma[live]
            block[np.arange(len(live)), object_ids[live]] = 0.0
            saturated = np.any(block >= 1.0 - PROB_ATOL, axis=1)
            values = np.where(saturated, 0.0,
                              probabilities[live]
                              * np.prod(1.0 - block, axis=1))
            for instance_id, value in zip(instance_ids[live].tolist(),
                                          values.tolist()):
                result[instance_id] = value
        return dict(finalize_result(result))

    # ------------------------------------------------------------------
    def apply_delta(self, delta: DatasetDelta) -> UncertainDataset:
        """Advance the dataset one delta; repair index and σ matrices."""
        old_dataset = self.dataset
        old_objects = old_dataset.object_ids()
        old_num_objects = old_dataset.num_objects
        _, unchanged = delta.mappings(old_num_objects)
        new_dataset = old_dataset.apply_delta(delta)
        self.index.apply_delta(new_dataset, unchanged)

        plan = SigmaRepairPlan(self.index, old_objects, old_num_objects,
                               unchanged)
        repaired: Dict[tuple, Tuple[WeightRatioConstraints, np.ndarray]] = {}
        for key, (constraints, old_sigma) in self._sigma_cache.items():
            repaired[key] = (constraints, plan.repair(constraints, old_sigma))
            self.entries_copied += plan.entry_copied
            self.entries_recomputed += plan.entry_recomputed
        self._sigma_cache = repaired
        self.last_repair = plan.summary()
        self.deltas_applied += 1
        return new_dataset

    def refold(self, ranges: tuple) -> Optional[Dict[int, float]]:
        """Fold the cached σ matrix of ``ranges`` into a full result.

        The read-only sibling of :meth:`query` for the serving layer's
        cache repair: it touches neither the LRU order nor the query/hit
        counters (nobody *asked* for this constraint — the service is
        re-deriving a retained cache value after a delta), and returns
        ``None`` when the constraint holds no σ matrix (its cache entry
        cannot be repaired and must be dropped instead).
        """
        cached = self._sigma_cache.get(ranges)
        if cached is None:
            return None
        return self._evaluate(cached[1])

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-ready maintenance counters."""
        total = self.entries_copied + self.entries_recomputed
        return {
            "queries": self.queries,
            "sigma_hits": self.sigma_hits,
            "deltas_applied": self.deltas_applied,
            "sigma_entries_copied": self.entries_copied,
            "sigma_entries_recomputed": self.entries_recomputed,
            "copied_fraction": (round(self.entries_copied / total, 6)
                                if total else 0.0),
            "sigma_cache_size": len(self._sigma_cache),
        }


class SigmaRepairPlan:
    """Row/column translation for repairing σ matrices across one delta.

    Built once per delta against the *already updated*
    :class:`~repro.algorithms.dual.DualIndex` (the plan reads the new
    target layout from it), then applied to any number of old σ matrices
    via :meth:`repair` — the per-entry work splits into:

    * **copied** — σ of (unchanged target row, unchanged object column)
      pairs moves over verbatim (``unchanged[j] >= 0`` names the old
      object new object ``j`` carries, so rows map block to block);
    * **recomputed** — columns of changed objects against surviving live
      rows (answered by a throwaway sub-forest over only the changed
      objects, built lazily on first use) plus full rows for the changed
      objects' own live instances (answered by the updated full index).

    ``entry_copied`` / ``entry_recomputed`` are those two areas in σ
    entries, identical for every matrix repaired under the plan, and
    :attr:`copied_fraction` is their ratio — the cost model the serving
    layer's retain-vs-drop decision reuses.
    """

    def __init__(self, index: DualIndex, old_object_ids: np.ndarray,
                 old_num_objects: int, unchanged: np.ndarray):
        self.index = index
        self.unchanged = unchanged
        new_dataset = index.dataset
        # Instance-row translation: instances are grouped by object in
        # object order on both sides, and an unchanged object keeps its
        # instance count, so its rows map block to block.
        old_rows_of = _object_row_blocks(old_object_ids, old_num_objects)
        new_objects = index._target_objects
        new_rows_of = _object_row_blocks(new_objects,
                                         new_dataset.num_objects)
        self.kept_new = np.flatnonzero(unchanged >= 0)
        self.kept_old_rows = (
            np.concatenate([old_rows_of[unchanged[j]]
                            for j in self.kept_new])
            if len(self.kept_new) else np.empty(0, dtype=int))
        self.kept_new_rows = (
            np.concatenate([new_rows_of[j] for j in self.kept_new])
            if len(self.kept_new) else np.empty(0, dtype=int))
        self.changed_new = np.flatnonzero(unchanged < 0)
        new_live = index._target_probabilities != 0.0
        # Rows to recompute in full: live instances of changed objects.
        self.fresh_rows = np.flatnonzero(
            new_live & (unchanged[new_objects] < 0))
        # Unchanged-but-live rows still need σ against the changed columns.
        self.kept_live_rows = self.kept_new_rows[
            new_live[self.kept_new_rows]]
        self._sub_index: Optional[DualIndex] = None

    @property
    def entry_copied(self) -> int:
        """σ entries one :meth:`repair` call copies from the old matrix."""
        if not len(self.kept_old_rows):
            return 0
        return len(self.kept_old_rows) * len(self.kept_new)

    @property
    def entry_recomputed(self) -> int:
        """σ entries one :meth:`repair` call recomputes from trees."""
        total = 0
        if len(self.changed_new) and len(self.kept_live_rows):
            total += len(self.kept_live_rows) * len(self.changed_new)
        if len(self.fresh_rows):
            total += len(self.fresh_rows) * self.index.dataset.num_objects
        return total

    @property
    def copied_fraction(self) -> float:
        """Copied share of the per-entry repair work, 1.0 for a no-op.

        An empty plan (e.g. a pure-delete delta leaving no σ area to
        rebuild) counts as all-copy: retaining under it costs nothing.
        """
        total = self.entry_copied + self.entry_recomputed
        return self.entry_copied / total if total else 1.0

    def summary(self) -> Dict[str, object]:
        """JSON-ready per-entry shape of this delta's repairs."""
        return {
            "entry_copied": self.entry_copied,
            "entry_recomputed": self.entry_recomputed,
            "copied_fraction": round(self.copied_fraction, 6),
        }

    def _changed_column_index(self) -> DualIndex:
        if self._sub_index is None:
            # A throwaway forest over only the changed objects answers the
            # invalidated columns; its per-object trees are identical to
            # the full index's (same instance segments), so the entries
            # match a fresh full query bit for bit.
            self._sub_index = DualIndex(
                self.index.dataset.subset(self.changed_new.tolist()),
                leaf_size=self.index.leaf_size)
        return self._sub_index

    def repair(self, constraints: WeightRatioConstraints,
               old_sigma: np.ndarray) -> np.ndarray:
        """New-layout σ matrix rebuilt from ``old_sigma`` under the plan."""
        new_dataset = self.index.dataset
        sigma = np.zeros((new_dataset.num_instances,
                          new_dataset.num_objects))
        if len(self.kept_old_rows):
            sigma[np.ix_(self.kept_new_rows, self.kept_new)] = \
                old_sigma[np.ix_(self.kept_old_rows,
                                 self.unchanged[self.kept_new])]
        if len(self.changed_new) and len(self.kept_live_rows):
            sigma[np.ix_(self.kept_live_rows, self.changed_new)] = \
                self._changed_column_index().sigma_targets(
                    constraints, self.index._targets[self.kept_live_rows])
        if len(self.fresh_rows):
            sigma[self.fresh_rows] = self.index.sigma_targets(
                constraints, self.index._targets[self.fresh_rows])
        return sigma


def _object_row_blocks(object_ids: np.ndarray, num_objects: int
                       ) -> List[np.ndarray]:
    """Per-object instance-row index blocks of a grouped flat layout."""
    counts = np.bincount(object_ids, minlength=num_objects)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)
    return [np.arange(starts[j], starts[j] + counts[j])
            for j in range(num_objects)]
