"""LOOP: the sorted pairwise-test baseline.

The second baseline of Section III-A.  It computes the vertices of the
preference region, sorts all instances by their score under one vertex and,
for every instance, tests it against every candidate dominator among the
preceding instances (plus ties) using the score-space dominance test.  The
running time is ``O(c^2 + d d' n^2)``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from .base import build_score_space, empty_result, finalize_result


def loop_arsp(dataset: UncertainDataset, constraints) -> Dict[int, float]:
    """Compute ARSP with the quadratic LOOP baseline."""
    space = build_score_space(dataset, constraints)
    result = empty_result(dataset)
    n = space.num_instances
    if n == 0:
        return result

    # Sort by the score under the first vertex; any instance that F-dominates
    # another one has a score at most as large, so only the prefix (plus
    # exact ties) needs to be examined.
    primary = space.scores[:, 0]
    order = np.argsort(primary, kind="stable")
    scores = space.scores[order]
    probabilities = space.probabilities[order]
    object_ids = space.object_ids[order]
    instance_ids = space.instance_ids[order]
    sorted_primary = primary[order]

    m = space.num_objects
    for position in range(n):
        target_score = scores[position]
        target_object = object_ids[position]
        sigma = np.zeros(m)
        candidate = 0
        limit = sorted_primary[position] + SCORE_ATOL
        while candidate < n and sorted_primary[candidate] <= limit:
            if (candidate != position
                    and object_ids[candidate] != target_object
                    and np.all(scores[candidate] <= target_score + SCORE_ATOL)):
                sigma[object_ids[candidate]] += probabilities[candidate]
            candidate += 1

        probability = probabilities[position]
        for object_id in range(m):
            if object_id == target_object:
                continue
            if sigma[object_id] >= 1.0 - PROB_ATOL:
                probability = 0.0
                break
            probability *= 1.0 - sigma[object_id]
        result[int(instance_ids[position])] = probability

    return finalize_result(result)
