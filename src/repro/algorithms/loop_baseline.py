"""LOOP: the sorted pairwise-test baseline (Section III-A).

The second baseline of the paper.  It computes the vertices of the
preference region, sorts all instances by their score under one vertex and,
for every instance, tests it against every candidate dominator among the
preceding instances (plus ties) using the score-space dominance test.  The
running time is ``O(c^2 + d d' n^2)``.

:func:`loop_arsp` is the registered implementation.  It keeps the paper's
quadratic structure but runs it through the kernel layer
(docs/ARCHITECTURE.md): targets are processed in sorted chunks, each chunk
is tested against its candidate prefix with one
:func:`repro.core.kernels.weak_dominance_matrix` call, and the σ masses are
scatter-added per object in one ``np.add.at`` sweep.  The dominance
comparisons (operands and tolerances) are exactly those of
:func:`loop_arsp_scalar`, the pre-vectorization reference retained for the
parity property tests; only the accumulation order of the σ sums differs,
so results agree to float accumulation precision.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.kernels import weak_dominance_matrix
from ..core.numeric import PROB_ATOL, SCORE_ATOL
from .base import ExecutionPolicy, build_score_space, empty_result, \
    finalize_result, sharded_arsp

#: Upper bound on the number of dominance-matrix entries held in memory at
#: once; the chunked sweep sizes its target chunks accordingly.
_CHUNK_BUDGET = 4_000_000


def loop_arsp(dataset: UncertainDataset, constraints,
              workers: Optional[int] = None,
              backend: Optional[str] = None,
              policy: Optional[ExecutionPolicy] = None) -> Dict[int, float]:
    """Compute ARSP with the quadratic LOOP baseline (vectorized).

    ``workers`` shards the target axis across the execution backend (see
    :mod:`repro.core.backend`); each target's σ sums accumulate over the
    same candidates in the same order no matter which shard holds it, so
    results are bit-identical for every worker count.
    """
    return sharded_arsp(_loop_shard, dataset, constraints,
                        workers=workers, backend=backend, policy=policy)


def _loop_shard(dataset: UncertainDataset, constraints,
                lo: int, hi: int) -> Dict[int, float]:
    """LOOP results for the instances owned by objects in ``[lo, hi)``.

    Candidates always span the whole dataset — only the *target* axis is
    sharded.  For a fixed target, the dominating candidates and the order
    their masses accumulate in (candidate-major ``np.add.at``) do not
    depend on the chunk or shard it lands in, so any sharding of the
    target axis reproduces the single-shard values bit for bit.
    """
    space = build_score_space(dataset, constraints)
    n = space.num_instances
    if n == 0:
        return {}

    # Sort by the score under the first vertex; any instance that F-dominates
    # another one has a score at most as large, so only the prefix (plus
    # exact ties) needs to be examined.  The prefix cut is subsumed by the
    # dominance test itself (its first column *is* the primary score), so
    # restricting the candidate block to the prefix changes nothing but work.
    primary = space.scores[:, 0]
    order = np.argsort(primary, kind="stable")
    scores = space.scores[order]
    probabilities = space.probabilities[order]
    object_ids = space.object_ids[order]
    instance_ids = space.instance_ids[order]
    sorted_primary = primary[order]

    # Positions (in sorted order) of this shard's targets.
    targets = np.flatnonzero((object_ids >= lo) & (object_ids < hi))
    result: Dict[int, float] = {}
    if not len(targets):
        return result

    m = space.num_objects
    values = np.empty(len(targets))
    # The dominance kernel's broadcast temporary is (prefix, chunk, d'), so
    # the mapped dimension joins the entry count like in dual.py/sampling.py.
    chunk = max(1, _CHUNK_BUDGET // (n * max(1, space.mapped_dimension)))
    for begin in range(0, len(targets), chunk):
        end = min(len(targets), begin + chunk)
        rows = targets[begin:end]
        limit = sorted_primary[rows[-1]] + SCORE_ATOL
        prefix = int(np.searchsorted(sorted_primary, limit, side="right"))
        # dom[c, t] iff candidate c weakly dominates target rows[t] in
        # score space — the same test the scalar loop applies per pair.
        dom = weak_dominance_matrix(scores[:prefix], scores[rows])
        # Every target weakly dominates itself and sits inside its own
        # prefix (its primary score is below its own limit), so the
        # self-pair mask is unconditional.
        dom[rows, np.arange(len(rows))] = False
        dom &= object_ids[:prefix, None] != object_ids[None, rows]
        # Scatter the dominating candidates' masses into the per-object σ
        # matrix; memory stays O(chunk * m) plus the dominating pairs.
        sigma = np.zeros((end - begin, m))
        candidate_rows, target_cols = np.nonzero(dom)
        np.add.at(sigma, (target_cols, object_ids[candidate_rows]),
                  probabilities[candidate_rows])
        # The owning object's column is zero by construction (same-object
        # pairs were masked), so its factor is exactly 1 in the product.
        saturated = np.any(sigma >= 1.0 - PROB_ATOL, axis=1)
        values[begin:end] = np.where(
            saturated, 0.0,
            probabilities[rows] * np.prod(1.0 - sigma, axis=1))

    for instance_id, value in zip(instance_ids[targets].tolist(),
                                  values.tolist()):
        result[int(instance_id)] = value
    return finalize_result(result)


def loop_arsp_scalar(dataset: UncertainDataset, constraints) -> Dict[int, float]:
    """Pre-vectorization LOOP: the readable scalar reference.

    Kept verbatim as the specification of :func:`loop_arsp`; the property
    tests assert the two agree on random datasets.
    """
    space = build_score_space(dataset, constraints)
    result = empty_result(dataset)
    n = space.num_instances
    if n == 0:
        return result

    primary = space.scores[:, 0]
    order = np.argsort(primary, kind="stable")
    scores = space.scores[order]
    probabilities = space.probabilities[order]
    object_ids = space.object_ids[order]
    instance_ids = space.instance_ids[order]
    sorted_primary = primary[order]

    m = space.num_objects
    for position in range(n):
        target_score = scores[position]
        target_object = object_ids[position]
        sigma = np.zeros(m)
        candidate = 0
        limit = sorted_primary[position] + SCORE_ATOL
        while candidate < n and sorted_primary[candidate] <= limit:
            if (candidate != position
                    and object_ids[candidate] != target_object
                    and np.all(scores[candidate] <= target_score + SCORE_ATOL)):
                sigma[object_ids[candidate]] += probabilities[candidate]
            candidate += 1

        probability = probabilities[position]
        for object_id in range(m):
            if object_id == target_object:
                continue
            if sigma[object_id] >= 1.0 - PROB_ATOL:
                probability = 0.0
                break
            probability *= 1.0 - sigma[object_id]
        result[int(instance_ids[position])] = probability

    return finalize_result(result)
