"""KDTT / KDTT+: the kd-tree traversal algorithm (Algorithm 1).

The algorithm maps the uncertain dataset into the score space defined by the
vertices of the preference region and then runs the kd-ASP* procedure.  Two
variants are exposed, matching the paper's experimental study:

* ``KDTT`` (``integrated=False``): the original formulation that explores the
  complete kd-tree;
* ``KDTT+`` (``integrated=True``, the default): construction is integrated
  with the preorder traversal and subtrees whose instances all have zero
  rskyline probability are never built.

Time complexity: ``O(c^2 + d d' n + n^{2 - 1/d'})`` where ``d'`` is the
number of vertices of the preference region.  The underlying engine runs on
the batched kernels of :mod:`repro.core.kernels`; ``repro bench`` tracks its
throughput in ``BENCH_arsp.json`` (see PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Dict

from ..core.dataset import UncertainDataset
from .base import build_score_space, empty_result, finalize_result
from .tree_traversal import kd_partition, traverse_arsp


def kdtree_traversal_arsp(dataset: UncertainDataset, constraints,
                          integrated: bool = True) -> Dict[int, float]:
    """Compute ARSP with the kd-tree traversal algorithm.

    Parameters
    ----------
    dataset:
        The uncertain dataset.
    constraints:
        Linear or weight-ratio constraints (anything accepted by
        :func:`repro.core.preference.resolve_preference_region`).
    integrated:
        ``True`` for KDTT+ (integrated construction + zero pruning),
        ``False`` for the original KDTT.
    """
    space = build_score_space(dataset, constraints)
    result = empty_result(dataset)
    traverse_arsp(space, result, kd_partition, prune_construction=integrated)
    return finalize_result(result)


def kdtt_plus(dataset: UncertainDataset, constraints) -> Dict[int, float]:
    """Convenience wrapper for the KDTT+ variant."""
    return kdtree_traversal_arsp(dataset, constraints, integrated=True)


def kdtt(dataset: UncertainDataset, constraints) -> Dict[int, float]:
    """Convenience wrapper for the original KDTT variant."""
    return kdtree_traversal_arsp(dataset, constraints, integrated=False)
