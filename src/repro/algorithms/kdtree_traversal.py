"""KDTT / KDTT+: the kd-tree traversal algorithm (Algorithm 1).

The algorithm maps the uncertain dataset into the score space defined by the
vertices of the preference region and then runs the kd-ASP* procedure.  Two
variants are exposed, matching the paper's experimental study:

* ``KDTT`` (``integrated=False``): the original formulation that explores the
  complete kd-tree;
* ``KDTT+`` (``integrated=True``, the default): construction is integrated
  with the preorder traversal and subtrees whose instances all have zero
  rskyline probability are never built.

Time complexity: ``O(c^2 + d d' n + n^{2 - 1/d'})`` where ``d'`` is the
number of vertices of the preference region.  The underlying engine runs on
the batched kernels of :mod:`repro.core.kernels`; ``repro bench`` tracks its
throughput in ``BENCH_arsp.json`` (see PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.dataset import UncertainDataset
from .base import (ExecutionPolicy, build_score_space, finalize_result,
                   shard_covers_all, sharded_arsp)
from .tree_traversal import kd_partition, traverse_arsp


def _kdtt_shard(dataset: UncertainDataset, constraints,
                lo: int, hi: int,
                integrated: bool = True) -> Dict[int, float]:
    """kd-ASP* results for the instances owned by objects in ``[lo, hi)``.

    The traversal runs over the *full* score space (candidates are never
    sharded) with a target mask: subtrees holding no shard target are
    skipped, and every visited node carries the exact σ/β/χ state of the
    unmasked traversal, so shard results are bit-identical to the serial
    run (see :func:`repro.algorithms.tree_traversal.traverse_arsp`).
    """
    space = build_score_space(dataset, constraints)
    # The full-range shard (workers=1) drops the mask entirely so the
    # serial path pays no per-node target checks.
    targets = (None if shard_covers_all(dataset, lo, hi)
               else (space.object_ids >= lo) & (space.object_ids < hi))
    result: Dict[int, float] = {}
    traverse_arsp(space, result, kd_partition, prune_construction=integrated,
                  targets=targets)
    return finalize_result(result)


def kdtree_traversal_arsp(dataset: UncertainDataset, constraints,
                          integrated: bool = True,
                          workers: Optional[int] = None,
                          backend: Optional[str] = None,
                          policy: Optional[ExecutionPolicy] = None
                          ) -> Dict[int, float]:
    """Compute ARSP with the kd-tree traversal algorithm.

    Parameters
    ----------
    dataset:
        The uncertain dataset.
    constraints:
        Linear or weight-ratio constraints (anything accepted by
        :func:`repro.core.preference.resolve_preference_region`).
    integrated:
        ``True`` for KDTT+ (integrated construction + zero pruning),
        ``False`` for the original KDTT.
    workers, backend:
        Target-axis sharding across the execution backend
        (:mod:`repro.core.backend`); results are bit-identical for every
        worker count.
    """
    return sharded_arsp(_kdtt_shard, dataset, constraints,
                        workers=workers, backend=backend,
                        options={"integrated": integrated}, policy=policy)


def kdtt_plus(dataset: UncertainDataset, constraints,
              workers: Optional[int] = None,
              backend: Optional[str] = None,
              policy: Optional[ExecutionPolicy] = None) -> Dict[int, float]:
    """Convenience wrapper for the KDTT+ variant."""
    return kdtree_traversal_arsp(dataset, constraints, integrated=True,
                                 workers=workers, backend=backend,
                                 policy=policy)


def kdtt(dataset: UncertainDataset, constraints,
         workers: Optional[int] = None,
         backend: Optional[str] = None,
         policy: Optional[ExecutionPolicy] = None) -> Dict[int, float]:
    """Convenience wrapper for the original KDTT variant."""
    return kdtree_traversal_arsp(dataset, constraints, integrated=False,
                                 workers=workers, backend=backend,
                                 policy=policy)
