"""ASP: all skyline probabilities (the special case used for comparison).

The ASP problem — compute the *skyline* probability of every instance — is
the special case of ARSP where ``F`` contains all monotone scoring functions,
i.e. F-dominance degenerates into classical dominance.  The paper uses ASP in
its effectiveness study (Table II) to contrast skyline probabilities with
rskyline probabilities, and its kd-ASP* subroutine is the engine behind the
KDTT algorithms.  Here ASP is obtained by running that engine with the
identity preference region (one vertex per coordinate axis).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.dataset import UncertainDataset
from ..core.preference import PreferenceRegion
from .base import build_score_space, empty_result, finalize_result
from .tree_traversal import kd_partition, traverse_arsp


def identity_region(dimension: int) -> PreferenceRegion:
    """Preference region whose vertices are the coordinate axes.

    Under this region ``S_V(t) = t``, so F-dominance is exactly classical
    dominance and ARSP coincides with ASP.
    """
    return PreferenceRegion(np.eye(dimension))


def compute_skyline_probabilities(dataset: UncertainDataset
                                  ) -> Dict[int, float]:
    """Skyline probability of every instance (the ASP problem)."""
    space = build_score_space(dataset, identity_region(dataset.dimension))
    result = empty_result(dataset)
    traverse_arsp(space, result, kd_partition, prune_construction=True)
    return finalize_result(result)


def compute_asp(dataset: UncertainDataset) -> Dict[int, float]:
    """Alias of :func:`compute_skyline_probabilities` (paper terminology)."""
    return compute_skyline_probabilities(dataset)


def object_skyline_probabilities(dataset: UncertainDataset
                                 ) -> Dict[int, float]:
    """Skyline probability aggregated per uncertain object."""
    instance_probabilities = compute_skyline_probabilities(dataset)
    totals: Dict[int, float] = {obj.object_id: 0.0 for obj in dataset.objects}
    for instance in dataset.instances:
        totals[instance.object_id] += instance_probabilities[
            instance.instance_id]
    return totals
