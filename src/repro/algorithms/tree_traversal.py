"""The shared space-partitioning traversal engine (kd-ASP*).

Algorithm 1 of the paper maps all instances into the score space and runs an
optimised all-skyline-probabilities procedure (kd-ASP*) that interleaves the
construction of a space-partitioning tree with a preorder traversal.  The
same procedure works with any partitioning scheme — the paper evaluates a
kd-tree variant (KDTT / KDTT+) and a quadtree variant (QDTT+) — so the engine
lives here and the two public algorithms only differ in the partition
function they plug in.

State maintained along the current root-to-node path (see the paper):

* ``sigma[j]`` — probability mass of object ``j`` known to dominate the
  current node's min corner,
* ``beta`` — product of ``(1 - sigma[j])`` over non-saturated objects,
* ``chi`` — number of saturated objects (``sigma[j] = 1``),
* ``C`` — candidate dominators: instances that dominate the node's max
  corner but not (yet) its min corner.

The engine is iterative (explicit stack) so that degenerate partitions cannot
overflow the Python recursion limit, and the zero-pruning rule is slightly
more conservative than the paper's: a subtree is only pruned when *no*
instance of a saturated object remains inside it (see DESIGN.md §6), which
keeps the computation exact on inputs with coordinate ties.

The per-node work runs on the batch kernels of :mod:`repro.core.kernels`:
candidate filtering is two matrix comparisons against the node corners,
leaf/zero-prune emission writes whole index blocks at once, and the
partition functions use ``np.argpartition`` / one broadcast orthant-code
computation instead of full sorts and per-dimension loops.  Results are
accumulated in a flat array and copied into the caller's result dictionary
once at the end (see PERFORMANCE.md for the measured effect).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.kernels import classify_against_box, orthant_codes
from ..core.numeric import SCORE_ATOL
from .base import ScoreSpace, SaturationTracker

#: A partition function receives the score matrix, the indices of the current
#: node's instances and the node's min/max corners, and returns a list of
#: non-empty index arrays covering the node.
PartitionFunction = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray], List[np.ndarray]]


def kd_partition(scores: np.ndarray, indices: np.ndarray,
                 pmin: np.ndarray, pmax: np.ndarray) -> List[np.ndarray]:
    """Split at the median of the widest dimension (kd-tree style).

    Median selection uses ``np.argpartition`` (linear time) rather than a
    full sort; ties around the median may land on either side, which any
    valid space partition allows.
    """
    spreads = pmax - pmin
    axis = int(np.argmax(spreads))
    values = scores[indices, axis]
    half = len(indices) // 2
    order = np.argpartition(values, half)
    left = indices[order[:half]]
    right = indices[order[half:]]
    return [part for part in (left, right) if len(part)]


def quad_partition(scores: np.ndarray, indices: np.ndarray,
                   pmin: np.ndarray, pmax: np.ndarray) -> List[np.ndarray]:
    """Split every dimension at the box centre (quadtree style).

    Orthant codes are computed with a single broadcast comparison against
    the box centre (see :func:`repro.core.kernels.orthant_codes`).  Falls
    back to the kd split when the centre split fails to separate the points
    (possible only when all spread is concentrated in one dimension and ties
    collapse the groups).
    """
    center = (pmin + pmax) / 2.0
    codes = orthant_codes(scores[indices], center)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    groups = np.split(indices[order], boundaries)
    if len(groups) <= 1:
        return kd_partition(scores, indices, pmin, pmax)
    return groups


def traverse_arsp(space: ScoreSpace, result: Dict[int, float],
                  partition: PartitionFunction,
                  prune_construction: bool = True,
                  targets: Optional[np.ndarray] = None) -> Dict[str, int]:
    """Run the kd-ASP* traversal and fill ``result`` in place.

    Parameters
    ----------
    space:
        The dataset mapped into score space.
    result:
        Dictionary pre-initialised with every instance id; rskyline
        probabilities are written into it.
    partition:
        The space-partitioning rule (:func:`kd_partition` or
        :func:`quad_partition`).
    prune_construction:
        When True (KDTT+/QDTT+) subtrees whose instances all have zero
        probability are not constructed; when False (KDTT) the full tree is
        explored and the zeros are produced at the leaves.
    targets:
        Optional boolean mask over the instance positions.  Only masked
        instances are emitted into ``result``, and subtrees containing no
        masked instance are skipped entirely.  The tree shape and the
        σ/β/χ path state of every *visited* node are those of the full
        traversal — promotions at a node only affect its own subtree and
        are undone on the way back up — so the emitted values are
        bit-identical to an unmasked run.  This is what the execution
        backend's target sharding relies on (docs/ARCHITECTURE.md,
        "Execution backends").

    Returns
    -------
    dict
        Small statistics dictionary (visited nodes, pruned and skipped
        subtrees) used by tests and by the experiment reports.
    """
    n = space.num_instances
    stats = {"nodes": 0, "pruned": 0, "leaves": 0, "skipped": 0}
    if n == 0:
        return stats

    scores = space.scores
    probabilities = space.probabilities
    object_ids = space.object_ids
    instance_ids = space.instance_ids
    tracker = SaturationTracker(space.num_objects)

    #: Probabilities accumulate in a flat positional array; the caller's
    #: dictionary is filled once at the end, outside the hot loop.
    out = np.zeros(n)

    all_indices = np.arange(n)
    stack: List[tuple] = [("node", all_indices, all_indices)]

    while stack:
        action = stack.pop()
        if action[0] == "undo":
            if action[1] is not None:
                tracker.restore(action[1])
            continue

        _, indices, candidates = action
        if targets is not None and not np.any(targets[indices]):
            # No shard target below this node: nothing the subtree would
            # compute is emitted, and its σ promotions are invisible to any
            # other subtree, so it can be skipped before touching the
            # tracker at all.
            stats["skipped"] += 1
            continue
        stats["nodes"] += 1
        node_scores = scores[indices]
        pmin = node_scores.min(axis=0)
        pmax = node_scores.max(axis=0)

        # Move candidates that dominate the min corner into sigma; keep the
        # ones that still dominate the max corner as candidates for children.
        # The block apply snapshots the tracker so the undo on the way back
        # up is bit-exact (sibling subtrees leave no rounding residue).
        undo_token = None
        if len(candidates):
            dominates_min, dominates_max = classify_against_box(
                scores[candidates], pmin, pmax)
            promoted = candidates[dominates_min]
            new_candidates = candidates[dominates_max & ~dominates_min]
            if len(promoted):
                undo_token = tracker.apply_block(
                    object_ids[promoted].tolist(),
                    probabilities[promoted].tolist())
        else:
            new_candidates = candidates
        stack.append(("undo", undo_token))

        # Zero pruning: every instance in the node has probability zero when
        # at least two objects are saturated, or when one is saturated and
        # none of its instances lies inside the node.
        if tracker.saturated and prune_construction:
            zero_all = len(tracker.saturated) >= 2
            if not zero_all:
                saturated_object = next(iter(tracker.saturated))
                zero_all = not np.any(object_ids[indices] == saturated_object)
            if zero_all:
                stats["pruned"] += 1
                out[indices] = 0.0
                continue

        identical = bool(np.all(pmax - pmin <= SCORE_ATOL))
        if len(indices) == 1 or identical:
            stats["leaves"] += 1
            out[indices] = tracker.probabilities_for(object_ids[indices],
                                                     probabilities[indices])
            continue

        parts = partition(scores, indices, pmin, pmax)
        for part in reversed(parts):
            stack.append(("node", part, new_candidates))

    emitted = (np.arange(n) if targets is None
               else np.flatnonzero(targets))
    for instance_id, value in zip(instance_ids[emitted].tolist(),
                                  out[emitted].tolist()):
        result[int(instance_id)] = value
    return stats
