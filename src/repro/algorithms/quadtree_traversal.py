"""QDTT+: the quadtree variant of the tree-traversal algorithm.

The remark at the end of Section III-B observes that kd-ASP* works with any
space-partitioning tree; the experimental study includes a quadtree variant
which recursively splits every dimension of the score space at the node's
centre.  It performs well in low-dimensional score spaces and degrades when
``d'`` grows (Fig. 5(s)-(t)), which the benchmarks reproduce.  The orthant
split is a single broadcast comparison against the box centre (see
:func:`repro.core.kernels.orthant_codes`); ``repro bench`` tracks the
algorithm's throughput in ``BENCH_arsp.json``.
"""

from __future__ import annotations

from typing import Dict

from ..core.dataset import UncertainDataset
from .base import build_score_space, empty_result, finalize_result
from .tree_traversal import quad_partition, traverse_arsp


def quadtree_traversal_arsp(dataset: UncertainDataset, constraints,
                            integrated: bool = True) -> Dict[int, float]:
    """Compute ARSP with the quadtree traversal algorithm (QDTT+)."""
    space = build_score_space(dataset, constraints)
    result = empty_result(dataset)
    traverse_arsp(space, result, quad_partition,
                  prune_construction=integrated)
    return finalize_result(result)
