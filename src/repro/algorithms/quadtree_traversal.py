"""QDTT+: the quadtree variant of the tree-traversal algorithm.

The remark at the end of Section III-B observes that kd-ASP* works with any
space-partitioning tree; the experimental study includes a quadtree variant
which recursively splits every dimension of the score space at the node's
centre.  It performs well in low-dimensional score spaces and degrades when
``d'`` grows (Fig. 5(s)-(t)), which the benchmarks reproduce.  The orthant
split is a single broadcast comparison against the box centre (see
:func:`repro.core.kernels.orthant_codes`); ``repro bench`` tracks the
algorithm's throughput in ``BENCH_arsp.json``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.dataset import UncertainDataset
from .base import (ExecutionPolicy, build_score_space, finalize_result,
                   shard_covers_all, sharded_arsp)
from .tree_traversal import quad_partition, traverse_arsp


def _qdtt_shard(dataset: UncertainDataset, constraints,
                lo: int, hi: int,
                integrated: bool = True) -> Dict[int, float]:
    """QDTT+ results for the instances owned by objects in ``[lo, hi)``
    (same target-mask contract as the kd-tree shard)."""
    space = build_score_space(dataset, constraints)
    targets = (None if shard_covers_all(dataset, lo, hi)
               else (space.object_ids >= lo) & (space.object_ids < hi))
    result: Dict[int, float] = {}
    traverse_arsp(space, result, quad_partition,
                  prune_construction=integrated, targets=targets)
    return finalize_result(result)


def quadtree_traversal_arsp(dataset: UncertainDataset, constraints,
                            integrated: bool = True,
                            workers: Optional[int] = None,
                            backend: Optional[str] = None,
                            policy: Optional[ExecutionPolicy] = None
                            ) -> Dict[int, float]:
    """Compute ARSP with the quadtree traversal algorithm (QDTT+)."""
    return sharded_arsp(_qdtt_shard, dataset, constraints,
                        workers=workers, backend=backend,
                        options={"integrated": integrated}, policy=policy)
