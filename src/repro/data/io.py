"""Loading and saving uncertain datasets.

A downstream user's data rarely arrives as Python lists, so the package
supports two simple interchange formats:

* **CSV** — one row per instance with columns
  ``object_id, probability, attr_0, ..., attr_{d-1}`` and an optional
  ``label`` column carrying the object label (repeated on each of the
  object's rows).  This is the natural export of the paper's real datasets
  (e.g. one NBA game log per row, grouped by player id).
* **JSON** — a nested document ``{"objects": [{"label": ..., "instances":
  [{"values": [...], "probability": ...}, ...]}, ...]}``.

Both round-trip exactly through :class:`~repro.core.dataset.UncertainDataset`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.dataset import UncertainDataset

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def save_csv(dataset: UncertainDataset, path: PathLike) -> None:
    """Write the dataset as one CSV row per instance."""
    dimension = dataset.dimension
    fieldnames = (["object_id", "label", "probability"]
                  + ["attr_%d" % i for i in range(dimension)])
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fieldnames)
        for obj in dataset.objects:
            label = obj.label if obj.label is not None else ""
            for instance in obj:
                writer.writerow([obj.object_id, label, instance.probability]
                                + list(instance.values))


def load_csv(path: PathLike) -> UncertainDataset:
    """Load a dataset written by :func:`save_csv` (or hand-authored).

    Rows may appear in any order; object ids are re-numbered densely in
    order of first appearance, which keeps the loaded dataset valid even if
    the file skips ids.
    """
    groups: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError("%s is empty" % path)
        attr_columns = [name for name in reader.fieldnames
                        if name.startswith("attr_")]
        if not attr_columns:
            raise ValueError("%s has no attr_* columns" % path)
        attr_columns.sort(key=lambda name: int(name.split("_", 1)[1]))
        for row in reader:
            key = row["object_id"]
            if key not in groups:
                groups[key] = {"label": row.get("label") or None,
                               "instances": [], "probabilities": []}
                order.append(key)
            values = tuple(float(row[column]) for column in attr_columns)
            groups[key]["instances"].append(values)
            groups[key]["probabilities"].append(float(row["probability"]))

    if not order:
        raise ValueError("%s contains no instances" % path)
    instance_lists = [groups[key]["instances"] for key in order]
    probability_lists = [groups[key]["probabilities"] for key in order]
    labels = [groups[key]["label"] or "object-%d" % index
              for index, key in enumerate(order)]
    dataset = UncertainDataset.from_instance_lists(instance_lists,
                                                   probability_lists,
                                                   labels=labels)
    dataset.validate()
    return dataset


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def save_json(dataset: UncertainDataset, path: PathLike,
              indent: Optional[int] = 2) -> None:
    """Write the dataset as a nested JSON document."""
    document = {
        "dimension": dataset.dimension,
        "objects": [
            {
                "label": obj.label,
                "instances": [
                    {"values": list(instance.values),
                     "probability": instance.probability}
                    for instance in obj
                ],
            }
            for obj in dataset.objects
        ],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=indent)


def load_json(path: PathLike) -> UncertainDataset:
    """Load a dataset written by :func:`save_json`."""
    with open(path) as handle:
        document = json.load(handle)
    objects = document.get("objects")
    if not objects:
        raise ValueError("%s contains no objects" % path)
    instance_lists = []
    probability_lists = []
    labels = []
    for index, obj in enumerate(objects):
        instances = obj.get("instances", [])
        if not instances:
            raise ValueError("object %d has no instances" % index)
        instance_lists.append([tuple(float(v) for v in inst["values"])
                               for inst in instances])
        probability_lists.append([float(inst["probability"])
                                  for inst in instances])
        labels.append(obj.get("label") or "object-%d" % index)
    dataset = UncertainDataset.from_instance_lists(instance_lists,
                                                   probability_lists,
                                                   labels=labels)
    dataset.validate()
    return dataset
