"""Synthetic uncertain dataset generation (Section V-A of the paper).

The generator follows the procedure the paper shares with earlier work on
probabilistic skylines:

1. generate object centres ``c_i`` in ``[0, 1]^d`` following an independent
   (IND), anti-correlated (ANTI) or correlated (CORR) distribution;
2. around each centre place a hyper-rectangle whose edge length follows a
   normal distribution on ``[0, l]`` with mean ``l/2`` and standard deviation
   ``l/8``;
3. draw the number of instances of the object uniformly from ``[1, cnt]``
   and place the instances uniformly inside the rectangle, each with
   existence probability ``1/n_i``;
4. finally remove exactly one instance from each of the first ``⌈φ·m⌉``
   objects so that those objects have total probability below one.  (So the
   removal is always possible, those objects draw their instance count from
   ``[2, cnt]``; when ``cnt = 1`` no removal can happen and the dataset
   stays complete.)

Default parameter values mirror the paper: ``m = 16K``, ``cnt = 400``,
``d = 4``, ``l = 0.2`` and ``φ = 0`` (the benchmarks scale ``m`` and ``cnt``
down so the pure-Python algorithms finish in reasonable time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.dataset import UncertainDataset

DISTRIBUTIONS = ("IND", "ANTI", "CORR")


@dataclass
class SyntheticConfig:
    """Parameters of the synthetic generator (paper notation)."""

    num_objects: int = 1000          # m
    max_instances: int = 10          # cnt
    dimension: int = 4               # d
    region_length: float = 0.2       # l
    incomplete_fraction: float = 0.0  # φ
    distribution: str = "IND"
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.num_objects < 1:
            raise ValueError("num_objects must be positive")
        if self.max_instances < 1:
            raise ValueError("max_instances must be positive")
        if self.dimension < 1:
            raise ValueError("dimension must be positive")
        if not 0.0 <= self.region_length <= 1.0:
            raise ValueError("region_length must lie in [0, 1]")
        if not 0.0 <= self.incomplete_fraction <= 1.0:
            raise ValueError("incomplete_fraction must lie in [0, 1]")
        if self.distribution.upper() not in DISTRIBUTIONS:
            raise ValueError("distribution must be one of %s"
                             % (DISTRIBUTIONS,))


def generate_centers(num_objects: int, dimension: int, distribution: str,
                     rng: np.random.Generator) -> np.ndarray:
    """Object centres in ``[0, 1]^d`` under IND / ANTI / CORR distributions.

    The constructions follow the classic skyline benchmark of Börzsönyi et
    al.: IND draws coordinates independently; CORR perturbs points around the
    main diagonal; ANTI places points near the anti-diagonal hyperplane so
    that attributes trade off against each other.
    """
    distribution = distribution.upper()
    if distribution not in DISTRIBUTIONS:
        raise ValueError("distribution must be one of %s" % (DISTRIBUTIONS,))

    if distribution == "IND":
        return rng.uniform(0.0, 1.0, size=(num_objects, dimension))

    if distribution == "CORR":
        base = rng.uniform(0.0, 1.0, size=num_objects)
        noise = rng.normal(0.0, 0.05, size=(num_objects, dimension))
        centers = base[:, None] + noise
        return np.clip(centers, 0.0, 1.0)

    # ANTI: points concentrated around the hyperplane sum(x) = d/2 with the
    # coordinates negatively correlated with each other.
    centers = np.empty((num_objects, dimension))
    for row in range(num_objects):
        total = np.clip(rng.normal(0.5 * dimension, 0.05 * dimension),
                        0.0, float(dimension))
        weights = rng.dirichlet(np.ones(dimension))
        centers[row] = np.clip(weights * total, 0.0, 1.0)
    return centers


def generate_uncertain_dataset(config: SyntheticConfig,
                               return_regions: bool = False,
                               rng: Optional[np.random.Generator] = None):
    """Generate an uncertain dataset following the paper's procedure.

    With ``return_regions=True`` the per-object instance rectangles are
    returned alongside the dataset as an ``(m, 2, d)`` array of ``[lo, hi]``
    corners, so callers (and the property tests) can verify that every
    instance lies inside the hyper-rectangle it was drawn from.

    ``rng`` overrides the internally seeded generator.  Callers that derive
    streams from a shared :class:`numpy.random.SeedSequence` (the scenario
    engine spawns one child per concern) pass their own generator here so
    the dataset draw is independent of ``config.seed`` and of every other
    stream spawned from the same root.
    """
    config.validate()
    if rng is None:
        rng = np.random.default_rng(config.seed)
    centers = generate_centers(config.num_objects, config.dimension,
                               config.distribution, rng)

    instance_lists = []
    probability_lists = []
    regions = np.empty((config.num_objects, 2, config.dimension))
    num_incomplete = int(math.ceil(config.incomplete_fraction
                                   * config.num_objects))

    for object_index in range(config.num_objects):
        # Edge length ~ Normal(l/2, l/8) clipped into [0, l].
        edge = float(np.clip(rng.normal(config.region_length / 2.0,
                                        config.region_length / 8.0),
                             0.0, config.region_length))
        lo = np.clip(centers[object_index] - edge / 2.0, 0.0, 1.0)
        hi = np.clip(centers[object_index] + edge / 2.0, 0.0, 1.0)
        regions[object_index, 0] = lo
        regions[object_index, 1] = hi

        incomplete = (object_index < num_incomplete
                      and config.max_instances >= 2)
        # Objects that must lose an instance draw their count from [2, cnt]
        # so exactly one removal is always possible.
        count = int(rng.integers(2 if incomplete else 1,
                                 config.max_instances + 1))
        probability = 1.0 / count
        points = rng.uniform(lo, hi, size=(count, config.dimension))

        if incomplete:
            # Remove one instance but keep the original probabilities, so the
            # object's total probability drops below one (φ in the paper).
            points = points[:-1]
        instance_lists.append([tuple(point) for point in points])
        probability_lists.append([probability] * len(points))

    dataset = UncertainDataset.from_instance_lists(instance_lists,
                                                   probability_lists)
    if return_regions:
        return dataset, regions
    return dataset


def generate_certain_points(num_points: int, dimension: int,
                            distribution: str = "IND",
                            seed: Optional[int] = None) -> np.ndarray:
    """Certain dataset used by the eclipse experiments (Fig. 8)."""
    rng = np.random.default_rng(seed)
    return generate_centers(num_points, dimension, distribution, rng)
