"""Workload generators: synthetic uncertain datasets, constraint generators
and simulated stand-ins for the paper's real datasets (IIP, CAR, NBA)."""

from .constraints import interactive_constraints, weak_ranking_constraints
from .real import car_dataset, iip_dataset, nba_dataset
from .synthetic import (SyntheticConfig, generate_centers,
                        generate_uncertain_dataset)

__all__ = [
    "SyntheticConfig",
    "car_dataset",
    "generate_centers",
    "generate_uncertain_dataset",
    "iip_dataset",
    "interactive_constraints",
    "nba_dataset",
    "weak_ranking_constraints",
]
