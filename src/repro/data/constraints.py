"""Constraint generators used in the experiments (Section V-A).

Two generators are used by the paper:

* **WR** — weak rankings on the weights: ``ω[i] >= ω[i+1]`` for
  ``1 <= i <= c``.  The preference region generated this way always has
  ``d`` vertices.
* **IM** — interactively generated constraints: a hidden target weight
  ``ω*`` is drawn at random, and each constraint is the half of the simplex
  containing ``ω*`` induced by the hyperplane separating two random objects.
  The number of vertices of the resulting region typically grows with ``c``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.preference import LinearConstraints


def weak_ranking_constraints(dimension: int,
                             num_constraints: Optional[int] = None
                             ) -> LinearConstraints:
    """The WR generator: ``ω[i] >= ω[i+1]`` for the first ``c`` attribute pairs."""
    return LinearConstraints.weak_ranking(dimension, num_constraints)


def interactive_constraints(dimension: int, num_constraints: int,
                            seed: Optional[int] = None,
                            target_weight: Optional[np.ndarray] = None
                            ) -> LinearConstraints:
    """The IM generator: constraints learned from pairwise comparisons.

    For each constraint two objects ``t_i`` and ``s_i`` are drawn uniformly
    from ``[0, 1]^d``; the hyperplane ``sum_j (t_i[j] - s_i[j]) ω[j] = 0``
    splits the simplex and the half containing the hidden target weight
    ``ω*`` is kept as the constraint, mimicking a user who consistently
    prefers the object that scores better under ``ω*``.
    """
    if num_constraints < 0:
        raise ValueError("num_constraints must be non-negative")
    rng = np.random.default_rng(seed)
    if target_weight is None:
        target_weight = rng.dirichlet(np.ones(dimension))
    else:
        target_weight = np.asarray(target_weight, dtype=float)
        if target_weight.shape != (dimension,):
            raise ValueError("target_weight must have dimension %d"
                             % dimension)
        if np.any(target_weight < 0) or abs(target_weight.sum() - 1.0) > 1e-9:
            raise ValueError("target_weight must lie on the unit simplex")

    rows = []
    rhs = []
    for _ in range(num_constraints):
        t = rng.uniform(0.0, 1.0, size=dimension)
        s = rng.uniform(0.0, 1.0, size=dimension)
        normal = t - s
        margin = float(normal @ target_weight)
        if abs(margin) < 1e-12:
            # Degenerate split that does not constrain ω*; skip it the same
            # way an interactive system would discard an uninformative
            # comparison.
            continue
        if margin <= 0.0:
            # ω* prefers t (scores lower under ω*): keep normal·ω <= 0.
            rows.append(normal)
        else:
            rows.append(-normal)
        rhs.append(0.0)

    if not rows:
        return LinearConstraints.unconstrained(dimension)
    return LinearConstraints(dimension, np.vstack(rows), np.asarray(rhs))
