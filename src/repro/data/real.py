"""Simulated stand-ins for the paper's real datasets.

The paper evaluates on three real datasets (IIP iceberg sightings, CAR
listings grouped by model, NBA game logs per player) that are not available
offline.  As documented in DESIGN.md §5 the generators below reproduce the
*structure* that matters to the algorithms — number of objects, instances
per object, dimensionality, probability model and the attribute variance the
paper's analysis relies on — with synthetic values.

All attributes follow the paper's convention that lower values are better;
for quantities where larger raw values are preferable (e.g. points scored)
the generators negate or invert the raw value the same way the paper's
preprocessing must have.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.dataset import UncertainDataset

#: Confidence levels of IIP sighting sources and their probabilities.
IIP_CONFIDENCE_PROBABILITIES = (0.8, 0.7, 0.6)

#: Metric names of the simulated NBA dataset (in storage order).
NBA_METRICS = ("rebounds", "assists", "points", "steals", "blocks",
               "turnovers", "minutes", "field_goals")


def iip_dataset(num_records: int = 2000,
                seed: Optional[int] = None) -> UncertainDataset:
    """Simulated IIP iceberg-sighting dataset.

    Structure reproduced from the paper: every record is an uncertain object
    with a single instance, two attributes (melting percentage and drifting
    days — correlated, since icebergs that drift longer melt more) and an
    existence probability drawn from the three confidence levels
    {0.8, 0.7, 0.6}.  Consequently every object has total probability below
    one (``φ = 1``).
    """
    rng = np.random.default_rng(seed)
    drifting_days = rng.gamma(shape=2.0, scale=30.0, size=num_records)
    melting = np.clip(drifting_days / drifting_days.max()
                      + rng.normal(0.0, 0.15, size=num_records), 0.0, 1.0)
    # Lower is better in the data model; a decision maker tracking risky
    # icebergs prefers large melting percentage and long drift, so negate.
    attributes = np.column_stack([1.0 - melting,
                                  drifting_days.max() - drifting_days])
    probabilities = rng.choice(IIP_CONFIDENCE_PROBABILITIES,
                               size=num_records)
    labels = ["sighting-%05d" % i for i in range(num_records)]
    return UncertainDataset.from_certain_points(
        [tuple(row) for row in attributes],
        probabilities=list(probabilities),
        labels=labels)


def car_dataset(num_models: int = 300, max_cars_per_model: int = 12,
                seed: Optional[int] = None) -> UncertainDataset:
    """Simulated CAR dataset.

    Cars of the same model form one uncertain object; renting that model
    yields any of its cars with equal probability.  Four attributes (price,
    inverse power, mileage, age) with substantial within-model variance, as
    the paper observes for the real CAR data.
    """
    rng = np.random.default_rng(seed)
    instance_lists: List[List[Sequence[float]]] = []
    labels = []
    for model in range(num_models):
        count = int(rng.integers(1, max_cars_per_model + 1))
        base_price = rng.uniform(5_000.0, 60_000.0)
        base_power = rng.uniform(60.0, 400.0)
        cars = []
        for _ in range(count):
            price = base_price * rng.uniform(0.6, 1.4)
            power = base_power * rng.uniform(0.8, 1.2)
            mileage = rng.uniform(0.0, 200_000.0)
            age = rng.uniform(0.0, 15.0)
            # Lower is better: invert power.
            cars.append((price / 1_000.0, 500.0 - power,
                         mileage / 1_000.0, age))
        instance_lists.append(cars)
        labels.append("model-%03d" % model)
    return UncertainDataset.from_instance_lists(instance_lists, labels=labels)


def nba_dataset(num_players: int = 150, max_games: int = 40,
                num_metrics: int = 8,
                seed: Optional[int] = None) -> UncertainDataset:
    """Simulated NBA game-log dataset.

    Every player is an uncertain object; every game record is an instance
    with probability ``1/|games|``.  Players draw latent skill vectors from a
    skewed distribution (a few stars, many role players) and game records add
    substantial noise around the skill, reproducing the large per-player
    variance that drives the paper's Table I / Table II discussion.

    Metrics are stored in the order of :data:`NBA_METRICS`; larger raw values
    are better for all of them except turnovers, so the stored attribute is
    ``scale - value`` (and ``value`` for turnovers) to respect the
    lower-is-better convention.
    """
    if not 1 <= num_metrics <= len(NBA_METRICS):
        raise ValueError("num_metrics must be between 1 and %d"
                         % len(NBA_METRICS))
    rng = np.random.default_rng(seed)
    # Typical per-game upper scales for the raw metrics.
    scales = np.asarray([20.0, 15.0, 40.0, 5.0, 5.0, 8.0, 48.0, 15.0])
    instance_lists: List[List[Sequence[float]]] = []
    labels = []
    for player in range(num_players):
        # Skill in (0, 1) per metric; a long tail of strong players.
        overall = rng.beta(2.0, 5.0)
        per_metric = np.clip(overall + rng.normal(0.0, 0.15, size=8), 0.02, 1.0)
        games = int(rng.integers(5, max_games + 1))
        records = []
        for _ in range(games):
            raw = np.clip(per_metric * scales
                          * rng.gamma(shape=4.0, scale=0.25, size=8),
                          0.0, scales * 1.5)
            stored = scales * 1.5 - raw
            # Turnovers: lower raw value is better, keep as-is.
            stored[5] = raw[5]
            records.append(tuple(stored[:num_metrics]))
        instance_lists.append(records)
        labels.append("Player %03d" % player)
    return UncertainDataset.from_instance_lists(instance_lists, labels=labels)
