"""Async front of the serve daemon: sessions, coalescing, and the TCP server.

Two layers, mirroring the actor shape the ROADMAP names (an async owner of
loaded state that allocates per-request resources and supervises worker
sub-pools):

:class:`ArspSession`
    Wraps one :class:`~repro.serve.service.ArspService` for concurrent
    asyncio callers.  All compute runs on a dedicated single-thread
    executor — the service and its warm ``DualIndex`` only ever see one
    thread, and the event loop stays responsive while a query computes.
    Concurrent requests for the same (algorithm, constraints) identity are
    *coalesced* single-flight: the first becomes the leader and computes;
    the rest await the leader's full result and project their own target
    sets from it, so a burst of N identical queries costs one kernel
    pass, not N.  (Distinct constraints serialize on the compute thread —
    the supervised process pool underneath a sharded compute is not
    re-entrant.)

:class:`ArspServer`
    asyncio TCP server speaking the line-delimited JSON protocol of
    :mod:`repro.serve.protocol`; one request line in, one response line
    out, malformed input answered with ``{"ok": false}`` rather than a
    dropped connection.  A ``shutdown`` op (or :meth:`ArspSession.shutdown`)
    releases :meth:`serve_until_shutdown`.

Both the TCP handler and the in-process
:class:`~repro.serve.client.ServeClient` funnel through
:meth:`ArspSession.handle_request`, so tests exercise the exact dispatch
path production traffic takes.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from .protocol import (PROTOCOL_VERSION, decode_constraints, dump_message,
                       encode_result, load_message)
from .service import ArspService, QueryOutcome


class ArspSession:
    """Concurrent asyncio access to one service, single-flight coalesced."""

    def __init__(self, service: ArspService):
        self.service = service
        self.coalesced = 0
        self.shutdown_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute")
        self._inflight: Dict[Tuple, "asyncio.Future"] = {}

    # ------------------------------------------------------------------
    async def query(self, constraints, targets=None,
                    algorithm: Optional[str] = None) -> QueryOutcome:
        """One served query; identical concurrent queries share one compute.

        The leader (first request for a key with none in flight) runs
        :meth:`ArspService.full_result` on the compute thread and counts
        the cache miss/hit; followers await the leader's full result and
        only project — they touch no cache counters, and their outcomes
        report ``cached=True`` (the answer came from shared state, not
        from a kernel pass of their own).

        The coalescing key is the service's epoch-aware
        :meth:`~repro.serve.service.ArspService.query_key`, so a query
        arriving after a delta never piggybacks on a leader that started
        against the previous dataset generation.  (The authoritative
        cache key is minted inside ``full_result`` on the compute thread,
        strictly ordered against deltas.)
        """
        start = time.perf_counter()
        loop = asyncio.get_running_loop()
        name = self.service.resolve_algorithm(constraints, algorithm)
        key = self.service.query_key(constraints, name)
        shared = self._inflight.get(key)
        if shared is None:
            future = loop.create_future()
            self._inflight[key] = future
            try:
                full, cached, execution = await loop.run_in_executor(
                    self._executor, self.service.full_result,
                    constraints, name)
            except BaseException as error:
                # Wake followers with the failure; a (tag, payload) pair
                # instead of set_exception so an unobserved future never
                # logs "exception was never retrieved".
                future.set_result(("error", error))
                raise
            else:
                future.set_result(("ok", (full, cached, execution)))
            finally:
                del self._inflight[key]
            coalesced = False
        else:
            self.coalesced += 1
            # shield(): cancelling one follower must not cancel the
            # shared future the others (and the leader's bookkeeping)
            # still rely on.
            tag, payload = await asyncio.shield(shared)
            if tag == "error":
                raise payload
            full, _, execution = payload
            cached, coalesced = True, True
        result = self.service.project(full, targets)
        self.service.queries_answered += 1
        return QueryOutcome(result=result, full=full, algorithm=name,
                            cached=cached, execution=execution,
                            elapsed_s=time.perf_counter() - start,
                            coalesced=coalesced)

    # ------------------------------------------------------------------
    async def apply_delta(self, delta):
        """Apply a dataset delta through the daemon's compute thread.

        Runs :meth:`ArspService.apply_delta` on the same single-thread
        executor queries compute on, so the delta is strictly ordered
        against in-flight and queued queries — a query either sees the
        dataset before the delta or after it, never a half-applied state.
        Cache retention (σ-repaired entries re-keyed to the new epoch)
        happens inside that same ordered call, so a post-delta query can
        hit a retained entry but never a stale one.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self.service.apply_delta, delta)

    # ------------------------------------------------------------------
    async def handle_request(self, request: Dict) -> Dict:
        """Dispatch one protocol message; never raises, always answers."""
        if not isinstance(request, dict):
            return {"ok": False,
                    "error": "protocol messages must be JSON objects"}
        op = request.get("op", "query")
        response: Dict[str, object]
        try:
            if op == "ping":
                response = {"ok": True, "op": "ping",
                            "protocol": PROTOCOL_VERSION}
            elif op == "stats":
                stats = self.service.stats()
                stats["coalesced"] = self.coalesced
                response = {"ok": True, "op": "stats", "stats": stats}
            elif op == "shutdown":
                self.shutdown_event.set()
                response = {"ok": True, "op": "shutdown"}
            elif op == "query":
                response = await self._handle_query(request)
            else:
                response = {"ok": False, "error": "unknown op %r" % (op,)}
        except Exception as error:
            response = {"ok": False, "error": str(error) or repr(error)}
        if "id" in request:
            response["id"] = request["id"]
        return response

    async def _handle_query(self, request: Dict) -> Dict:
        constraints = decode_constraints(request.get("constraints"))
        outcome = await self.query(constraints,
                                   targets=request.get("targets"),
                                   algorithm=request.get("algorithm"))
        return {
            "ok": True,
            "op": "query",
            "algorithm": outcome.algorithm,
            "result": encode_result(outcome.result),
            "arsp_size": outcome.arsp_size,
            "cached": outcome.cached,
            "coalesced": outcome.coalesced,
            "execution": outcome.execution,
            "cache": self.service.cache.stats(),
            "epoch": self.service.dataset.epoch,
            "elapsed_s": outcome.elapsed_s,
        }

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release :meth:`ArspServer.serve_until_shutdown` (idempotent)."""
        self.shutdown_event.set()

    def close(self) -> None:
        """Stop the compute executor (the session is done after this)."""
        self._executor.shutdown(wait=True)


class ArspServer:
    """Line-delimited JSON TCP front over one :class:`ArspSession`."""

    def __init__(self, session: ArspSession, host: str = "127.0.0.1",
                 port: int = 0):
        self.session = session
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port).

        ``port=0`` asks the OS for a free port — the bound port is what
        callers must advertise (the CLI prints it).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self.host, self.port

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = load_message(line)
                except ValueError as error:
                    response = {"ok": False, "error": str(error)}
                else:
                    response = await self.session.handle_request(request)
                writer.write(dump_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # Server shutdown cancels handlers mid-teardown; the
                # connection is gone either way, so end the task quietly.
                pass

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`ArspSession.shutdown`)."""
        if self._server is None:
            await self.start()
        await self.session.shutdown_event.wait()
        await self.close()

    async def close(self) -> None:
        """Stop listening and release the session's compute thread."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.session.close()
