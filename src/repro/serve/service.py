"""The long-lived query service: warm indexes + the shared cross-query cache.

:class:`ArspService` is the synchronous heart of ``repro serve``.  It owns
one loaded :class:`~repro.core.dataset.UncertainDataset` and answers a
stream of (constraints, target-set) ARSP queries against it, keeping the
expensive constraint-independent state alive between queries:

* the :class:`~repro.algorithms.dual.DualIndex` kd-forest is built once
  and reused for every weight-ratio query on the serial path — the build
  cost one-shot ``repro arsp`` pays per invocation is paid once per
  daemon.  It lives inside an
  :class:`~repro.algorithms.incremental.IncrementalArsp` engine, whose
  per-constraint σ matrices double as the repair source for cache
  retention across deltas;
* a shared, size-bounded :class:`~repro.core.cache.QueryCache` fronts
  *all* algorithms at full-result granularity, keyed by
  ``(algorithm, constraint identity @ dataset epoch)`` — a repeated
  constraint is a dict copy, regardless of which client sends it or
  which targets it asks for, and a result computed against an older
  dataset generation can never be served after a delta (the epoch in
  the key makes a stale hit structurally impossible).

**Delta retention.**  :meth:`ArspService.apply_delta` used to clear the
cross-query cache wholesale — keys carried no dataset version, so every
entry was presumed stale.  Now the engine repairs its σ matrices through
the delta (:class:`~repro.algorithms.incremental.SigmaRepairPlan`), and
when the repair was mostly copies
(``copied_fraction >= RETENTION_MIN_COPIED_FRACTION``) the service
re-folds each surviving σ matrix into a full result and re-keys the
cache entry to the new epoch — so the post-delta stream opens warm
instead of all-miss.  Entries without a σ matrix (non-DUAL algorithms,
σ-LRU evictees) and all entries under an expensive repair are dropped,
because repairing them would cost what recomputing costs.

**Byte-identity contract.**  The service always computes (or retrieves)
the *full* result for a constraint and projects the requested target set
out of it by walking ``dataset.instances`` in canonical order.  The warm
path calls the exact code one-shot serial DUAL runs
(``_dual_shard(dataset, c, 0, m)`` is ``DualIndex.query(c, None)``), and
every other path *is* :func:`repro.core.arsp.compute_arsp` — so served
values are bit-identical to one-shot answers by construction, and the
sharded path's :class:`~repro.core.backend.ExecutionReport` recovery
ladder (``REPRO_FAULTS`` included) works unchanged under the daemon.

Thread-safety: the service itself is synchronous and must be driven from
one thread at a time; :class:`repro.serve.server.ArspSession` guarantees
that with a single-thread compute executor.  The cache is internally
locked so ``stats()`` may be read from anywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..algorithms.dual import DualIndex
from ..algorithms.incremental import IncrementalArsp
from ..algorithms.registry import canonical_name
from ..core.arsp import arsp_size, compute_arsp
from ..core.backend import ExecutionPolicy
from ..core.cache import DEFAULT_CACHE_LIMIT, QueryCache, constraint_key
from ..core.dataset import DatasetDelta, UncertainDataset
from ..core.preference import WeightRatioConstraints

#: Retain-vs-drop rule for cache repair across a delta: entries survive
#: only when at least this fraction of the per-entry σ repair is verbatim
#: copies (:attr:`SigmaRepairPlan.copied_fraction`).  Below it, repairing
#: a *speculative* cache entry (it may never be queried again) approaches
#: the cost of recomputing it on demand, so dropping is the better bet.
RETENTION_MIN_COPIED_FRACTION = 0.5


@dataclass
class ServeConfig:
    """Per-daemon execution configuration (one per service, not per query).

    ``workers``/``backend``/``policy`` are the sharded-execution knobs of
    :func:`repro.core.arsp.compute_arsp`; when ``workers`` is set, every
    computed query runs through the supervised shard scheduler and its
    :class:`~repro.core.backend.ExecutionReport` lands in the response.
    """

    algorithm: str = "auto"
    workers: Optional[int] = None
    backend: Optional[str] = None
    policy: Optional[ExecutionPolicy] = None
    cache_limit: int = DEFAULT_CACHE_LIMIT
    leaf_size: int = 16


@dataclass
class QueryOutcome:
    """What one served query did, ready for response encoding.

    ``result`` is the target-set projection actually returned; ``full``
    is the complete per-instance mapping it was sliced from (and what the
    cross-query cache stores).  ``execution`` is the JSON-ready
    ``ExecutionReport.summary()`` when the compute ran sharded, ``None``
    for warm-index and cached answers.
    """

    result: Dict[int, float]
    full: Dict[int, float]
    algorithm: str
    cached: bool
    execution: Optional[Dict[str, object]]
    elapsed_s: float
    #: True for a follower that piggybacked on a concurrent identical
    #: query (set by the async session; the sync service never coalesces).
    coalesced: bool = False

    @property
    def arsp_size(self) -> int:
        return arsp_size(self.result)


class ArspService:
    """Answer ARSP queries against one dataset with warm state in between."""

    def __init__(self, dataset: UncertainDataset,
                 config: Optional[ServeConfig] = None):
        self.dataset = dataset
        self.config = config or ServeConfig()
        self.cache = QueryCache(self.config.cache_limit)
        self.queries_answered = 0
        self.deltas_applied = 0
        self._engine: Optional[IncrementalArsp] = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> IncrementalArsp:
        """The warm maintenance engine, built on first use.

        Owns the constraint-independent kd-forest *and* the per-constraint
        σ matrices — the serial warm path queries through it so that every
        served DUAL constraint leaves behind the σ matrix its cache entry
        will be repaired from when a delta lands.
        """
        if self._engine is None:
            self._engine = IncrementalArsp(self.dataset,
                                           leaf_size=self.config.leaf_size)
        return self._engine

    @property
    def dual_index(self) -> DualIndex:
        """The warm constraint-independent kd-forest, built on first use."""
        return self.engine.index

    def warm(self) -> float:
        """Eagerly build the warm index; returns the build seconds."""
        start = time.perf_counter()
        self.dual_index
        return time.perf_counter() - start

    def apply_delta(self, delta: DatasetDelta) -> UncertainDataset:
        """Advance the served dataset one delta without a daemon restart.

        The warm DUAL index is *updated* (only changed objects' trees are
        rebuilt, :meth:`DualIndex.apply_delta`) rather than rebuilt from
        scratch, and the engine repairs its σ matrices through the delta.
        The cross-query cache is then **retained** rather than cleared:
        when the repair was mostly verbatim copies
        (``copied_fraction >= RETENTION_MIN_COPIED_FRACTION``), every
        current-epoch DUAL entry whose σ matrix survived the engine's
        σ-LRU is re-folded into a full result and re-keyed to the new
        epoch, preserving its LRU rank; everything else is dropped.  The
        counters keep their lifetime totals, and the retained/repaired/
        retained-hit counters account for what the repair saved.

        Must be called from the same single thread that computes queries
        (:class:`repro.serve.server.ArspSession.apply_delta` guarantees
        that ordering for concurrent callers).
        """
        old_epoch = self.dataset.epoch
        engine = self._engine
        if engine is None:
            # Nothing warm to repair from: advance the dataset and drop
            # the cache (its old-epoch keys could never hit again anyway).
            new_dataset = self.dataset.apply_delta(delta)
            self.dataset = new_dataset
            self.cache.clear()
            self.deltas_applied += 1
            return new_dataset
        new_dataset = engine.apply_delta(delta)
        self.dataset = new_dataset
        repair = engine.last_repair or {}
        survivors = []
        if repair.get("copied_fraction", 0.0) >= \
                RETENTION_MIN_COPIED_FRACTION:
            # Survivors needed real recompute work exactly when the plan
            # had a recomputed area (the per-entry shape is shared).
            repaired_flag = repair.get("entry_recomputed", 0) > 0
            new_epoch = new_dataset.epoch
            for key in self.cache:  # stalest first: LRU rank survives
                name, ckey = key
                if ckey[-1] != ("epoch", old_epoch):
                    continue
                if name != "dual" or ckey[0] != "ratio":
                    continue  # no σ matrix to repair these from
                full = engine.refold(ckey[1])
                if full is None:
                    continue  # σ-LRU evicted this constraint's matrix
                survivors.append(
                    ((name, ckey[:-1] + (("epoch", new_epoch),)),
                     full, repaired_flag))
        self.cache.retain_across_delta(survivors)
        self.deltas_applied += 1
        return new_dataset

    # ------------------------------------------------------------------
    def resolve_algorithm(self, constraints,
                          algorithm: Optional[str] = None) -> str:
        """Canonical algorithm name for a query (the cache-key half).

        Mirrors :func:`repro.core.arsp.compute_arsp`'s ``auto`` rule so a
        served ``auto`` query and a one-shot ``auto`` call pick the same
        implementation.
        """
        requested = algorithm or self.config.algorithm
        if requested == "auto":
            requested = ("dual"
                         if isinstance(constraints, WeightRatioConstraints)
                         else "bnb")
        return canonical_name(requested)

    def query_key(self, constraints,
                  algorithm: Optional[str] = None) -> Tuple:
        """Cross-query cache identity at the *current* dataset epoch.

        ``(algorithm, constraint identity @ epoch)`` — the epoch component
        is why a key minted before a delta can never hit afterwards: the
        post-delta service only ever looks up post-delta keys.
        """
        return (self.resolve_algorithm(constraints, algorithm),
                constraint_key(constraints, epoch=self.dataset.epoch))

    # ------------------------------------------------------------------
    def full_result(self, constraints, algorithm: Optional[str] = None
                    ) -> Tuple[Dict[int, float], bool,
                               Optional[Dict[str, object]]]:
        """The complete result for a constraint: cached or computed.

        Returns ``(full, cached, execution_summary)``.  The cached value
        is never handed out by reference — callers get what they need via
        :meth:`project` — so cache entries stay immutable.
        """
        name = self.resolve_algorithm(constraints, algorithm)
        key = (name, constraint_key(constraints, epoch=self.dataset.epoch))
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True, None
        full, execution = self._compute(name, constraints)
        self.cache.put(key, full)
        return full, False, execution

    def _compute(self, name: str, constraints
                 ) -> Tuple[Dict[int, float], Optional[Dict[str, object]]]:
        config = self.config
        if (name == "dual" and config.workers is None
                and isinstance(constraints, WeightRatioConstraints)):
            # Warm path: byte-identical to serial one-shot DUAL, minus the
            # per-invocation forest build.  Routed through the engine so
            # the constraint's σ matrix sticks around as the repair
            # source for cache retention across deltas.
            return self.engine.query(constraints), None
        result = compute_arsp(self.dataset, constraints, algorithm=name,
                              workers=config.workers, backend=config.backend,
                              policy=config.policy,
                              **({"leaf_size": config.leaf_size}
                                 if name == "dual" else {}))
        execution = getattr(result, "execution", None)
        return dict(result), (execution.summary()
                              if execution is not None else None)

    def project(self, full: Dict[int, float],
                targets: Optional[Iterable[int]] = None) -> Dict[int, float]:
        """Slice a full result down to the instances of ``targets``.

        ``targets`` are object ids; ``None`` means all of them.  The
        projection walks ``dataset.instances`` — the canonical order every
        algorithm emits — so projected dicts fingerprint identically to
        the matching slice of a one-shot result.
        """
        if targets is None:
            return dict(full)
        wanted = set()
        for target in targets:
            object_id = int(target)
            if not 0 <= object_id < self.dataset.num_objects:
                raise ValueError(
                    "target object %d out of range [0, %d)"
                    % (object_id, self.dataset.num_objects))
            wanted.add(object_id)
        return {instance.instance_id: full[instance.instance_id]
                for instance in self.dataset.instances
                if instance.object_id in wanted}

    def query(self, constraints, targets: Optional[Iterable[int]] = None,
              algorithm: Optional[str] = None) -> QueryOutcome:
        """One served query: full result (cached or computed) + projection."""
        start = time.perf_counter()
        name = self.resolve_algorithm(constraints, algorithm)
        full, cached, execution = self.full_result(constraints, name)
        result = self.project(full, targets)
        self.queries_answered += 1
        return QueryOutcome(result=result, full=full, algorithm=name,
                            cached=cached, execution=execution,
                            elapsed_s=time.perf_counter() - start)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-ready daemon statistics (the ``stats`` op's payload)."""
        dataset = self.dataset
        return {
            "queries": self.queries_answered,
            "deltas": self.deltas_applied,
            "cache": self.cache.stats(),
            "warm_index": self._engine is not None,
            "maintenance": (self._engine.stats()
                            if self._engine is not None else None),
            "dataset": {
                "objects": dataset.num_objects,
                "instances": dataset.num_instances,
                "dimension": dataset.dimension,
                "epoch": dataset.epoch,
            },
            "config": {
                "algorithm": self.config.algorithm,
                "workers": self.config.workers,
                "backend": self.config.backend,
                "cache_limit": self.config.cache_limit,
            },
        }
