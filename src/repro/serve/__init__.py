"""The serving layer: a long-lived ARSP query daemon (PR 7).

One-shot ``repro arsp`` rebuilds the dataset and every index for a single
query; this package keeps them alive.  :class:`ArspService` owns a loaded
dataset, a warm :class:`~repro.algorithms.dual.DualIndex`, and the shared
cross-query :class:`~repro.core.cache.QueryCache`; :class:`ArspSession`
puts an asyncio front on it (single compute thread, single-flight
coalescing of concurrent identical queries); :class:`ArspServer` speaks a
line-delimited JSON protocol over TCP, and :class:`ServeClient` talks to
either — in process for tests, over a socket for real traffic.  See
docs/ARCHITECTURE.md, "Serving layer".
"""

from .protocol import (PROTOCOL_VERSION, decode_constraints, decode_result,
                       dump_message, encode_constraints, encode_result,
                       load_message)
from .service import ArspService, QueryOutcome, ServeConfig
from .server import ArspServer, ArspSession
from .client import ServeClient

__all__ = [
    "PROTOCOL_VERSION",
    "ArspServer",
    "ArspService",
    "ArspSession",
    "QueryOutcome",
    "ServeClient",
    "ServeConfig",
    "decode_constraints",
    "decode_result",
    "dump_message",
    "encode_constraints",
    "encode_result",
    "load_message",
]
