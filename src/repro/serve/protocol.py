"""Wire protocol of the serve daemon: line-delimited JSON messages.

One request and one response per line, each a single JSON object.  The
protocol is deliberately boring — the serving guarantees live in the
*encodings*:

* Probabilities cross the wire as JSON numbers.  Python's ``json`` emits
  the shortest ``repr`` that round-trips a float exactly, so a decoded
  result is bit-identical to the dict the service computed — the
  determinism fingerprints in ``tests/serve/`` rely on this.
* Instance ids become JSON object keys (strings); :func:`decode_result`
  restores ``int`` keys *in wire order*, which the service emits in
  canonical instance order — so a decoded result also fingerprints
  identically to one-shot :func:`repro.core.arsp.compute_arsp`.

Requests (the ``op`` field selects one; it defaults to ``query``)::

    {"op": "query", "constraints": SPEC, "targets": [0, 3] | null,
     "algorithm": "auto", "id": ANY}
    {"op": "stats"} | {"op": "ping"} | {"op": "shutdown"}

Constraint specifications (``SPEC`` above) mirror the constraint types
:func:`repro.core.arsp.compute_arsp` accepts::

    {"type": "weight-ratio", "ranges": [[0.5, 2.0], ...]}
    {"type": "weak-ranking", "dimension": 4, "constraints": 2}
    {"type": "linear", "dimension": 3, "matrix": [[...]], "rhs": [...]}
    {"type": "vertices", "vertices": [[...], ...]}

Every response carries ``ok`` (errors answer ``{"ok": false, "error":
...}`` without closing the connection) and echoes the request's ``id``
when present.

Query responses additionally report the daemon's cache accounting and
dataset generation: the ``cache`` field is the
:meth:`QueryCache.stats() <repro.core.cache.QueryCache.stats>` snapshot
(hits/misses/evictions plus the delta-retention counters ``retained``,
``repaired`` and ``retained_hits``), and ``epoch`` is the served
dataset's delta generation — it advances by one per ``apply_delta``, so
clients can tell which generation answered.  These fields are additive;
the protocol version stays 1 (it is bumped only on incompatible
changes, and old clients simply ignore keys they do not know).
"""

from __future__ import annotations

import json
from typing import Dict, Mapping

import numpy as np

from ..core.preference import (LinearConstraints, PreferenceRegion,
                               WeightRatioConstraints)

#: Bumped on incompatible protocol changes; ``ping`` reports it.
PROTOCOL_VERSION = 1


def encode_constraints(constraints) -> Dict[str, object]:
    """Constraint object -> JSON-ready specification dict."""
    if isinstance(constraints, WeightRatioConstraints):
        return {"type": "weight-ratio",
                "ranges": [[low, high] for low, high in constraints.ranges]}
    if isinstance(constraints, LinearConstraints):
        return {"type": "linear", "dimension": constraints.dimension,
                "matrix": constraints.matrix.tolist(),
                "rhs": constraints.rhs.tolist()}
    if isinstance(constraints, PreferenceRegion):
        return {"type": "vertices",
                "vertices": constraints.vertices.tolist()}
    array = np.asarray(constraints, dtype=float)
    if array.ndim == 2:
        return {"type": "vertices", "vertices": array.tolist()}
    raise TypeError("unsupported constraint specification: %r"
                    % (type(constraints),))


def decode_constraints(spec: Mapping):
    """Specification dict -> the constraint object it describes.

    ``weak-ranking`` exists only on the wire: it names the WR generator of
    the experiments (:func:`repro.data.constraints.weak_ranking_constraints`)
    so clients can request the paper's constraint families without
    shipping a matrix.
    """
    if not isinstance(spec, Mapping):
        raise ValueError("constraint spec must be a JSON object, got %r"
                         % (type(spec).__name__,))
    kind = spec.get("type")
    if kind == "weight-ratio":
        ranges = spec.get("ranges")
        if not ranges:
            raise ValueError("weight-ratio spec requires non-empty 'ranges'")
        return WeightRatioConstraints([tuple(pair) for pair in ranges])
    if kind == "weak-ranking":
        dimension = spec.get("dimension")
        if dimension is None:
            raise ValueError("weak-ranking spec requires 'dimension'")
        return LinearConstraints.weak_ranking(int(dimension),
                                              spec.get("constraints"))
    if kind == "linear":
        dimension = spec.get("dimension")
        if dimension is None:
            raise ValueError("linear spec requires 'dimension'")
        return LinearConstraints(int(dimension), spec.get("matrix"),
                                 spec.get("rhs"))
    if kind == "vertices":
        vertices = spec.get("vertices")
        if not vertices:
            raise ValueError("vertices spec requires non-empty 'vertices'")
        return PreferenceRegion(vertices)
    raise ValueError("unknown constraint spec type %r" % (kind,))


def encode_result(result: Mapping[int, float]) -> Dict[str, float]:
    """Result dict -> wire form (string keys, canonical order preserved)."""
    return {str(instance_id): float(value)
            for instance_id, value in result.items()}


def decode_result(wire: Mapping[str, float]) -> Dict[int, float]:
    """Wire form -> result dict with ``int`` keys, wire order preserved."""
    return {int(instance_id): float(value)
            for instance_id, value in wire.items()}


def dump_message(message: Mapping) -> bytes:
    """One protocol message -> one newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":"),
                       allow_nan=False) + "\n").encode("utf-8")


def load_message(line: bytes) -> Dict:
    """One received line -> the message dict (raises ValueError on junk)."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects, got %r"
                         % (type(message).__name__,))
    return message
