"""Client for the serve daemon: in-process for tests, TCP for real traffic.

Both transports speak the exact same protocol.  The in-process transport
does not shortcut past the wire: every request and response is serialized
through :func:`repro.serve.protocol.dump_message` and parsed back, so an
in-process test exercises the same JSON round-trip a socket does — the
byte-identity fingerprints proved in process hold over TCP for free.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, Optional

from .protocol import (decode_result, dump_message, encode_constraints,
                       load_message)
from .server import ArspSession


class ServeClient:
    """Async client; build with :meth:`in_process` or :meth:`connect`."""

    def __init__(self, session: Optional[ArspSession] = None,
                 reader: Optional[asyncio.StreamReader] = None,
                 writer: Optional[asyncio.StreamWriter] = None):
        if (session is None) == (reader is None):
            raise ValueError("exactly one transport required: a session "
                             "(in process) or a reader/writer pair (TCP)")
        self._session = session
        self._reader = reader
        self._writer = writer

    @classmethod
    def in_process(cls, session: ArspSession) -> "ServeClient":
        """Client dispatching straight into a session, wire-faithfully."""
        return cls(session=session)

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        """Client over a TCP connection to a running :class:`ArspServer`."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader=reader, writer=writer)

    # ------------------------------------------------------------------
    async def request(self, message: Dict) -> Dict:
        """Send one protocol message, return the parsed response."""
        if self._session is not None:
            # Full wire round-trip even in process (see module docstring).
            response = await self._session.handle_request(
                load_message(dump_message(message)))
            return load_message(dump_message(response))
        self._writer.write(dump_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return load_message(line)

    async def query(self, constraints=None,
                    targets: Optional[Iterable[int]] = None,
                    algorithm: Optional[str] = None,
                    spec: Optional[Dict] = None,
                    request_id=None) -> Dict:
        """One ARSP query; returns the response with ``result`` decoded.

        ``constraints`` is a constraint object (encoded for the wire
        here); ``spec`` passes a raw specification dict through instead.
        Raises ``RuntimeError`` on an error response.
        """
        if (constraints is None) == (spec is None):
            raise ValueError("exactly one of constraints/spec is required")
        message: Dict[str, object] = {
            "op": "query",
            "constraints": (spec if spec is not None
                            else encode_constraints(constraints)),
        }
        if targets is not None:
            message["targets"] = [int(target) for target in targets]
        if algorithm is not None:
            message["algorithm"] = algorithm
        if request_id is not None:
            message["id"] = request_id
        response = await self.request(message)
        if not response.get("ok"):
            raise RuntimeError("serve query failed: %s"
                               % response.get("error", "unknown error"))
        response["result"] = decode_result(response["result"])
        return response

    async def stats(self) -> Dict:
        response = await self.request({"op": "stats"})
        if not response.get("ok"):
            raise RuntimeError("stats failed: %s" % response.get("error"))
        return response["stats"]

    async def ping(self) -> Dict:
        return await self.request({"op": "ping"})

    async def shutdown(self) -> Dict:
        """Ask the daemon to stop serving (the response still arrives)."""
        return await self.request({"op": "shutdown"})

    async def close(self) -> None:
        """Close the TCP transport (no-op for in-process clients)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None
