"""Spatial index substrate used by the ARSP and eclipse algorithms.

Everything here is implemented from scratch on top of numpy arrays:

* :mod:`repro.index.kdtree` — a bulk-built kd-tree with weighted aggregate
  queries driven by caller-supplied node classifiers (used by the DUAL
  algorithms and the eclipse DUAL-S algorithm).
* :mod:`repro.index.quadtree` — a region quadtree (used by the QUAD eclipse
  baseline and available to the quadtree-traversal experiments).
* :mod:`repro.index.rtree` — an R-tree supporting STR bulk loading,
  incremental insertion and aggregated window queries (used by the
  branch-and-bound algorithm).
"""

from .bbox import BoundingBox
from .kdtree import KDTree
from .quadtree import QuadTree
from .rtree import RTree

__all__ = ["BoundingBox", "KDTree", "QuadTree", "RTree"]
