"""Spatial index substrate used by the ARSP and eclipse algorithms.

Everything here is implemented from scratch on top of numpy arrays:

* :mod:`repro.index.kdtree` — a bulk-built kd-tree with weighted aggregate
  queries driven by caller-supplied node classifiers (used by the DUAL
  algorithms and the eclipse DUAL-S algorithm).
* :mod:`repro.index.quadtree` — a region quadtree (used by the QUAD eclipse
  baseline and available to the quadtree-traversal experiments).
* :mod:`repro.index.rtree` — aggregated R-trees supporting STR bulk
  loading, incremental insertion and window aggregate queries (used by the
  branch-and-bound algorithm): the pointer-based :class:`RTree` scalar
  reference, the struct-of-arrays :class:`FlatRTree` with batched
  level-order traversals, and the :class:`RTreeForest` packing all
  per-object trees into one shared array block.
"""

from .bbox import BoundingBox
from .kdtree import KDTree
from .quadtree import QuadTree
from .rtree import FlatRTree, RTree, RTreeForest

__all__ = ["BoundingBox", "FlatRTree", "KDTree", "QuadTree", "RTree",
           "RTreeForest"]
