"""Axis-aligned bounding boxes shared by the spatial indexes."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class BoundingBox:
    """A closed axis-aligned box ``[lo, hi]`` in ``R^d``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape:
            raise ValueError("lo and hi must have the same shape")
        if np.any(self.lo > self.hi):
            raise ValueError("lo must be component-wise at most hi")

    @classmethod
    def of_points(cls, points: np.ndarray) -> "BoundingBox":
        """Smallest box containing every row of ``points``."""
        array = np.asarray(points, dtype=float)
        if array.size == 0:
            raise ValueError("cannot build a bounding box of zero points")
        return cls(array.min(axis=0), array.max(axis=0))

    @property
    def dimension(self) -> int:
        return self.lo.shape[0]

    def contains_point(self, point: Sequence[float]) -> bool:
        point = np.asarray(point, dtype=float)
        return bool(np.all(self.lo <= point) and np.all(point <= self.hi))

    def contains_box(self, other: "BoundingBox") -> bool:
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def intersects_box(self, other: "BoundingBox") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(np.minimum(self.lo, other.lo),
                           np.maximum(self.hi, other.hi))

    def expanded_to(self, point: Sequence[float]) -> "BoundingBox":
        point = np.asarray(point, dtype=float)
        return BoundingBox(np.minimum(self.lo, point),
                           np.maximum(self.hi, point))

    def margin_increase(self, point: Sequence[float]) -> float:
        """Increase in perimeter ("margin") when adding ``point``.

        Used by the R-tree ChooseLeaf heuristic; cheaper and better behaved
        than volume in high dimensions where many boxes are degenerate.
        """
        point = np.asarray(point, dtype=float)
        new_lo = np.minimum(self.lo, point)
        new_hi = np.maximum(self.hi, point)
        return float(np.sum(new_hi - new_lo) - np.sum(self.hi - self.lo))

    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "BoundingBox(lo=%s, hi=%s)" % (self.lo.tolist(), self.hi.tolist())


def union_boxes(boxes: Iterable[BoundingBox]) -> BoundingBox:
    """Union of a non-empty iterable of boxes."""
    boxes = list(boxes)
    if not boxes:
        raise ValueError("cannot union zero boxes")
    result = boxes[0]
    for box in boxes[1:]:
        result = result.union(box)
    return result
