"""A point region quadtree (generalised to ``2^d`` children per node).

The quadtree splits every dimension at the midpoint of the node's box, which
is the partitioning scheme used by the QDTT+ variant of the tree-traversal
algorithm and by the QUAD eclipse baseline.  Points are stored in the leaves;
splitting stops at a leaf capacity or a maximum depth (whichever comes
first), so degenerate inputs with many identical points terminate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class QuadTreeNode:
    """One node of the quadtree."""

    __slots__ = ("lo", "hi", "indices", "children", "depth")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, depth: int):
        self.lo = lo
        self.hi = hi
        self.indices: Optional[List[int]] = []
        self.children: Optional[List["QuadTreeNode"]] = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0


class QuadTree:
    """Region quadtree over a fixed set of points."""

    def __init__(self, points: np.ndarray, leaf_size: int = 16,
                 max_depth: int = 32,
                 bounds: Optional[Sequence[Sequence[float]]] = None):
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        self.leaf_size = max(1, int(leaf_size))
        self.max_depth = max(1, int(max_depth))
        n, d = self.points.shape
        if bounds is not None:
            lo = np.asarray(bounds[0], dtype=float)
            hi = np.asarray(bounds[1], dtype=float)
        elif n:
            lo = self.points.min(axis=0)
            hi = self.points.max(axis=0)
        else:
            lo = np.zeros(d)
            hi = np.ones(d)
        # Guard against zero-width boxes so midpoint splits make progress.
        hi = np.where(hi > lo, hi, lo + 1.0)
        self.root = QuadTreeNode(lo, hi, depth=0)
        for index in range(n):
            self._insert(self.root, index)

    @property
    def dimension(self) -> int:
        return self.points.shape[1]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _insert(self, node: QuadTreeNode, index: int) -> None:
        while True:
            if node.is_leaf:
                node.indices.append(index)
                if (len(node.indices) > self.leaf_size
                        and node.depth < self.max_depth):
                    self._split(node)
                return
            node = node.children[self._child_index(node, self.points[index])]

    def _split(self, node: QuadTreeNode) -> None:
        center = node.center()
        d = self.dimension
        children: List[QuadTreeNode] = []
        for code in range(1 << d):
            lo = node.lo.copy()
            hi = node.hi.copy()
            for dim in range(d):
                if (code >> dim) & 1:
                    lo[dim] = center[dim]
                else:
                    hi[dim] = center[dim]
            children.append(QuadTreeNode(lo, hi, node.depth + 1))
        indices = node.indices
        node.indices = None
        node.children = children
        for index in indices:
            child = children[self._child_index(node, self.points[index])]
            child.indices.append(index)
            if (len(child.indices) > self.leaf_size
                    and child.depth < self.max_depth):
                self._split(child)

    def _child_index(self, node: QuadTreeNode, point: np.ndarray) -> int:
        center = node.center()
        code = 0
        for dim in range(self.dimension):
            if point[dim] >= center[dim]:
                code |= 1 << dim
        return code

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_indices(self, lo: Sequence[float], hi: Sequence[float]
                      ) -> List[int]:
        """Indices of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if np.any(node.lo > hi) or np.any(node.hi < lo):
                continue
            if node.is_leaf:
                for index in node.indices:
                    point = self.points[index]
                    if np.all(lo <= point) and np.all(point <= hi):
                        result.append(index)
            else:
                stack.extend(node.children)
        return result

    def count_nodes(self) -> int:
        """Total number of nodes (used by tests and diagnostics)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count
