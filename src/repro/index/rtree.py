"""An aggregated R-tree.

Two usage patterns from the paper are covered:

* a *static* R-tree over the raw instance set ``I`` built with STR bulk
  loading — the branch-and-bound algorithm traverses it in best-first order;
* *incremental* aggregated R-trees ``R_1, ..., R_m`` (one per uncertain
  object) into which mapped instances are inserted as they are processed and
  which answer window aggregate queries ("sum of probabilities of points
  dominated by the query corner").

Every node maintains the total weight of the points below it so a window
aggregate query can add whole subtrees without opening them.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


class RTreeEntry:
    """A point stored in a leaf, with its weight and an opaque payload."""

    __slots__ = ("point", "weight", "data")

    def __init__(self, point: np.ndarray, weight: float, data):
        self.point = point
        self.weight = weight
        self.data = data


class RTreeNode:
    """One node of the R-tree."""

    __slots__ = ("is_leaf", "entries", "children", "lo", "hi", "weight_sum",
                 "parent")

    def __init__(self, is_leaf: bool, dimension: int):
        self.is_leaf = is_leaf
        self.entries: List[RTreeEntry] = []
        self.children: List["RTreeNode"] = []
        self.lo = np.full(dimension, np.inf)
        self.hi = np.full(dimension, -np.inf)
        self.weight_sum = 0.0
        self.parent: Optional["RTreeNode"] = None

    def recompute_bounds(self) -> None:
        """Recompute MBR and aggregate weight from children / entries."""
        if self.is_leaf:
            if self.entries:
                points = np.asarray([entry.point for entry in self.entries])
                self.lo = points.min(axis=0)
                self.hi = points.max(axis=0)
                self.weight_sum = float(sum(e.weight for e in self.entries))
            else:
                self.lo[:] = np.inf
                self.hi[:] = -np.inf
                self.weight_sum = 0.0
        else:
            self.lo = np.min([child.lo for child in self.children], axis=0)
            self.hi = np.max([child.hi for child in self.children], axis=0)
            self.weight_sum = float(sum(c.weight_sum for c in self.children))

    def extend_bounds(self, point: np.ndarray, weight: float) -> None:
        """Grow the MBR to include ``point`` and add its weight."""
        self.lo = np.minimum(self.lo, point)
        self.hi = np.maximum(self.hi, point)
        self.weight_sum += weight

    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


class RTree:
    """Aggregated R-tree supporting bulk loading and insertion."""

    def __init__(self, dimension: int, max_entries: int = 16):
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)
        self.max_entries = max(4, int(max_entries))
        self.min_entries = max(2, self.max_entries // 3)
        self.root = RTreeNode(is_leaf=True, dimension=self.dimension)
        self.size = 0

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, points: np.ndarray,
                  weights: Optional[Sequence[float]] = None,
                  data: Optional[Sequence] = None,
                  max_entries: int = 16) -> "RTree":
        """Build an R-tree from a static point set with STR packing."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        n, dimension = points.shape
        tree = cls(dimension, max_entries=max_entries)
        if n == 0:
            return tree
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=float)
        payloads = list(data) if data is not None else [None] * n

        entries = [RTreeEntry(points[i], float(weights[i]), payloads[i])
                   for i in range(n)]
        leaves = tree._pack_entries(entries)
        tree.root = tree._pack_upwards(leaves)
        tree.size = n
        return tree

    def _pack_entries(self, entries: List[RTreeEntry]) -> List[RTreeNode]:
        """Pack leaf entries into leaves using recursive STR tiling."""
        groups = _str_partition([entry.point for entry in entries],
                                list(range(len(entries))),
                                self.max_entries, axis=0)
        leaves = []
        for group in groups:
            leaf = RTreeNode(is_leaf=True, dimension=self.dimension)
            leaf.entries = [entries[i] for i in group]
            leaf.recompute_bounds()
            leaves.append(leaf)
        return leaves

    def _pack_upwards(self, nodes: List[RTreeNode]) -> RTreeNode:
        """Pack a level of nodes into parents until a single root remains."""
        while len(nodes) > 1:
            centers = [((node.lo + node.hi) / 2.0) for node in nodes]
            groups = _str_partition(centers, list(range(len(nodes))),
                                    self.max_entries, axis=0)
            parents = []
            for group in groups:
                parent = RTreeNode(is_leaf=False, dimension=self.dimension)
                parent.children = [nodes[i] for i in group]
                for child in parent.children:
                    child.parent = parent
                parent.recompute_bounds()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float], weight: float = 1.0,
               data=None) -> None:
        """Insert a weighted point, maintaining node aggregates."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValueError("point must have dimension %d" % self.dimension)
        entry = RTreeEntry(point, float(weight), data)
        leaf = self._choose_leaf(self.root, point, weight)
        leaf.entries.append(entry)
        leaf.recompute_bounds()
        self._handle_overflow(leaf)
        self.size += 1

    def _choose_leaf(self, node: RTreeNode, point: np.ndarray,
                     weight: float) -> RTreeNode:
        while not node.is_leaf:
            node.extend_bounds(point, weight)
            best = None
            best_cost = None
            for child in node.children:
                cost = _margin_increase(child.lo, child.hi, point)
                if best_cost is None or cost < best_cost:
                    best = child
                    best_cost = cost
            node = best
        return node

    def _handle_overflow(self, node: RTreeNode) -> None:
        while len(node) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = RTreeNode(is_leaf=False, dimension=self.dimension)
                new_root.children = [node, sibling]
                node.parent = new_root
                sibling.parent = new_root
                new_root.recompute_bounds()
                self.root = new_root
                return
            parent.children.append(sibling)
            sibling.parent = parent
            parent.recompute_bounds()
            node = parent
        # Refresh aggregates up to the root (bounds already extended on the
        # way down; weight sums were updated there too, but a split rebuilds
        # them from scratch so walk up once to keep everything exact).
        current = node.parent
        while current is not None:
            current.recompute_bounds()
            current = current.parent

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Split an overflowing node along its widest dimension."""
        sibling = RTreeNode(is_leaf=node.is_leaf, dimension=self.dimension)
        if node.is_leaf:
            points = np.asarray([entry.point for entry in node.entries])
            axis = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
            order = np.argsort(points[:, axis], kind="stable")
            half = len(order) // 2
            keep = [node.entries[i] for i in order[:half]]
            move = [node.entries[i] for i in order[half:]]
            node.entries = keep
            sibling.entries = move
        else:
            centers = np.asarray([(child.lo + child.hi) / 2.0
                                  for child in node.children])
            axis = int(np.argmax(centers.max(axis=0) - centers.min(axis=0)))
            order = np.argsort(centers[:, axis], kind="stable")
            half = len(order) // 2
            keep = [node.children[i] for i in order[:half]]
            move = [node.children[i] for i in order[half:]]
            node.children = keep
            sibling.children = move
            for child in sibling.children:
                child.parent = sibling
        node.recompute_bounds()
        sibling.recompute_bounds()
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window_aggregate(self, lo: Sequence[float], hi: Sequence[float]
                         ) -> float:
        """Total weight of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if self.size == 0:
            return 0.0
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.weight_sum == 0.0:
                continue
            if np.any(node.lo > hi) or np.any(node.hi < lo):
                continue
            if np.all(lo <= node.lo) and np.all(node.hi <= hi):
                total += node.weight_sum
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if (np.all(lo <= entry.point)
                            and np.all(entry.point <= hi)):
                        total += entry.weight
            else:
                stack.extend(node.children)
        return total

    def window_entries(self, lo: Sequence[float], hi: Sequence[float]
                       ) -> List[RTreeEntry]:
        """Entries whose points lie inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        result: List[RTreeEntry] = []
        if self.size == 0:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            if np.any(node.lo > hi) or np.any(node.hi < lo):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if (np.all(lo <= entry.point)
                            and np.all(entry.point <= hi)):
                        result.append(entry)
            else:
                stack.extend(node.children)
        return result

    def iter_entries(self) -> Iterator[RTreeEntry]:
        """Iterate over all stored entries."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry
            else:
                stack.extend(node.children)

    def total_weight(self) -> float:
        return self.root.weight_sum if self.size else 0.0

    def height(self) -> int:
        """Height of the tree (1 for a single leaf root)."""
        height = 1
        node = self.root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height


def _margin_increase(lo: np.ndarray, hi: np.ndarray,
                     point: np.ndarray) -> float:
    """Perimeter increase of the box ``[lo, hi]`` when adding ``point``."""
    new_lo = np.minimum(lo, point)
    new_hi = np.maximum(hi, point)
    return float(np.sum(new_hi - new_lo) - np.sum(hi - lo))


def _str_partition(points: Sequence[np.ndarray], indices: List[int],
                   capacity: int, axis: int) -> List[List[int]]:
    """Recursively tile ``indices`` into groups of at most ``capacity``.

    A simplified Sort-Tile-Recursive: sort by the current axis, cut into
    vertical slabs, then recurse on the next axis within each slab.
    """
    if len(indices) <= capacity:
        return [list(indices)]
    dimension = len(points[0])
    num_groups = int(np.ceil(len(indices) / capacity))
    num_slabs = int(np.ceil(num_groups ** (1.0 / max(1, dimension - axis))))
    slab_size = int(np.ceil(len(indices) / num_slabs))
    order = sorted(indices, key=lambda i: points[i][axis])
    groups: List[List[int]] = []
    next_axis = (axis + 1) % dimension
    for start in range(0, len(order), slab_size):
        slab = order[start:start + slab_size]
        if axis == dimension - 1 or len(slab) <= capacity:
            for chunk_start in range(0, len(slab), capacity):
                groups.append(slab[chunk_start:chunk_start + capacity])
        else:
            groups.extend(_str_partition(points, slab, capacity, next_axis))
    return groups
