"""Aggregated R-trees: a pointer-based reference and a flat array-backed layer.

Two usage patterns from the paper are covered:

* a *static* R-tree over the raw instance set ``I`` built with STR bulk
  loading — the branch-and-bound algorithm traverses it in best-first order;
* *incremental* aggregated R-trees ``R_1, ..., R_m`` (one per uncertain
  object) into which mapped instances are inserted as they are processed and
  which answer window aggregate queries ("sum of probabilities of points
  dominated by the query corner").

Every node maintains the total weight of the points below it so a window
aggregate query can add whole subtrees without opening them.

Three classes implement those patterns at two speeds:

:class:`RTree`
    The pointer-based tree (``RTreeNode`` objects, per-node Python
    traversal).  It remains the readable scalar reference — the flat layer
    below is pinned against it by the property tests in
    ``tests/properties/test_property_rtree.py``, in the same pattern as
    ``loop_arsp_scalar``.

:class:`FlatRTree`
    The same aggregated tree as a struct-of-arrays: contiguous ``lo`` /
    ``hi`` / ``weight`` / child-span arrays in level order (root at index
    0), produced directly by the STR bulk load.  Queries traverse whole
    frontier levels with batched NumPy comparisons
    (:meth:`FlatRTree.window_aggregate_batch` answers many query corners
    against one tree in a handful of kernel calls, mirroring DUAL's chunked
    margin matrices).

:class:`RTreeForest`
    All ``m`` per-object aggregated trees packed into one shared array
    block, answering "σ_j for every other object ``j``" for a whole batch
    of corners in a single call (:meth:`RTreeForest.dominance_aggregate`).
    Incremental insertion keeps the paper's ``R_1 … R_m`` protocol via
    per-tree append buffers (physically one tagged pending block that
    queries brute-force through the containment kernel) which merge into
    the flat layout on a size-doubling rebuild.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.kernels import points_in_boxes, points_in_boxes_rows

#: Upper bound on the number of floats a batched traversal materialises at
#: once — the (queries × nodes-or-points × dimension) comparison blocks of
#: the frontier loops.  Query batches are chunked accordingly (contract
#: rule 4 in docs/ARCHITECTURE.md).
_CHUNK_BUDGET = 4_000_000


class RTreeEntry:
    """A point stored in a leaf, with its weight and an opaque payload."""

    __slots__ = ("point", "weight", "data")

    def __init__(self, point: np.ndarray, weight: float, data):
        self.point = point
        self.weight = weight
        self.data = data


class RTreeNode:
    """One node of the pointer-based R-tree."""

    __slots__ = ("is_leaf", "entries", "children", "lo", "hi", "weight_sum",
                 "parent")

    def __init__(self, is_leaf: bool, dimension: int):
        self.is_leaf = is_leaf
        self.entries: List[RTreeEntry] = []
        self.children: List["RTreeNode"] = []
        self.lo = np.full(dimension, np.inf)
        self.hi = np.full(dimension, -np.inf)
        self.weight_sum = 0.0
        self.parent: Optional["RTreeNode"] = None

    def recompute_bounds(self) -> None:
        """Recompute MBR and aggregate weight from children / entries."""
        if self.is_leaf:
            if self.entries:
                points = np.asarray([entry.point for entry in self.entries])
                self.lo = points.min(axis=0)
                self.hi = points.max(axis=0)
                self.weight_sum = float(sum(e.weight for e in self.entries))
            else:
                self.lo[:] = np.inf
                self.hi[:] = -np.inf
                self.weight_sum = 0.0
        else:
            self.lo = np.min([child.lo for child in self.children], axis=0)
            self.hi = np.max([child.hi for child in self.children], axis=0)
            self.weight_sum = float(sum(c.weight_sum for c in self.children))

    def extend_bounds(self, point: np.ndarray, weight: float) -> None:
        """Grow the MBR to include ``point`` and add its weight."""
        self.lo = np.minimum.reduce([self.lo, point])
        self.hi = np.maximum.reduce([self.hi, point])
        self.weight_sum += weight

    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


class RTree:
    """Pointer-based aggregated R-tree supporting bulk loading and insertion.

    This is the scalar reference implementation; the hot paths run on
    :class:`FlatRTree` / :class:`RTreeForest` and are pinned against this
    class by property tests.
    """

    def __init__(self, dimension: int, max_entries: int = 16):
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)
        self.max_entries = max(4, int(max_entries))
        self.min_entries = max(2, self.max_entries // 3)
        self.root = RTreeNode(is_leaf=True, dimension=self.dimension)
        self.size = 0

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, points: np.ndarray,
                  weights: Optional[Sequence[float]] = None,
                  data: Optional[Sequence] = None,
                  max_entries: int = 16) -> "RTree":
        """Build an R-tree from a static point set with STR packing."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        n, dimension = points.shape
        tree = cls(dimension, max_entries=max_entries)
        if n == 0:
            return tree
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=float)
        payloads = list(data) if data is not None else [None] * n

        leaves = tree._pack_entries(points, weights, payloads)
        tree.root = tree._pack_upwards(leaves)
        tree.size = n
        return tree

    def _pack_entries(self, points: np.ndarray, weights: np.ndarray,
                      payloads: Sequence) -> List[RTreeNode]:
        """Pack points into leaves using recursive STR tiling.

        The partition runs on index arrays over the flat coordinate matrix
        — entry objects are only materialised per finished leaf, and leaf
        bounds/aggregates come from array reductions over the group instead
        of per-entry ``recompute_bounds`` list building.
        """
        groups = _str_partition(points, np.arange(len(points)),
                                self.max_entries, axis=0)
        leaves = []
        for group in groups:
            leaf = RTreeNode(is_leaf=True, dimension=self.dimension)
            leaf.entries = [RTreeEntry(points[i], float(weights[i]),
                                       payloads[i]) for i in group]
            leaf.lo = points[group].min(axis=0)
            leaf.hi = points[group].max(axis=0)
            leaf.weight_sum = float(weights[group].sum())
            leaves.append(leaf)
        return leaves

    def _pack_upwards(self, nodes: List[RTreeNode]) -> RTreeNode:
        """Pack a level of nodes into parents until a single root remains."""
        while len(nodes) > 1:
            los = np.stack([node.lo for node in nodes])
            his = np.stack([node.hi for node in nodes])
            sums = np.asarray([node.weight_sum for node in nodes])
            groups = _str_partition((los + his) / 2.0,
                                    np.arange(len(nodes)),
                                    self.max_entries, axis=0)
            parents = []
            for group in groups:
                parent = RTreeNode(is_leaf=False, dimension=self.dimension)
                parent.children = [nodes[i] for i in group]
                for child in parent.children:
                    child.parent = parent
                parent.lo = los[group].min(axis=0)
                parent.hi = his[group].max(axis=0)
                parent.weight_sum = float(sums[group].sum())
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float], weight: float = 1.0,
               data=None) -> None:
        """Insert a weighted point, maintaining node aggregates."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValueError("point must have dimension %d" % self.dimension)
        entry = RTreeEntry(point, float(weight), data)
        leaf = self._choose_leaf(self.root, point, weight)
        leaf.entries.append(entry)
        leaf.recompute_bounds()
        self._handle_overflow(leaf)
        self.size += 1

    def _choose_leaf(self, node: RTreeNode, point: np.ndarray,
                     weight: float) -> RTreeNode:
        while not node.is_leaf:
            node.extend_bounds(point, weight)
            best = None
            best_cost = None
            for child in node.children:
                cost = _margin_increase(child.lo, child.hi, point)
                if best_cost is None or cost < best_cost:
                    best = child
                    best_cost = cost
            node = best
        return node

    def _handle_overflow(self, node: RTreeNode) -> None:
        while len(node) > self.max_entries:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = RTreeNode(is_leaf=False, dimension=self.dimension)
                new_root.children = [node, sibling]
                node.parent = new_root
                sibling.parent = new_root
                new_root.recompute_bounds()
                self.root = new_root
                return
            parent.children.append(sibling)
            sibling.parent = parent
            parent.recompute_bounds()
            node = parent
        # Refresh aggregates up to the root (bounds already extended on the
        # way down; weight sums were updated there too, but a split rebuilds
        # them from scratch so walk up once to keep everything exact).
        current = node.parent
        while current is not None:
            current.recompute_bounds()
            current = current.parent

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Split an overflowing node along its widest dimension."""
        sibling = RTreeNode(is_leaf=node.is_leaf, dimension=self.dimension)
        if node.is_leaf:
            points = np.asarray([entry.point for entry in node.entries])
            axis = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
            order = np.argsort(points[:, axis], kind="stable")
            half = len(order) // 2
            keep = [node.entries[i] for i in order[:half]]
            move = [node.entries[i] for i in order[half:]]
            node.entries = keep
            sibling.entries = move
        else:
            centers = np.asarray([(child.lo + child.hi) / 2.0
                                  for child in node.children])
            axis = int(np.argmax(centers.max(axis=0) - centers.min(axis=0)))
            order = np.argsort(centers[:, axis], kind="stable")
            half = len(order) // 2
            keep = [node.children[i] for i in order[:half]]
            move = [node.children[i] for i in order[half:]]
            node.children = keep
            sibling.children = move
            for child in sibling.children:
                child.parent = sibling
        node.recompute_bounds()
        sibling.recompute_bounds()
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window_aggregate(self, lo: Sequence[float], hi: Sequence[float]
                         ) -> float:
        """Total weight of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if self.size == 0:
            return 0.0
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.weight_sum == 0.0:
                continue
            if np.any(node.lo > hi) or np.any(node.hi < lo):
                continue
            if np.all(lo <= node.lo) and np.all(node.hi <= hi):
                total += node.weight_sum
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if (np.all(lo <= entry.point)
                            and np.all(entry.point <= hi)):
                        total += entry.weight
            else:
                stack.extend(node.children)
        return total

    def window_entries(self, lo: Sequence[float], hi: Sequence[float]
                       ) -> List[RTreeEntry]:
        """Entries whose points lie inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        result: List[RTreeEntry] = []
        if self.size == 0:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            if np.any(node.lo > hi) or np.any(node.hi < lo):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if (np.all(lo <= entry.point)
                            and np.all(entry.point <= hi)):
                        result.append(entry)
            else:
                stack.extend(node.children)
        return result

    def iter_entries(self) -> Iterator[RTreeEntry]:
        """Iterate over all stored entries."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry
            else:
                stack.extend(node.children)

    def total_weight(self) -> float:
        return self.root.weight_sum if self.size else 0.0

    def height(self) -> int:
        """Height of the tree (1 for a single leaf root)."""
        height = 1
        node = self.root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height


class FlatRTree:
    """Struct-of-arrays aggregated R-tree in level order.

    All nodes live in parallel arrays, stored level by level with the root
    at index 0 (STR bulk loading produces a stratified tree, so every leaf
    sits on the last level):

    ``lo`` / ``hi``
        ``(num_nodes, d)`` MBR corner arrays.
    ``weight``
        ``(num_nodes,)`` aggregate weight below each node.
    ``child_start`` / ``child_count``
        ``(num_nodes,)`` spans: for internal nodes into the node arrays
        (children of one parent are contiguous), for leaves into the point
        arrays.
    ``leaf``
        ``(num_nodes,)`` boolean mask.
    ``points`` / ``point_weights`` / ``payloads``
        The stored points in leaf order (``payloads`` is an integer array;
        it defaults to the original input positions).
    ``level_offsets``
        ``(height + 1,)`` node-array offsets of each level.

    Queries traverse whole frontier levels at once: every live
    (query, node) pair of a level is classified with batched array
    comparisons, PARTIAL leaves are expanded into (query, point) pairs and
    resolved through :func:`repro.core.kernels.points_in_boxes_rows`.
    """

    def __init__(self, dimension: int, max_entries: int = 16):
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)
        self.max_entries = max(4, int(max_entries))
        self.size = 0
        self.lo = np.empty((0, self.dimension))
        self.hi = np.empty((0, self.dimension))
        self.weight = np.empty(0)
        self.child_start = np.empty(0, dtype=int)
        self.child_count = np.empty(0, dtype=int)
        self.leaf = np.empty(0, dtype=bool)
        self.level_offsets = np.zeros(1, dtype=int)
        self.points = np.empty((0, self.dimension))
        self.point_weights = np.empty(0)
        self.payloads = np.empty(0, dtype=int)

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive, directly into the flat layout)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, points: np.ndarray,
                  weights: Optional[Sequence[float]] = None,
                  data: Optional[Sequence[int]] = None,
                  max_entries: int = 16) -> "FlatRTree":
        """Build the flat layout from a static point set with STR packing.

        The recursive tiling runs on index arrays over the flat coordinate
        matrix; leaf bounds and aggregates of every level come from three
        ``ufunc.reduceat`` sweeps, so no per-entry Python objects are built.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        n, dimension = points.shape
        tree = cls(dimension, max_entries=max_entries)
        if n == 0:
            return tree
        weights = (np.ones(n) if weights is None
                   else np.asarray(weights, dtype=float))
        payloads = (np.arange(n) if data is None
                    else np.asarray(data, dtype=int))

        groups = _str_partition(points, np.arange(n), tree.max_entries,
                                axis=0)
        perm = np.concatenate(groups)
        tree.points = points[perm]
        tree.point_weights = weights[perm]
        tree.payloads = payloads[perm]
        tree.size = n

        counts = np.asarray([len(group) for group in groups], dtype=int)
        starts = _starts_of(counts)
        # Tiers are built bottom-up: (lo, hi, weight, child_start,
        # child_count, is_leaf_level).  Child spans are values stored in the
        # rows, so reordering a tier under the parent-level STR permutation
        # moves them along for free.
        tier = [np.minimum.reduceat(tree.points, starts, axis=0),
                np.maximum.reduceat(tree.points, starts, axis=0),
                np.add.reduceat(tree.point_weights, starts),
                starts, counts, True]
        tiers = [tier]
        while len(tier[0]) > 1:
            lo, hi, weight, child_start, child_count, _ = tier
            groups = _str_partition((lo + hi) / 2.0, np.arange(len(lo)),
                                    tree.max_entries, axis=0)
            perm = np.concatenate(groups)
            tier[0] = lo = lo[perm]
            tier[1] = hi = hi[perm]
            tier[2] = weight = weight[perm]
            tier[3] = child_start[perm]
            tier[4] = child_count[perm]
            counts = np.asarray([len(group) for group in groups], dtype=int)
            starts = _starts_of(counts)
            tier = [np.minimum.reduceat(lo, starts, axis=0),
                    np.maximum.reduceat(hi, starts, axis=0),
                    np.add.reduceat(weight, starts),
                    starts, counts, False]
            tiers.append(tier)

        tiers.reverse()  # root first
        sizes = np.asarray([len(t[0]) for t in tiers], dtype=int)
        tree.level_offsets = np.concatenate([[0], np.cumsum(sizes)])
        # Internal child spans index the next level down; shift them by that
        # level's offset in the concatenated arrays.  Leaf spans stay point
        # spans.
        for index, t in enumerate(tiers):
            if not t[5]:
                t[3] = t[3] + tree.level_offsets[index + 1]
        tree.lo = np.concatenate([t[0] for t in tiers])
        tree.hi = np.concatenate([t[1] for t in tiers])
        tree.weight = np.concatenate([t[2] for t in tiers])
        tree.child_start = np.concatenate([t[3] for t in tiers])
        tree.child_count = np.concatenate([t[4] for t in tiers])
        tree.leaf = np.concatenate(
            [np.full(len(t[0]), t[5], dtype=bool) for t in tiers])
        return tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.lo.shape[0]

    def height(self) -> int:
        """Height of the tree (1 for a single leaf root, 0 when empty)."""
        return len(self.level_offsets) - 1

    def total_weight(self) -> float:
        return float(self.weight[0]) if self.size else 0.0

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def window_aggregate(self, lo: Sequence[float], hi: Sequence[float]
                         ) -> float:
        """Total weight of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        return float(self.window_aggregate_batch(lo[None, :], hi[None, :])[0])

    def window_aggregate_batch(self, los: np.ndarray, his: np.ndarray
                               ) -> np.ndarray:
        """Window aggregates of many query boxes against this one tree.

        ``los`` / ``his`` are ``(Q, d)`` corner arrays; the return value is
        the ``(Q,)`` vector of total weights inside each closed box.  The
        whole batch shares one level-order traversal; the query axis is
        chunked against the module memory budget.
        """
        los = np.atleast_2d(np.asarray(los, dtype=float))
        his = np.atleast_2d(np.asarray(his, dtype=float))
        if los.shape != his.shape or los.shape[1] != self.dimension:
            raise ValueError("query corners must be (Q, %d) arrays"
                             % self.dimension)
        num_queries = los.shape[0]
        totals = np.zeros(num_queries)
        if self.size == 0 or num_queries == 0:
            return totals
        chunk = max(1, _CHUNK_BUDGET // max(1, self.size * self.dimension))
        for start in range(0, num_queries, chunk):
            stop = min(num_queries, start + chunk)
            self._frontier_aggregate(los[start:stop], his[start:stop],
                                     totals[start:stop])
        return totals

    def _frontier_aggregate(self, los: np.ndarray, his: np.ndarray,
                            totals: np.ndarray) -> None:
        """One chunk of :meth:`window_aggregate_batch`, accumulated in place."""
        queries = np.arange(los.shape[0])
        nodes = np.zeros(los.shape[0], dtype=int)
        while len(nodes):
            node_lo = self.lo[nodes]
            node_hi = self.hi[nodes]
            query_lo = los[queries]
            query_hi = his[queries]
            disjoint = ((node_lo > query_hi).any(axis=1)
                        | (node_hi < query_lo).any(axis=1))
            contained = (~disjoint
                         & (query_lo <= node_lo).all(axis=1)
                         & (node_hi <= query_hi).all(axis=1))
            if contained.any():
                np.add.at(totals, queries[contained],
                          self.weight[nodes[contained]])
            partial = ~(disjoint | contained)
            at_leaf = partial & self.leaf[nodes]
            if at_leaf.any():
                counts = self.child_count[nodes[at_leaf]]
                rows = _span_indices(self.child_start[nodes[at_leaf]], counts)
                pair_queries = np.repeat(queries[at_leaf], counts)
                inside = points_in_boxes_rows(self.points[rows],
                                              los[pair_queries],
                                              his[pair_queries])
                np.add.at(totals, pair_queries[inside],
                          self.point_weights[rows[inside]])
            internal = partial & ~self.leaf[nodes]
            counts = self.child_count[nodes[internal]]
            queries = np.repeat(queries[internal], counts)
            nodes = _span_indices(self.child_start[nodes[internal]], counts)


class RTreeForest:
    """All per-object aggregated R-trees packed into one shared array block.

    The forest keeps the paper's incremental ``R_1 … R_m`` protocol —
    :meth:`insert` appends one weighted point to one tree — but stores the
    trees as a single set of flat node arrays plus one grouped point block,
    so a σ query for a whole batch of corners runs against *every* tree in
    a handful of kernel calls instead of ``m`` Python tree walks:

    * inserts land in per-tree append buffers (physically one shared
      pending block tagged with tree ids);
    * when the pending block outgrows the flat part, the whole forest is
      rebuilt — one stable sort groups the points by tree, one ``reduceat``
      sweep yields every root box, trees that fit one leaf (the common
      case: per-object instance counts are small) become single nodes, and
      larger trees splice their :class:`FlatRTree` levels into the shared
      block.  The size-doubling trigger keeps total rebuild work
      ``O(n log n)``;
    * :meth:`dominance_aggregate` classifies all tree roots against all
      query corners with one dense comparison, descends only the straddling
      (corner, tree) pairs level by level through the shared block, and
      brute-forces the pending block through the containment kernel.
    """

    def __init__(self, num_trees: int, dimension: int, max_entries: int = 16):
        if num_trees < 0:
            raise ValueError("num_trees must be non-negative")
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.num_trees = int(num_trees)
        self.dimension = int(dimension)
        self.max_entries = max(4, int(max_entries))
        self.sizes = np.zeros(self.num_trees, dtype=int)
        # Pending block (per-tree append buffers, tagged with tree ids).
        self._pend_points: List[np.ndarray] = []
        self._pend_trees: List[int] = []
        self._pend_weights: List[float] = []
        self._pend_cache: Optional[Tuple[np.ndarray, np.ndarray,
                                         np.ndarray]] = None
        # Flat part: grouped point block plus the shared node block.
        self._points = np.empty((0, self.dimension))
        self._point_weights = np.empty(0)
        self._point_trees = np.empty(0, dtype=int)
        self._node_lo = np.empty((0, self.dimension))
        self._node_hi = np.empty((0, self.dimension))
        self._node_weight = np.empty(0)
        self._node_child_start = np.empty(0, dtype=int)
        self._node_child_count = np.empty(0, dtype=int)
        self._node_leaf = np.empty(0, dtype=bool)
        self._tree_root = np.full(self.num_trees, -1, dtype=int)
        # Dense per-tree root views of the flat part (±inf / 0 when empty).
        self._root_lo = np.full((self.num_trees, self.dimension), np.inf)
        self._root_hi = np.full((self.num_trees, self.dimension), -np.inf)
        self._root_weight = np.zeros(self.num_trees)
        # Lazy-invalidation state of the delta protocol: a retired tree's
        # flat points stay in the block (unreachable — its root view is
        # emptied and its ``_tree_root`` detached) until a compaction
        # rebuild drops them.
        self._tree_dead_flat = np.zeros(self.num_trees, dtype=bool)
        self._dead_flat_count = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return (self._points.shape[0] - self._dead_flat_count
                + len(self._pend_points))

    @property
    def pending_count(self) -> int:
        return len(self._pend_points)

    @property
    def dead_count(self) -> int:
        """Retired flat points awaiting compaction (delta bookkeeping)."""
        return self._dead_flat_count

    def insert(self, tree_id: int, point: Sequence[float],
               weight: float = 1.0) -> None:
        """Append a weighted point to tree ``tree_id``."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimension,):
            raise ValueError("point must have dimension %d" % self.dimension)
        if not 0 <= tree_id < self.num_trees:
            raise ValueError("tree_id out of range")
        self._pend_points.append(point.copy())
        self._pend_trees.append(int(tree_id))
        self._pend_weights.append(float(weight))
        self._pend_cache = None
        self.sizes[tree_id] += 1
        if len(self._pend_points) > max(4 * self.max_entries,
                                        self._points.shape[0]
                                        - self._dead_flat_count):
            self.flush()

    def remove_tree(self, tree_id: int) -> None:
        """Retire one tree: drop its pending entries, detach its flat part.

        The delta protocol's *update* path: the tree's root view is
        emptied and its node subtree detached immediately (so queries and
        :meth:`total_weights` stop seeing it at once), but its flat points
        stay in the shared block as dead weight until enough mass has
        retired to warrant a compaction rebuild — the size-halving mirror
        of :meth:`insert`'s size-doubling trigger.  The tree id stays
        valid: later inserts to it start a fresh pending buffer.
        """
        if not 0 <= tree_id < self.num_trees:
            raise ValueError("tree_id out of range")
        if tree_id in self._pend_trees:
            keep = [i for i, tree in enumerate(self._pend_trees)
                    if tree != tree_id]
            self._pend_points = [self._pend_points[i] for i in keep]
            self._pend_trees = [self._pend_trees[i] for i in keep]
            self._pend_weights = [self._pend_weights[i] for i in keep]
            self._pend_cache = None
        if not self._tree_dead_flat[tree_id]:
            flat = int(np.count_nonzero(self._point_trees == tree_id))
            if flat:
                self._tree_dead_flat[tree_id] = True
                self._dead_flat_count += flat
        self.sizes[tree_id] = 0
        self._root_lo[tree_id] = np.inf
        self._root_hi[tree_id] = -np.inf
        self._root_weight[tree_id] = 0.0
        self._tree_root[tree_id] = -1
        if self._dead_flat_count * 2 > self._points.shape[0]:
            self.flush()

    def replace_tree(self, tree_id: int, points: np.ndarray,
                     weights: Optional[Sequence[float]] = None) -> None:
        """Swap one tree's whole point set (the delta *update* operation)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if weights is None:
            weights = np.ones(points.shape[0])
        weights = np.asarray(weights, dtype=float)
        if weights.shape[0] != points.shape[0]:
            raise ValueError("one weight per replacement point required")
        self.remove_tree(tree_id)
        for point, weight in zip(points, weights):
            self.insert(tree_id, point, float(weight))

    def flush(self) -> None:
        """Merge pending buffers and drop retired points (full rebuild)."""
        pending = self._pending_arrays()
        if pending is None and not self._dead_flat_count:
            return
        if pending is None:
            points = np.empty((0, self.dimension))
            tree_ids = np.empty(0, dtype=int)
            weights = np.empty(0)
        else:
            points, tree_ids, weights = pending
        self._pend_points, self._pend_trees, self._pend_weights = [], [], []
        self._pend_cache = None
        flat_points, flat_weights, flat_trees = self._live_flat()
        self._tree_dead_flat[:] = False
        self._dead_flat_count = 0
        self._rebuild(np.concatenate([flat_points, points]),
                      np.concatenate([flat_weights, weights]),
                      np.concatenate([flat_trees, tree_ids]))

    def _live_flat(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat block minus the retired trees' dead points."""
        if not self._dead_flat_count:
            return self._points, self._point_weights, self._point_trees
        keep = ~self._tree_dead_flat[self._point_trees]
        return (self._points[keep], self._point_weights[keep],
                self._point_trees[keep])

    def _pending_arrays(self) -> Optional[Tuple[np.ndarray, np.ndarray,
                                                np.ndarray]]:
        if not self._pend_points:
            return None
        if self._pend_cache is None:
            self._pend_cache = (np.stack(self._pend_points),
                                np.asarray(self._pend_trees, dtype=int),
                                np.asarray(self._pend_weights, dtype=float))
        return self._pend_cache

    def _rebuild(self, points: np.ndarray, weights: np.ndarray,
                 tree_ids: np.ndarray) -> None:
        """Rebuild the shared block from the full (point, tree) multiset."""
        order = np.argsort(tree_ids, kind="stable")
        points = points[order]
        weights = weights[order]
        tree_ids = tree_ids[order]
        counts = np.bincount(tree_ids, minlength=self.num_trees)
        starts = _starts_of(counts)
        occupied = np.flatnonzero(counts)

        self._root_lo = np.full((self.num_trees, self.dimension), np.inf)
        self._root_hi = np.full((self.num_trees, self.dimension), -np.inf)
        self._root_weight = np.zeros(self.num_trees)
        if len(occupied):
            segment_starts = starts[occupied]
            self._root_lo[occupied] = np.minimum.reduceat(
                points, segment_starts, axis=0)
            self._root_hi[occupied] = np.maximum.reduceat(
                points, segment_starts, axis=0)
            self._root_weight[occupied] = np.add.reduceat(
                weights, segment_starts)

        lo_parts: List[np.ndarray] = []
        hi_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        start_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        leaf_parts: List[np.ndarray] = []
        tree_root = np.full(self.num_trees, -1, dtype=int)
        offset = 0
        for tree_id in occupied:
            begin = int(starts[tree_id])
            count = int(counts[tree_id])
            tree_root[tree_id] = offset
            if count <= self.max_entries:
                # Single-leaf tree straight from the dense root views.
                lo_parts.append(self._root_lo[tree_id][None, :])
                hi_parts.append(self._root_hi[tree_id][None, :])
                weight_parts.append(self._root_weight[tree_id][None])
                start_parts.append(np.asarray([begin], dtype=int))
                count_parts.append(np.asarray([count], dtype=int))
                leaf_parts.append(np.ones(1, dtype=bool))
                offset += 1
                continue
            subtree = FlatRTree.bulk_load(points[begin:begin + count],
                                          weights=weights[begin:begin + count],
                                          max_entries=self.max_entries)
            # The subtree reordered its points into leaf order; splice that
            # order back into the grouped block so its leaf spans apply.
            points[begin:begin + count] = subtree.points
            weights[begin:begin + count] = subtree.point_weights
            child_start = subtree.child_start.copy()
            child_start[subtree.leaf] += begin
            child_start[~subtree.leaf] += offset
            lo_parts.append(subtree.lo)
            hi_parts.append(subtree.hi)
            weight_parts.append(subtree.weight)
            start_parts.append(child_start)
            count_parts.append(subtree.child_count)
            leaf_parts.append(subtree.leaf)
            offset += subtree.num_nodes

        self._points = points
        self._point_weights = weights
        self._point_trees = tree_ids
        self._tree_root = tree_root
        if lo_parts:
            self._node_lo = np.concatenate(lo_parts)
            self._node_hi = np.concatenate(hi_parts)
            self._node_weight = np.concatenate(weight_parts)
            self._node_child_start = np.concatenate(start_parts)
            self._node_child_count = np.concatenate(count_parts)
            self._node_leaf = np.concatenate(leaf_parts)
        else:
            self._node_lo = np.empty((0, self.dimension))
            self._node_hi = np.empty((0, self.dimension))
            self._node_weight = np.empty(0)
            self._node_child_start = np.empty(0, dtype=int)
            self._node_child_count = np.empty(0, dtype=int)
            self._node_leaf = np.empty(0, dtype=bool)

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def total_weights(self) -> np.ndarray:
        """Per-tree total weights (flat part plus pending buffers)."""
        totals = self._root_weight.copy()
        pending = self._pending_arrays()
        if pending is not None:
            _, tree_ids, weights = pending
            np.add.at(totals, tree_ids, weights)
        return totals

    def dominance_aggregate(self, corners: np.ndarray) -> np.ndarray:
        """σ matrix of a corner batch against every tree in the forest.

        ``corners`` is a ``(B, d)`` array; the return value is the
        ``(B, num_trees)`` matrix whose ``[b, j]`` entry is the total weight
        of tree ``j``'s points weakly dominated by ``corners[b]`` (the
        window aggregate over ``[-inf, corners[b]]``) — exactly the σ
        values B&B's per-survivor loop used to collect one
        ``window_aggregate`` call at a time.
        """
        corners = np.atleast_2d(np.asarray(corners, dtype=float))
        if corners.shape[1] != self.dimension:
            raise ValueError("corners must be (B, %d)" % self.dimension)
        batch = corners.shape[0]
        sigma = np.zeros((batch, self.num_trees))
        if batch == 0 or self.num_trees == 0:
            return sigma
        widest = max(self.num_trees, self._points.shape[0],
                     len(self._pend_points), 1)
        chunk = max(1, _CHUNK_BUDGET // (widest * self.dimension))
        for start in range(0, batch, chunk):
            stop = min(batch, start + chunk)
            self._dominance_chunk(corners[start:stop], sigma[start:stop])
        return sigma

    def _dominance_chunk(self, corners: np.ndarray, sigma: np.ndarray
                         ) -> None:
        """One corner chunk of :meth:`dominance_aggregate`, in place."""
        # Pending block: brute-force containment through the kernel.
        pending = self._pending_arrays()
        if pending is not None:
            pend_points, pend_trees, pend_weights = pending
            los = np.broadcast_to(np.full(self.dimension, -np.inf),
                                  corners.shape)
            mask = points_in_boxes(pend_points, los, corners)
            rows, cols = np.nonzero(mask)
            np.add.at(sigma, (rows, pend_trees[cols]), pend_weights[cols])
        if not self._points.shape[0]:
            return
        # Flat part: dense root classification (a dominance window's lower
        # corner is -inf, so containment collapses to hi <= corner).
        query_hi = corners[:, None, :]
        disjoint = (self._root_lo[None, :, :] > query_hi).any(axis=2)
        contained = ~disjoint & (self._root_hi[None, :, :]
                                 <= query_hi).all(axis=2)
        sigma += np.where(contained, self._root_weight[None, :], 0.0)
        partial = ~(disjoint | contained)
        batch_idx, tree_idx = np.nonzero(partial)
        if not len(batch_idx):
            return
        # Straddling (corner, tree) pairs descend the shared node block one
        # frontier level at a time.
        nodes = self._tree_root[tree_idx]
        while len(nodes):
            node_lo = self._node_lo[nodes]
            node_hi = self._node_hi[nodes]
            query = corners[batch_idx]
            disjoint = (node_lo > query).any(axis=1)
            contained = ~disjoint & (node_hi <= query).all(axis=1)
            if contained.any():
                np.add.at(sigma, (batch_idx[contained], tree_idx[contained]),
                          self._node_weight[nodes[contained]])
            partial = ~(disjoint | contained)
            at_leaf = partial & self._node_leaf[nodes]
            if at_leaf.any():
                counts = self._node_child_count[nodes[at_leaf]]
                rows = _span_indices(self._node_child_start[nodes[at_leaf]],
                                     counts)
                pair_batch = np.repeat(batch_idx[at_leaf], counts)
                pair_tree = np.repeat(tree_idx[at_leaf], counts)
                entry_points = self._points[rows]
                inside = points_in_boxes_rows(
                    entry_points,
                    np.broadcast_to(np.full(self.dimension, -np.inf),
                                    entry_points.shape),
                    corners[pair_batch])
                np.add.at(sigma, (pair_batch[inside], pair_tree[inside]),
                          self._point_weights[rows[inside]])
            internal = partial & ~self._node_leaf[nodes]
            counts = self._node_child_count[nodes[internal]]
            batch_idx = np.repeat(batch_idx[internal], counts)
            tree_idx = np.repeat(tree_idx[internal], counts)
            nodes = _span_indices(self._node_child_start[nodes[internal]],
                                  counts)


def _margin_increase(lo: np.ndarray, hi: np.ndarray,
                     point: np.ndarray) -> float:
    """Perimeter increase of the box ``[lo, hi]`` when adding ``point``."""
    new_lo = np.minimum(lo, point)
    new_hi = np.maximum(hi, point)
    return float(np.sum(new_hi - new_lo) - np.sum(hi - lo))


def _starts_of(counts: np.ndarray) -> np.ndarray:
    """Segment start offsets of consecutive groups with the given sizes."""
    return np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)


def _span_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` for every span."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=int)
    first = np.repeat(starts - _starts_of(counts), counts)
    return first + np.arange(total)


def _str_partition(points: np.ndarray, indices: np.ndarray,
                   capacity: int, axis: int) -> List[np.ndarray]:
    """Recursively tile ``indices`` into groups of at most ``capacity``.

    A simplified Sort-Tile-Recursive: sort by the current axis, cut into
    vertical slabs, then recurse on the next axis within each slab.  The
    partition operates on index arrays over the shared ``(n, d)`` coordinate
    matrix — one stable ``argsort`` per slab instead of per-entry Python
    comparisons — and is shared by the pointer tree, the flat tree and the
    forest, so all three produce the same tiling.
    """
    indices = np.asarray(indices, dtype=int)
    if len(indices) <= capacity:
        return [indices]
    dimension = points.shape[1]
    num_groups = int(np.ceil(len(indices) / capacity))
    num_slabs = int(np.ceil(num_groups ** (1.0 / max(1, dimension - axis))))
    slab_size = int(np.ceil(len(indices) / num_slabs))
    order = indices[np.argsort(points[indices, axis], kind="stable")]
    groups: List[np.ndarray] = []
    next_axis = (axis + 1) % dimension
    for start in range(0, len(order), slab_size):
        slab = order[start:start + slab_size]
        if axis == dimension - 1 or len(slab) <= capacity:
            for chunk_start in range(0, len(slab), capacity):
                groups.append(slab[chunk_start:chunk_start + capacity])
        else:
            groups.extend(_str_partition(points, slab, capacity, next_axis))
    return groups
