"""A bulk-built kd-tree with weighted aggregate queries.

The tree stores points together with optional per-point weights and payload
values.  Besides classic axis-aligned range queries it supports *generalised
aggregate queries* driven by a caller-supplied node classifier: the caller
inspects a node's bounding box and decides whether every point inside it
satisfies the query predicate (``INSIDE``), no point can (``OUTSIDE``) or the
node must be opened (``PARTIAL``).  This is exactly the access pattern needed
by the half-space style queries of the DUAL algorithms, whose query regions
are not axis-aligned boxes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

#: Classifier verdicts for generalised queries.
INSIDE = 1
OUTSIDE = -1
PARTIAL = 0

NodeClassifier = Callable[[np.ndarray, np.ndarray], int]
PointPredicate = Callable[[np.ndarray], bool]

#: Batched variants: a batch classifier maps stacked ``(k, d)`` lo/hi corner
#: arrays to a ``(k,)`` verdict array and a batch predicate maps a ``(k, d)``
#: point block to a ``(k,)`` boolean mask.
BatchNodeClassifier = Callable[[np.ndarray, np.ndarray], np.ndarray]
BatchPointPredicate = Callable[[np.ndarray], np.ndarray]


class KDTreeNode:
    """One node of the kd-tree (leaf or internal)."""

    __slots__ = ("lo", "hi", "indices", "left", "right", "weight_sum")

    def __init__(self, lo: np.ndarray, hi: np.ndarray,
                 indices: Optional[np.ndarray], weight_sum: float):
        self.lo = lo
        self.hi = hi
        self.indices = indices
        self.left: Optional["KDTreeNode"] = None
        self.right: Optional["KDTreeNode"] = None
        self.weight_sum = weight_sum

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KDTree:
    """kd-tree over a fixed set of points.

    Parameters
    ----------
    points:
        ``(n, d)`` array of point coordinates.
    weights:
        Optional per-point weights used by aggregate queries (defaults to 1).
    data:
        Optional per-point payload returned by reporting queries.
    leaf_size:
        Maximum number of points stored in a leaf.
    """

    def __init__(self, points: np.ndarray,
                 weights: Optional[Sequence[float]] = None,
                 data: Optional[Sequence] = None,
                 leaf_size: int = 16):
        self.points = np.asarray(points, dtype=float)
        if self.points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        n = self.points.shape[0]
        self.weights = (np.ones(n) if weights is None
                        else np.asarray(weights, dtype=float))
        if self.weights.shape[0] != n:
            raise ValueError("weights must have one entry per point")
        self.data = list(data) if data is not None else None
        if self.data is not None and len(self.data) != n:
            raise ValueError("data must have one entry per point")
        self.leaf_size = max(1, int(leaf_size))
        self.root: Optional[KDTreeNode] = (
            self._build(np.arange(n), depth=0) if n else None)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray, depth: int) -> KDTreeNode:
        subset = self.points[indices]
        lo = subset.min(axis=0)
        hi = subset.max(axis=0)
        weight_sum = float(self.weights[indices].sum())
        if len(indices) <= self.leaf_size:
            return KDTreeNode(lo, hi, indices, weight_sum)
        # Split along the widest dimension at the median; fall back to a leaf
        # if every point is identical (zero spread in all dimensions).
        spreads = hi - lo
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            return KDTreeNode(lo, hi, indices, weight_sum)
        order = np.argsort(subset[:, axis], kind="stable")
        half = len(indices) // 2
        left_idx = indices[order[:half]]
        right_idx = indices[order[half:]]
        node = KDTreeNode(lo, hi, None, weight_sum)
        node.left = self._build(left_idx, depth + 1)
        node.right = self._build(right_idx, depth + 1)
        return node

    def __len__(self) -> int:
        return self.points.shape[0]

    # ------------------------------------------------------------------
    # Axis-aligned range queries
    # ------------------------------------------------------------------
    def range_indices(self, lo: Sequence[float], hi: Sequence[float]
                      ) -> List[int]:
        """Indices of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)

        def classifier(node_lo: np.ndarray, node_hi: np.ndarray) -> int:
            if np.any(node_lo > hi) or np.any(node_hi < lo):
                return OUTSIDE
            if np.all(lo <= node_lo) and np.all(node_hi <= hi):
                return INSIDE
            return PARTIAL

        def predicate(point: np.ndarray) -> bool:
            return bool(np.all(lo <= point) and np.all(point <= hi))

        return self.report(classifier, predicate)

    def range_weight(self, lo: Sequence[float], hi: Sequence[float]) -> float:
        """Total weight of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)

        def classifier(node_lo: np.ndarray, node_hi: np.ndarray) -> int:
            if np.any(node_lo > hi) or np.any(node_hi < lo):
                return OUTSIDE
            if np.all(lo <= node_lo) and np.all(node_hi <= hi):
                return INSIDE
            return PARTIAL

        def predicate(point: np.ndarray) -> bool:
            return bool(np.all(lo <= point) and np.all(point <= hi))

        def batch_predicate(points: np.ndarray) -> np.ndarray:
            return np.all((lo <= points) & (points <= hi), axis=1)

        return self.aggregate(classifier, predicate,
                              batch_predicate=batch_predicate)

    # ------------------------------------------------------------------
    # Generalised queries
    # ------------------------------------------------------------------
    def aggregate(self, classifier: NodeClassifier,
                  predicate: PointPredicate,
                  batch_predicate: Optional[BatchPointPredicate] = None
                  ) -> float:
        """Total weight of points satisfying ``predicate``.

        ``classifier(lo, hi)`` must be conservative: return ``INSIDE`` only
        when every point of the box satisfies the predicate and ``OUTSIDE``
        only when none can.  When ``batch_predicate`` is given, PARTIAL
        leaves are resolved by scoring all their points in one call instead
        of evaluating ``predicate`` point by point.
        """
        if self.root is None:
            return 0.0
        total = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            verdict = classifier(node.lo, node.hi)
            if verdict == OUTSIDE:
                continue
            if verdict == INSIDE:
                total += node.weight_sum
                continue
            if node.is_leaf:
                if batch_predicate is not None:
                    mask = batch_predicate(self.points[node.indices])
                    total += float(self.weights[node.indices][mask].sum())
                else:
                    for index in node.indices:
                        if predicate(self.points[index]):
                            total += self.weights[index]
            else:
                stack.append(node.left)
                stack.append(node.right)
        return total

    def aggregate_frontier(self, batch_classifier: BatchNodeClassifier,
                           batch_predicate: BatchPointPredicate) -> float:
        """Batched :meth:`aggregate`: classify whole frontier levels at once.

        The traversal proceeds level by level; at each level the lo/hi
        corners of every live node are stacked and handed to
        ``batch_classifier`` in a single call.  PARTIAL leaves are collected
        and their points scored with one ``batch_predicate`` call at the
        end.  This trades the per-node Python closure calls of
        :meth:`aggregate` for a handful of vectorized kernel evaluations,
        which is what the DUAL hot path needs (see PERFORMANCE.md).
        """
        if self.root is None:
            return 0.0
        total = 0.0
        frontier: List[KDTreeNode] = [self.root]
        pending_points: List[np.ndarray] = []
        pending_weights: List[np.ndarray] = []
        while frontier:
            los = np.stack([node.lo for node in frontier])
            his = np.stack([node.hi for node in frontier])
            verdicts = batch_classifier(los, his)
            next_frontier: List[KDTreeNode] = []
            for node, verdict in zip(frontier, verdicts):
                if verdict == OUTSIDE:
                    continue
                if verdict == INSIDE:
                    total += node.weight_sum
                elif node.is_leaf:
                    pending_points.append(self.points[node.indices])
                    pending_weights.append(self.weights[node.indices])
                else:
                    next_frontier.append(node.left)
                    next_frontier.append(node.right)
            frontier = next_frontier
        if pending_points:
            points = np.concatenate(pending_points)
            weights = np.concatenate(pending_weights)
            mask = np.asarray(batch_predicate(points))
            total += float(weights[mask].sum())
        return total

    def report(self, classifier: NodeClassifier,
               predicate: PointPredicate) -> List[int]:
        """Indices of points satisfying ``predicate``."""
        result: List[int] = []
        if self.root is None:
            return result
        stack = [self.root]
        while stack:
            node = stack.pop()
            verdict = classifier(node.lo, node.hi)
            if verdict == OUTSIDE:
                continue
            if verdict == INSIDE:
                result.extend(self._collect(node))
                continue
            if node.is_leaf:
                for index in node.indices:
                    if predicate(self.points[index]):
                        result.append(int(index))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return result

    def any_match(self, classifier: NodeClassifier,
                  predicate: PointPredicate) -> bool:
        """Early-exit emptiness query: does any point satisfy the predicate?"""
        if self.root is None:
            return False
        stack = [self.root]
        while stack:
            node = stack.pop()
            verdict = classifier(node.lo, node.hi)
            if verdict == OUTSIDE:
                continue
            if verdict == INSIDE:
                return True
            if node.is_leaf:
                for index in node.indices:
                    if predicate(self.points[index]):
                        return True
            else:
                stack.append(node.left)
                stack.append(node.right)
        return False

    def _collect(self, node: KDTreeNode) -> List[int]:
        indices: List[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                indices.extend(int(i) for i in current.indices)
            else:
                stack.append(current.left)
                stack.append(current.right)
        return indices


def build_forest(points: np.ndarray, object_ids: np.ndarray,
                 num_objects: int,
                 weights: Optional[Sequence[float]] = None,
                 leaf_size: int = 16) -> List["KDTree"]:
    """One bulk construction of the per-object kd-tree forest.

    Builds the ``num_objects`` trees the DUAL index needs — one tree over
    each object's instances — from the flat ``(n, d)`` instance matrix in a
    single pass: the points are grouped by ``object_ids`` with one stable
    sort, and the bounding box and weight aggregate of every single-leaf
    tree (the common case, since per-object instance counts are small) come
    from three ``ufunc.reduceat`` sweeps over the grouped arrays instead of
    per-object Python reductions.  Only objects with more instances than
    ``leaf_size`` fall back to the recursive :class:`KDTree` build.  The
    resulting trees are exactly those of constructing each ``KDTree``
    separately (leaf point order follows the grouped instance order, which
    no aggregate query observes).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    n, dimension = points.shape
    object_ids = np.asarray(object_ids)
    if object_ids.shape != (n,):
        raise ValueError("object_ids must have one entry per point")
    weights = (np.ones(n) if weights is None
               else np.asarray(weights, dtype=float))
    if weights.shape != (n,):
        raise ValueError("weights must have one entry per point")
    leaf_size = max(1, int(leaf_size))

    order = np.argsort(object_ids, kind="stable")
    grouped_points = points[order]
    grouped_weights = weights[order]
    counts = np.bincount(object_ids, minlength=num_objects)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)

    occupied = np.flatnonzero(counts)
    box_lo = np.empty((num_objects, dimension))
    box_hi = np.empty((num_objects, dimension))
    weight_sums = np.zeros(num_objects)
    if len(occupied):
        segment_starts = starts[occupied]
        box_lo[occupied] = np.minimum.reduceat(grouped_points,
                                               segment_starts, axis=0)
        box_hi[occupied] = np.maximum.reduceat(grouped_points,
                                               segment_starts, axis=0)
        weight_sums[occupied] = np.add.reduceat(grouped_weights,
                                                segment_starts)

    forest: List[KDTree] = []
    for object_id in range(num_objects):
        count = int(counts[object_id])
        begin = int(starts[object_id])
        segment_points = grouped_points[begin:begin + count]
        segment_weights = grouped_weights[begin:begin + count]
        if count > leaf_size:
            forest.append(KDTree(segment_points, weights=segment_weights,
                                 leaf_size=leaf_size))
            continue
        tree = KDTree.__new__(KDTree)
        tree.points = segment_points
        tree.weights = segment_weights
        tree.data = None
        tree.leaf_size = leaf_size
        tree.root = (KDTreeNode(box_lo[object_id], box_hi[object_id],
                                np.arange(count),
                                float(weight_sums[object_id]))
                     if count else None)
        forest.append(tree)
    return forest
