"""The workload-matrix registry (the paper's Section V evaluation matrix).

The paper evaluates every algorithm across a *matrix* of workloads: the
three synthetic centre distributions (IND, ANTI, CORR) and the three real
datasets (IIP, CAR, NBA — simulated stand-ins here, see
:mod:`repro.data.real`).  This module names each of those workloads once so
the bench harness (:mod:`repro.experiments.perf`), the tests and future
sweeps all agree on what "the ANTI workload" means.

Because the registered algorithms do not all accept the same constraint
class, a built :class:`Workload` carries several constraint-matched
*variants* of the same underlying data:

``wr``
    The workload dataset with weak-ranking linear constraints
    (``c = d - 1``) — the generic cell run by LOOP, the tree traversals
    and B&B.
``ratio``
    The same dataset with the equivalent weight-ratio box
    ``[0.5, 2]^(d-1)`` required by DUAL.
``ratio-2d``
    The projection of the dataset onto its first two attributes with a
    one-range ratio box, for the 2-d specialised DUAL-MS.  Projecting (as
    the paper's Fig. 6(d) does for the real data) keeps the distribution's
    character: an ANTI projection stays anti-correlated, a CORR projection
    correlated.
``tiny-wr``
    A shrunk prefix of the dataset (few objects, at most two instances
    each) whose possible worlds stay enumerable, for ENUM.

ANTI is the distribution where pruning-based algorithms behave worst (the
skyline grows), so a bench matrix without it can silently hide regressions;
see PERFORMANCE.md for the measured distribution-sensitivity table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.dataset import UncertainDataset
from ..core.preference import WeightRatioConstraints
from ..data.constraints import weak_ranking_constraints
from ..data.real import car_dataset, iip_dataset, nba_dataset
from ..data.synthetic import SyntheticConfig, generate_uncertain_dataset

#: Variant keys of a built workload (see module docstring).
VARIANT_WR = "wr"
VARIANT_RATIO = "ratio"
VARIANT_RATIO_2D = "ratio-2d"
VARIANT_TINY = "tiny-wr"
VARIANTS = (VARIANT_WR, VARIANT_RATIO, VARIANT_RATIO_2D, VARIANT_TINY)

#: Which variant each registered algorithm consumes; algorithms not listed
#: run the generic ``wr`` cell.
VARIANT_FOR_ALGORITHM: Dict[str, str] = {
    "enum": VARIANT_TINY,
    "dual": VARIANT_RATIO,
    "dual-ms": VARIANT_RATIO_2D,
}


def variant_for_algorithm(algorithm: str) -> str:
    """The variant key the given registered algorithm runs on."""
    return VARIANT_FOR_ALGORITHM.get(algorithm, VARIANT_WR)


@dataclass(frozen=True)
class WorkloadScale:
    """Scaled sizes shared by every workload of one bench profile.

    The synthetic fields mirror the paper's notation (``m``, ``cnt``,
    ``d``, ``l``); the real-data fields pick the stand-in sizes.  ENUM's
    shrunk variant is bounded by ``enum_objects`` × ``enum_instances``.
    """

    num_objects: int = 192
    max_instances: int = 4
    dimension: int = 4
    region_length: float = 0.2
    seed: int = 2024
    enum_objects: int = 7
    enum_instances: int = 2
    iip_records: int = 384
    car_models: int = 96
    car_instances: int = 6
    nba_players: int = 48
    nba_games: int = 8


@dataclass(frozen=True)
class WorkloadVariant:
    """One (dataset, constraints) cell of a built workload."""

    dataset: UncertainDataset
    constraints: object
    constraints_label: str

    def describe(self) -> Dict[str, object]:
        """JSON-ready size/constraint descriptor of the variant."""
        return {
            "num_objects": self.dataset.num_objects,
            "num_instances": self.dataset.num_instances,
            "dimension": self.dataset.dimension,
            "constraints": self.constraints_label,
        }


@dataclass(frozen=True)
class Workload:
    """A named workload with all constraint-matched variants built."""

    name: str
    kind: str
    description: str
    variants: Dict[str, WorkloadVariant]

    def variant(self, algorithm: str) -> WorkloadVariant:
        """The variant the given registered algorithm runs on."""
        return self.variants[variant_for_algorithm(algorithm)]


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry: how to build a workload's base dataset at a scale."""

    name: str
    kind: str  # "synthetic" or "real"
    description: str
    builder: Callable[[WorkloadScale], UncertainDataset]


def _ratio_box(dimension: int) -> WeightRatioConstraints:
    return WeightRatioConstraints([(0.5, 2.0)] * (dimension - 1))


def _build_variants(dataset: UncertainDataset,
                    scale: WorkloadScale) -> Dict[str, WorkloadVariant]:
    dimension = dataset.dimension
    flat = dataset if dimension == 2 else dataset.project(range(2))
    tiny = (dataset.subset(range(min(scale.enum_objects,
                                     dataset.num_objects)))
            .truncate_instances(scale.enum_instances))
    return {
        VARIANT_WR: WorkloadVariant(
            dataset, weak_ranking_constraints(dimension),
            "WR(c=%d)" % (dimension - 1)),
        VARIANT_RATIO: WorkloadVariant(
            dataset, _ratio_box(dimension),
            "ratio[0.5,2]^%d" % (dimension - 1)),
        VARIANT_RATIO_2D: WorkloadVariant(
            flat, _ratio_box(2), "ratio[0.5,2]"),
        VARIANT_TINY: WorkloadVariant(
            tiny, weak_ranking_constraints(dimension),
            "WR(c=%d)" % (dimension - 1)),
    }


def _synthetic_builder(distribution: str
                       ) -> Callable[[WorkloadScale], UncertainDataset]:
    def build(scale: WorkloadScale) -> UncertainDataset:
        config = SyntheticConfig(num_objects=scale.num_objects,
                                 max_instances=scale.max_instances,
                                 dimension=scale.dimension,
                                 region_length=scale.region_length,
                                 distribution=distribution,
                                 seed=scale.seed)
        return generate_uncertain_dataset(config)
    return build


def _iip_builder(scale: WorkloadScale) -> UncertainDataset:
    return iip_dataset(num_records=scale.iip_records, seed=scale.seed)


def _car_builder(scale: WorkloadScale) -> UncertainDataset:
    return car_dataset(num_models=scale.car_models,
                       max_cars_per_model=scale.car_instances,
                       seed=scale.seed)


def _nba_builder(scale: WorkloadScale) -> UncertainDataset:
    return nba_dataset(num_players=scale.nba_players,
                       max_games=scale.nba_games, seed=scale.seed)


#: Every named workload of the paper's evaluation matrix.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "ind": WorkloadSpec(
        "ind", "synthetic", "synthetic, independent centres",
        _synthetic_builder("IND")),
    "anti": WorkloadSpec(
        "anti", "synthetic", "synthetic, anti-correlated centres",
        _synthetic_builder("ANTI")),
    "corr": WorkloadSpec(
        "corr", "synthetic", "synthetic, correlated centres",
        _synthetic_builder("CORR")),
    "iip": WorkloadSpec(
        "iip", "real", "IIP iceberg-sighting stand-in (2-d, phi=1)",
        _iip_builder),
    "car": WorkloadSpec(
        "car", "real", "CAR rental stand-in (4-d, instances per model)",
        _car_builder),
    "nba": WorkloadSpec(
        "nba", "real", "NBA game-log stand-in (8-d, instances per player)",
        _nba_builder),
}

#: The full workload axis in canonical order (synthetic first, then real).
WORKLOAD_AXIS: Tuple[str, ...] = ("ind", "anti", "corr", "iip", "car", "nba")


def available_workloads() -> List[str]:
    """Canonical names of every registered workload, in axis order."""
    return list(WORKLOAD_AXIS)


def get_workload_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in WORKLOADS:
        raise KeyError("unknown workload %r; available: %s"
                       % (name, ", ".join(available_workloads())))
    return WORKLOADS[key]


def build_workload(name: str, scale: WorkloadScale) -> Workload:
    """Build a named workload (all variants) at the given scale."""
    spec = get_workload_spec(name)
    dataset = spec.builder(scale)
    return Workload(name=spec.name, kind=spec.kind,
                    description=spec.description,
                    variants=_build_variants(dataset, scale))
