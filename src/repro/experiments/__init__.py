"""Experiment harness: the code that regenerates every table and figure.

* :mod:`repro.experiments.harness` — timing utilities and the runner that
  executes a set of ARSP algorithms on one workload.
* :mod:`repro.experiments.workloads` — the workload-matrix registry naming
  every paper workload (IND/ANTI/CORR, IIP/CAR/NBA) with their
  constraint-matched variants.
* :mod:`repro.experiments.perf` — the ``repro bench`` regression harness
  that times the algorithm × workload matrix and writes
  ``BENCH_arsp.json`` (see PERFORMANCE.md).
* :mod:`repro.experiments.effectiveness` — Table I, Table II and Fig. 4.
* :mod:`repro.experiments.figures` — the parameter sweeps of Figs. 5-8.
* :mod:`repro.experiments.reporting` — plain-text table/series formatting.
"""

from .harness import AlgorithmRun, SweepPoint, run_algorithms, time_call
from .perf import format_bench, load_bench, run_bench
from .reporting import format_series, format_table
from .workloads import available_workloads, build_workload

__all__ = [
    "AlgorithmRun",
    "SweepPoint",
    "available_workloads",
    "build_workload",
    "format_bench",
    "format_series",
    "format_table",
    "load_bench",
    "run_algorithms",
    "run_bench",
    "time_call",
]
