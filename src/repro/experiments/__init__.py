"""Experiment harness: the code that regenerates every table and figure.

* :mod:`repro.experiments.harness` — timing utilities and the runner that
  executes a set of ARSP algorithms on one workload.
* :mod:`repro.experiments.effectiveness` — Table I, Table II and Fig. 4.
* :mod:`repro.experiments.figures` — the parameter sweeps of Figs. 5-8.
* :mod:`repro.experiments.reporting` — plain-text table/series formatting.
"""

from .harness import AlgorithmRun, SweepPoint, run_algorithms, time_call
from .reporting import format_series, format_table

__all__ = [
    "AlgorithmRun",
    "SweepPoint",
    "format_series",
    "format_table",
    "run_algorithms",
    "time_call",
]
