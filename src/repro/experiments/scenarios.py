"""Time-stepped scenarios: dataset deltas + Zipf/bursty query streams.

The benchmarks elsewhere in :mod:`repro.experiments` measure *one-shot*
ARSP — a fixed dataset, a fixed constraint, one answer.  Real deployments
of the paper's setting (Section I's motivating examples — products and
reviews arriving, analysts re-asking hot preference ranges) look
different: the dataset drifts in small batches while a skewed stream of
queries arrives in bursts.  This module makes that shape a first-class,
reproducible artifact:

:class:`ScenarioSpec`
    Declarative description: base synthetic dataset parameters, the
    number of time steps, per-step insert/delete/update batch sizes, and
    a query stream drawn from a fixed constraint pool with
    Zipf-distributed popularity (rank ``k`` drawn with probability
    ``∝ k^-s``) and bursty arrivals (geometric burst sizes separated by
    exponential gaps).

:func:`build_scenario`
    Expands a spec into a fully materialised :class:`ScenarioScript` —
    the base dataset, the constraint pool, and per step one
    :class:`~repro.core.dataset.DatasetDelta` plus the arrival-timed
    query events.  All randomness flows from one
    :class:`numpy.random.SeedSequence` spawned into independent child
    streams (dataset / pool / deltas / queries, then one child per
    step), so the same seed produces the same script in any process, on
    any platform, regardless of what else consumed random numbers —
    pinned by ``tests/data/test_determinism.py``.

:func:`replay_scenario`
    Runs a script end to end in one of four modes — ``oneshot`` (full
    recompute per query, the specification), ``incremental``
    (:class:`~repro.algorithms.incremental.IncrementalArsp` σ-matrix
    maintenance), ``service`` (warm :class:`~repro.serve.service.ArspService`
    with the epoch-keyed cross-query LRU cache, σ-repaired across each
    step's delta rather than cleared), and ``daemon``
    (:class:`~repro.serve.server.ArspSession`, bursts submitted
    concurrently so identical in-flight queries coalesce).  Every mode
    folds its answers into one stream fingerprint; all four must agree
    byte for byte (``tests/experiments/test_scenarios.py``) — cache
    retention is inside that gate, so a repaired entry that diverged from
    recompute by even one bit would fail the replay-equivalence suite.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.incremental import IncrementalArsp
from ..core.arsp import compute_arsp
from ..core.dataset import DatasetDelta, ObjectSpec, UncertainDataset
from ..core.preference import WeightRatioConstraints
from ..data.synthetic import SyntheticConfig, generate_centers, \
    generate_uncertain_dataset

REPLAY_MODES = ("oneshot", "incremental", "service", "daemon")


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative scenario description (everything a seed expands from).

    Dataset knobs mirror :class:`~repro.data.synthetic.SyntheticConfig`;
    stream knobs control the constraint pool and arrival process:

    ``constraint_pool``
        Number of distinct weight-ratio constraints queries draw from.
    ``zipf_exponent``
        Popularity skew ``s``: pool rank ``k`` (1-based) is queried with
        probability ``∝ k^-s``.  ``0`` is uniform; the paper-scale
        default ``1.1`` concentrates most of the stream on a few hot
        constraints — the regime the serve cache and σ-matrix cache are
        sized for.
    ``mean_burst`` / ``mean_gap_s``
        Arrival process: burst sizes are geometric with this mean, and
        consecutive bursts are separated by exponential gaps with this
        mean (seconds).  Arrival times are part of the script so replays
        can reconstruct the offered load; replay itself runs as fast as
        the engine allows.
    """

    name: str = "scenario"
    seed: int = 0
    steps: int = 4
    # Base dataset (paper notation; scaled down from the paper defaults
    # like the benchmarks are).
    num_objects: int = 48
    max_instances: int = 4
    dimension: int = 3
    region_length: float = 0.2
    incomplete_fraction: float = 0.0
    distribution: str = "IND"
    # Per-step delta batch sizes.
    inserts_per_step: int = 2
    deletes_per_step: int = 2
    updates_per_step: int = 2
    # Query stream.
    queries_per_step: int = 12
    constraint_pool: int = 6
    zipf_exponent: float = 1.1
    mean_burst: float = 3.0
    mean_gap_s: float = 0.05

    def validate(self) -> None:
        if self.steps < 1:
            raise ValueError("a scenario needs at least one step")
        if self.num_objects < 2:
            raise ValueError("num_objects must be at least 2")
        if self.dimension < 2:
            raise ValueError("weight-ratio scenarios need dimension >= 2")
        if min(self.inserts_per_step, self.deletes_per_step,
               self.updates_per_step, self.queries_per_step) < 0:
            raise ValueError("per-step batch sizes must be non-negative")
        if self.constraint_pool < 1:
            raise ValueError("constraint_pool must be positive")
        if self.zipf_exponent < 0.0:
            raise ValueError("zipf_exponent must be non-negative")
        if self.mean_burst < 1.0:
            raise ValueError("mean_burst must be at least 1")
        if self.mean_gap_s < 0.0:
            raise ValueError("mean_gap_s must be non-negative")
        if (self.deletes_per_step + self.updates_per_step
                >= self.num_objects):
            raise ValueError("per-step deletes + updates must leave room "
                             "inside the object population")

    def synthetic_config(self) -> SyntheticConfig:
        return SyntheticConfig(
            num_objects=self.num_objects,
            max_instances=self.max_instances,
            dimension=self.dimension,
            region_length=self.region_length,
            incomplete_fraction=self.incomplete_fraction,
            distribution=self.distribution)


@dataclass(frozen=True)
class QueryEvent:
    """One arrival in the stream: when, which pool constraint, which burst."""

    arrival_s: float
    constraint_index: int
    burst: int


@dataclass(frozen=True)
class ScenarioStep:
    """One time step: apply ``delta``, then answer ``queries`` in order."""

    index: int
    delta: DatasetDelta
    queries: Tuple[QueryEvent, ...]


@dataclass(frozen=True)
class ScenarioScript:
    """A fully materialised scenario, ready to replay in any mode."""

    spec: ScenarioSpec
    base_dataset: UncertainDataset
    constraint_pool: Tuple[WeightRatioConstraints, ...]
    steps: Tuple[ScenarioStep, ...]

    @property
    def num_queries(self) -> int:
        return sum(len(step.queries) for step in self.steps)

    def fingerprint(self) -> str:
        """Stable digest of the whole script (dataset, pool, steps).

        Two processes that build the same spec must agree on this before
        any replay comparison makes sense; the cross-process determinism
        tests pin exactly that.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.spec).encode())
        for instance in self.base_dataset.instances:
            digest.update(struct.pack("<qqd", instance.instance_id,
                                      instance.object_id,
                                      instance.probability))
            digest.update(np.asarray(instance.values,
                                     dtype=float).tobytes())
        for constraints in self.constraint_pool:
            digest.update(np.asarray(constraints.ranges,
                                     dtype=float).tobytes())
        for step in self.steps:
            digest.update(_delta_bytes(step.delta))
            for event in step.queries:
                digest.update(struct.pack("<dqq", event.arrival_s,
                                          event.constraint_index,
                                          event.burst))
        return digest.hexdigest()


@dataclass
class StepReport:
    """Replay measurements for one step."""

    index: int
    num_queries: int
    seconds: float


@dataclass
class ScenarioReport:
    """What one replay of a script did, byte-comparable across modes."""

    mode: str
    script_fingerprint: str
    result_fingerprint: str
    steps: List[StepReport] = field(default_factory=list)
    engine_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(step.seconds for step in self.steps)

    @property
    def step_seconds(self) -> List[float]:
        return [step.seconds for step in self.steps]


# ----------------------------------------------------------------------
# Script generation
# ----------------------------------------------------------------------

def zipf_probabilities(pool_size: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity over pool ranks (rank 1 is hottest)."""
    ranks = np.arange(1, pool_size + 1, dtype=float)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


def build_scenario(spec: ScenarioSpec) -> ScenarioScript:
    """Expand a spec into a materialised script, deterministically.

    One :class:`numpy.random.SeedSequence` rooted at ``spec.seed`` is
    spawned into independent children — dataset, constraint pool, and
    one (delta, stream) pair per step — so every component is a pure
    function of the spec alone: changing, say, ``queries_per_step`` does
    not perturb the deltas, and no component depends on global numpy
    state or on draw ordering elsewhere in the process.
    """
    spec.validate()
    root = np.random.SeedSequence(spec.seed)
    data_seq, pool_seq, delta_seq, query_seq = root.spawn(4)

    base_dataset = generate_uncertain_dataset(
        spec.synthetic_config(), rng=np.random.default_rng(data_seq))
    constraint_pool = _build_constraint_pool(
        spec, np.random.default_rng(pool_seq))

    popularity = zipf_probabilities(spec.constraint_pool,
                                    spec.zipf_exponent)
    steps = []
    num_objects = base_dataset.num_objects
    for index, (step_delta_seq, step_query_seq) in enumerate(
            zip(delta_seq.spawn(spec.steps), query_seq.spawn(spec.steps))):
        delta = _build_delta(spec, num_objects,
                             np.random.default_rng(step_delta_seq))
        num_objects += len(delta.inserts) - len(delta.deletes)
        queries = _build_stream(spec, popularity,
                                np.random.default_rng(step_query_seq))
        steps.append(ScenarioStep(index=index, delta=delta, queries=queries))
    return ScenarioScript(spec=spec, base_dataset=base_dataset,
                          constraint_pool=constraint_pool,
                          steps=tuple(steps))


def _build_constraint_pool(spec: ScenarioSpec, rng: np.random.Generator
                           ) -> Tuple[WeightRatioConstraints, ...]:
    """``constraint_pool`` distinct weight-ratio boxes, hottest first."""
    pool = []
    for _ in range(spec.constraint_pool):
        lows = rng.uniform(0.3, 0.8, size=spec.dimension - 1)
        highs = lows * rng.uniform(1.5, 3.0, size=spec.dimension - 1)
        pool.append(WeightRatioConstraints(
            [(float(low), float(high)) for low, high in zip(lows, highs)]))
    return tuple(pool)


def _random_object_spec(spec: ScenarioSpec, rng: np.random.Generator
                        ) -> ObjectSpec:
    """One synthetic object following the paper generator's procedure.

    Mirrors :func:`~repro.data.synthetic.generate_uncertain_dataset` —
    distribution-shaped centre, clipped-normal region edge, uniform
    instances with equal probabilities — so scenario-inserted objects
    are statistically indistinguishable from base-dataset objects.
    """
    center = generate_centers(1, spec.dimension, spec.distribution, rng)[0]
    edge = float(np.clip(rng.normal(spec.region_length / 2.0,
                                    spec.region_length / 8.0),
                         0.0, spec.region_length))
    lo = np.clip(center - edge / 2.0, 0.0, 1.0)
    hi = np.clip(center + edge / 2.0, 0.0, 1.0)
    count = int(rng.integers(1, spec.max_instances + 1))
    points = rng.uniform(lo, hi, size=(count, spec.dimension))
    return ObjectSpec.make([tuple(float(x) for x in point)
                            for point in points],
                           [1.0 / count] * count)


def _build_delta(spec: ScenarioSpec, num_objects: int,
                 rng: np.random.Generator) -> DatasetDelta:
    """One step's edit batch against a population of ``num_objects``."""
    touched = min(spec.deletes_per_step + spec.updates_per_step,
                  num_objects - 1)
    chosen = (rng.choice(num_objects, size=touched, replace=False)
              if touched else np.empty(0, dtype=int))
    num_deletes = min(spec.deletes_per_step, touched)
    deletes = tuple(int(x) for x in np.sort(chosen[:num_deletes]))
    updates = tuple((int(x), _random_object_spec(spec, rng))
                    for x in np.sort(chosen[num_deletes:]))
    inserts = tuple(_random_object_spec(spec, rng)
                    for _ in range(spec.inserts_per_step))
    return DatasetDelta(inserts=inserts, deletes=deletes, updates=updates)


def _build_stream(spec: ScenarioSpec, popularity: np.ndarray,
                  rng: np.random.Generator) -> Tuple[QueryEvent, ...]:
    """``queries_per_step`` arrivals: geometric bursts, exponential gaps."""
    events: List[QueryEvent] = []
    clock = 0.0
    burst_id = 0
    while len(events) < spec.queries_per_step:
        clock += float(rng.exponential(spec.mean_gap_s))
        size = int(rng.geometric(1.0 / spec.mean_burst))
        size = min(size, spec.queries_per_step - len(events))
        # One hot pick per burst: bursts model one client hammering one
        # constraint, which is what single-flight coalescing absorbs.
        constraint = int(rng.choice(len(popularity), p=popularity))
        for _ in range(size):
            events.append(QueryEvent(arrival_s=clock,
                                     constraint_index=constraint,
                                     burst=burst_id))
            clock += 1e-4
        burst_id += 1
    return tuple(events)


def _delta_bytes(delta: DatasetDelta) -> bytes:
    digest = hashlib.sha256()
    for spec in delta.inserts:
        digest.update(np.asarray(spec.instances, dtype=float).tobytes())
        digest.update(np.asarray(spec.probabilities, dtype=float).tobytes())
    digest.update(np.asarray(delta.deletes, dtype=np.int64).tobytes())
    for object_id, spec in delta.updates:
        digest.update(struct.pack("<q", object_id))
        digest.update(np.asarray(spec.instances, dtype=float).tobytes())
        digest.update(np.asarray(spec.probabilities, dtype=float).tobytes())
    return digest.digest()


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

def replay_scenario(script: ScenarioScript, mode: str = "oneshot",
                    workers: Optional[int] = None,
                    backend: Optional[str] = None,
                    cache_limit: Optional[int] = None) -> ScenarioReport:
    """Replay a script end to end; all modes must fingerprint identically.

    ``workers``/``backend`` shard the per-query compute in ``oneshot``
    mode (the other modes run the warm serial DUAL path, which is
    byte-identical to sharded execution by the PR 5 parity suite).
    ``cache_limit`` overrides the serve cache size in the ``service`` and
    ``daemon`` modes.
    """
    if mode not in REPLAY_MODES:
        raise ValueError("unknown replay mode %r (expected one of %s)"
                         % (mode, ", ".join(REPLAY_MODES)))
    replay = {"oneshot": _replay_oneshot,
              "incremental": _replay_incremental,
              "service": _replay_service,
              "daemon": _replay_daemon}[mode]
    return replay(script, workers=workers, backend=backend,
                  cache_limit=cache_limit)


def stream_fingerprint(results) -> str:
    """Digest of an ordered sequence of full ARSP results.

    Per result this is the same ``struct.pack("<qd", id, probability)``
    walk the determinism suite uses for single results, chained across
    the stream — so two replays agree iff every query's answer is
    byte-identical and arrives in the same stream position.
    """
    digest = hashlib.sha256()
    for result in results:
        for instance_id, probability in result.items():
            digest.update(struct.pack("<qd", instance_id, probability))
        digest.update(b"|")
    return digest.hexdigest()


def _timed_steps(script, answer_step):
    """Shared replay loop: per step, time ``answer_step`` and collect."""
    import time as _time
    reports = []
    results = []
    for step in script.steps:
        start = _time.perf_counter()
        step_results = answer_step(step)
        seconds = _time.perf_counter() - start
        results.extend(step_results)
        reports.append(StepReport(index=step.index,
                                  num_queries=len(step.queries),
                                  seconds=seconds))
    return reports, results


def _replay_oneshot(script: ScenarioScript, workers=None, backend=None,
                    cache_limit=None) -> ScenarioReport:
    """The specification: recompute every query from scratch, per step."""
    state = {"dataset": script.base_dataset}

    def answer_step(step):
        state["dataset"] = state["dataset"].apply_delta(step.delta)
        dataset = state["dataset"]
        return [dict(compute_arsp(
                    dataset, script.constraint_pool[event.constraint_index],
                    algorithm="dual", workers=workers, backend=backend))
                for event in step.queries]

    reports, results = _timed_steps(script, answer_step)
    return ScenarioReport(mode="oneshot",
                          script_fingerprint=script.fingerprint(),
                          result_fingerprint=stream_fingerprint(results),
                          steps=reports,
                          engine_stats={"queries": script.num_queries})


def _replay_incremental(script: ScenarioScript, workers=None, backend=None,
                        cache_limit=None) -> ScenarioReport:
    """σ-matrix maintenance: deltas repair, repeats fold cached matrices."""
    engine = IncrementalArsp(script.base_dataset)

    def answer_step(step):
        engine.apply_delta(step.delta)
        return [engine.query(script.constraint_pool[event.constraint_index])
                for event in step.queries]

    reports, results = _timed_steps(script, answer_step)
    return ScenarioReport(mode="incremental",
                          script_fingerprint=script.fingerprint(),
                          result_fingerprint=stream_fingerprint(results),
                          steps=reports, engine_stats=engine.stats())


def _serve_config(cache_limit):
    from ..serve.service import ServeConfig
    config = ServeConfig()
    if cache_limit is not None:
        config.cache_limit = int(cache_limit)
    return config


def _replay_service(script: ScenarioScript, workers=None, backend=None,
                    cache_limit=None) -> ScenarioReport:
    """Warm service: cross-query LRU absorbs the Zipf repetition, and
    retained entries carry hot constraints across the per-step deltas."""
    from ..serve.service import ArspService
    service = ArspService(script.base_dataset,
                          config=_serve_config(cache_limit))
    service.warm()

    def answer_step(step):
        service.apply_delta(step.delta)
        return [dict(service.query(
                    script.constraint_pool[event.constraint_index]).full)
                for event in step.queries]

    reports, results = _timed_steps(script, answer_step)
    stats = service.stats()
    return ScenarioReport(mode="service",
                          script_fingerprint=script.fingerprint(),
                          result_fingerprint=stream_fingerprint(results),
                          steps=reports,
                          engine_stats={"queries": stats["queries"],
                                        "deltas": stats["deltas"],
                                        "cache": stats["cache"]})


def _replay_daemon(script: ScenarioScript, workers=None, backend=None,
                   cache_limit=None) -> ScenarioReport:
    """Through the PR 7 daemon session: bursts submitted concurrently.

    Queries of one burst are gathered concurrently so identical in-flight
    constraints coalesce single-flight (the arrival process emits one
    constraint per burst precisely to exercise this); bursts stay ordered
    so the stream fingerprint is reproducible.
    """
    import asyncio

    from ..serve.server import ArspSession
    from ..serve.service import ArspService

    async def run():
        service = ArspService(script.base_dataset,
                              config=_serve_config(cache_limit))
        service.warm()
        session = ArspSession(service)
        try:
            async def answer_step_async(step):
                await session.apply_delta(step.delta)
                step_results = []
                for burst in _bursts(step.queries):
                    outcomes = await asyncio.gather(*[
                        session.query(
                            script.constraint_pool[event.constraint_index])
                        for event in burst])
                    step_results.extend(dict(outcome.full)
                                        for outcome in outcomes)
                return step_results

            import time as _time
            reports = []
            results = []
            for step in script.steps:
                start = _time.perf_counter()
                step_results = await answer_step_async(step)
                seconds = _time.perf_counter() - start
                results.extend(step_results)
                reports.append(StepReport(index=step.index,
                                          num_queries=len(step.queries),
                                          seconds=seconds))
            stats = service.stats()
            stats["coalesced"] = session.coalesced
            return reports, results, stats
        finally:
            session.close()

    reports, results, stats = asyncio.run(run())
    return ScenarioReport(mode="daemon",
                          script_fingerprint=script.fingerprint(),
                          result_fingerprint=stream_fingerprint(results),
                          steps=reports,
                          engine_stats={"queries": stats["queries"],
                                        "deltas": stats["deltas"],
                                        "coalesced": stats["coalesced"],
                                        "cache": stats["cache"]})


def _bursts(queries: Tuple[QueryEvent, ...]) -> List[List[QueryEvent]]:
    """Group a step's arrival-ordered events by burst id."""
    grouped: List[List[QueryEvent]] = []
    for event in queries:
        if grouped and grouped[-1][0].burst == event.burst:
            grouped[-1].append(event)
        else:
            grouped.append([event])
    return grouped
