"""Timing harness shared by all experiments and benchmarks.

The harness measures wall-clock running time of ARSP algorithms on a given
workload, enforces a per-run time budget (the paper uses an "INF" cut-off of
3600 s; the scaled-down Python experiments default to a much smaller budget)
and reports the ARSP size statistic next to the timings — exactly the two
series plotted in Figures 5 and 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.arsp import arsp_size
from ..core.dataset import UncertainDataset
from ..algorithms.registry import get_algorithm


@dataclass
class AlgorithmRun:
    """Outcome of running one algorithm on one workload."""

    algorithm: str
    seconds: Optional[float]
    arsp_size: Optional[int]
    skipped: bool = False
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.seconds is not None and self.error is None


@dataclass
class SweepPoint:
    """All algorithm runs for one setting of the swept parameter."""

    parameter: str
    value: object
    runs: Dict[str, AlgorithmRun] = field(default_factory=dict)

    def seconds(self, algorithm: str) -> Optional[float]:
        run = self.runs.get(algorithm)
        return run.seconds if run is not None else None

    def size(self) -> Optional[int]:
        for run in self.runs.values():
            if run.arsp_size is not None:
                return run.arsp_size
        return None


def time_call(function: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_algorithms(dataset: UncertainDataset, constraints,
                   algorithms: Sequence[str],
                   reference: Optional[Dict[int, float]] = None,
                   check_consistency: bool = False,
                   skip: Sequence[str] = ()) -> Dict[str, AlgorithmRun]:
    """Run several ARSP algorithms on the same workload.

    Parameters
    ----------
    dataset, constraints:
        The workload.
    algorithms:
        Registry names of the algorithms to run.
    reference:
        Optional precomputed result used for consistency checking.
    check_consistency:
        When True the results of all algorithms are compared against the
        first finished run (or ``reference``); a mismatch is recorded in the
        run's ``error`` field rather than raised, so benchmark sweeps keep
        going.
    skip:
        Algorithm names to record as skipped without running (the moral
        equivalent of the paper's INF entries).
    """
    runs: Dict[str, AlgorithmRun] = {}
    baseline = reference
    for name in algorithms:
        if name in skip:
            runs[name] = AlgorithmRun(algorithm=name, seconds=None,
                                      arsp_size=None, skipped=True)
            continue
        implementation = get_algorithm(name)
        try:
            result, elapsed = time_call(implementation, dataset, constraints)
        except Exception as exc:  # pragma: no cover - defensive for sweeps
            runs[name] = AlgorithmRun(algorithm=name, seconds=None,
                                      arsp_size=None, error=str(exc))
            continue
        error = None
        if check_consistency:
            if baseline is None:
                baseline = result
            else:
                error = _compare(baseline, result)
        runs[name] = AlgorithmRun(algorithm=name, seconds=elapsed,
                                  arsp_size=arsp_size(result), error=error)
    return runs


def sweep(parameter: str, values: Sequence[object],
          workload_factory: Callable[[object], Tuple[UncertainDataset, object]],
          algorithms: Sequence[str],
          check_consistency: bool = False) -> List[SweepPoint]:
    """Run a full parameter sweep.

    ``workload_factory(value)`` must return ``(dataset, constraints)`` for
    the given parameter value.
    """
    points: List[SweepPoint] = []
    for value in values:
        dataset, constraints = workload_factory(value)
        runs = run_algorithms(dataset, constraints, algorithms,
                              check_consistency=check_consistency)
        points.append(SweepPoint(parameter=parameter, value=value, runs=runs))
    return points


def sweep_to_series(points: Sequence[SweepPoint],
                    algorithms: Sequence[str]) -> Dict[str, List[object]]:
    """Convert sweep points into printable running-time / size series."""
    series: Dict[str, List[object]] = {name: [] for name in algorithms}
    series["ARSP size"] = []
    for point in points:
        for name in algorithms:
            series[name].append(point.seconds(name))
        series["ARSP size"].append(point.size())
    return series


def _compare(reference: Dict[int, float], candidate: Dict[int, float],
             atol: float = 1e-8) -> Optional[str]:
    """Return an error string when two ARSP results disagree."""
    if set(reference) != set(candidate):
        return "result key sets differ"
    worst = 0.0
    for key, value in reference.items():
        worst = max(worst, abs(value - candidate[key]))
    if worst > atol:
        return "results differ by up to %.3e" % worst
    return None
