"""Bench-regression harness for the ARSP hot paths.

``repro bench`` times every registered algorithm on the full **workload
matrix** of the paper's evaluation — the IND/ANTI/CORR synthetic
distributions plus the IIP/CAR/NBA real-data stand-ins, each at the
profile's scaled default size (see :mod:`repro.experiments.workloads`) —
and writes the per-workload medians to ``BENCH_arsp.json``.  The file is
the performance trajectory of the repository: every perf-affecting PR
reruns the harness and records before/after medians in PERFORMANCE.md, so
regressions show up as a diff instead of an anecdote, on every
distribution rather than only the independent one.

Profiles
--------
``default``
    The scaled-down counterpart of the paper's default setting
    (m = 192 objects, cnt = 4, d = 4, WR constraints with c = d - 1) on
    all six workloads.
``quick``
    A seconds-scale smoke profile used by the benchmark suite's tier-1
    test; it covers IND, ANTI and the IIP real-data stand-in so the smoke
    run already exercises a non-IND and a real-data cell.

Algorithms whose constraint class differs from the generic linear WR set
get a matching variant of the *same* workload: DUAL receives the
equivalent weight-ratio box, DUAL-MS the 2-d projection, and ENUM a
shrunk prefix whose possible worlds stay enumerable.  Every cell is
checked against KDTT+ on the same (dataset, constraints) pair, so the
file doubles as an end-to-end parity sweep across the whole matrix.

Beyond the registered ARSP algorithms, an ``extras`` section times the
kernel-layer paths that live outside the registry: the eclipse query
algorithms (QUAD and DUAL-S on a certain-point workload, parity-checked
against the naive eclipse) and the continuous-uncertainty Monte Carlo
sampler.  Extras run whenever no explicit ``--algorithms`` subset is
requested.

Per-phase timing
----------------
Algorithms that annotate their preprocessing/query split with
:func:`repro.core.profiling.phase` (currently B&B's static-index build vs.
traversal and DUAL's forest build vs. query) get a ``phases_s`` mapping in
their cells — per-phase medians next to the headline ``median_s`` — so an
index-layer regression is attributable without re-profiling.

Sharded cells
-------------
``repro bench --workers N`` runs every backend-ported algorithm (see
``repro.algorithms.registry.PARALLEL_ALGORITHMS``) with its target axis
sharded across ``N`` workers; serial-only algorithms keep their serial
cells.  The parity reference is always computed on the serial backend, so
a ``--workers`` run doubles as a serial-vs-sharded cross-backend parity
sweep over the whole matrix.  The effective worker count lands in the
payload (top level and per cell).

Sharded cells also record what the supervised execution layer did: each
backend-ported cell's ``execution`` field is the
:class:`repro.core.backend.ExecutionReport` summary of its last timed run
(attempts, retried/recovered shards, pool rebuilds, timeouts, fallback
events), so recovery overhead — e.g. under a ``REPRO_FAULTS`` injection —
is measured per cell rather than guessed.  ``--backend``,
``--shard-timeout``, ``--max-retries`` and ``--on-failure`` select the
backend and its :class:`repro.core.backend.ExecutionPolicy` for the
sharded cells.

Serve workload
--------------
A ``serve`` section (run whenever no explicit ``--algorithms`` subset is
requested, like the extras) measures the serving layer of PR 7: a
repeated-constraint query stream against :class:`repro.serve.ArspService`,
timed cold (a fresh daemon per round — every query pays the index build
and a cache miss) and warm (a long-lived daemon — every query is a
cross-query cache hit).  The warm entry records the shared cache's
hit/miss/eviction counters and the section records the warm-vs-cold
speedup, so the daemon's reason to exist is measured, not asserted; every
served result is parity-checked against one-shot ``compute_arsp``.

Stream workload
---------------
A ``stream`` section (run with the extras) replays one deterministic
scenario from :mod:`repro.experiments.scenarios` — per-step dataset
deltas plus a Zipf-skewed, bursty query stream — in three ways: *cold*
(one-shot ``compute_arsp`` recompute per query, the specification),
*incremental* (σ-matrix maintenance through
:class:`repro.algorithms.incremental.IncrementalArsp`) and *warm* (the
PR 7 daemon session with the cross-query LRU cache, bursts coalescing
in flight).  Per-step wall-clock lands in each entry's ``runs_s``, the
warm entry records the cache hit rate under the skewed stream *and* the
post-delta hit rate (hits served by cache entries σ-repaired across a
delta — the retention win of PR 10), and the three replays' stream
fingerprints must agree byte for byte (recorded as the section's
``parity``).

The JSON schema is ``repro-bench/8`` (adds ``post_delta_hit_rate`` to
the warm stream entry of the ``repro-bench/7`` shape, which added the
top-level ``stream`` section to the ``repro-bench/6`` shape of
per-workload ``matrix`` sections with per-phase timings, ``workers``
fields, per-cell ``execution`` summaries and ``cache`` stats, plus the
top-level ``serve`` section); :func:`upgrade_payload` /
:func:`load_bench` still read the ``repro-bench/7`` pre-retention
files, the ``repro-bench/6`` pre-stream files, the ``repro-bench/5``
pre-serving files, the ``repro-bench/4`` pre-supervision files, the
``repro-bench/3`` pre-backend files, the ``repro-bench/2`` matrix files
and the flat ``repro-bench/1`` files written before.

``compare_payloads`` diffs two payloads cell by cell (``repro bench
--compare BASELINE.json``) and flags cells whose median — or, with
``--compare-stat min``, whose CI-friendly minimum over runs — grew beyond
a configurable regression threshold, optionally gating every recorded
phase too (``--phase-regression-threshold``); the CLI exits non-zero on
any flagged cell so a bench run doubles as a regression gate.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import (canonical_name, get_algorithm,
                                   list_algorithms, supports_workers)
from ..continuous.model import UniformBoxObject
from ..continuous.sampling import monte_carlo_object_arsp
from ..core.arsp import arsp_size, compute_arsp
from ..core.backend import resolve_workers
from ..core.preference import WeightRatioConstraints
from ..core.profiling import collect_phases
from ..data.synthetic import generate_certain_points
from ..eclipse import dual_s_eclipse, naive_eclipse, quad_eclipse
from .harness import _compare
from .workloads import (WORKLOAD_AXIS, Workload, WorkloadScale,
                        build_workload, get_workload_spec,
                        variant_for_algorithm)

#: Schema tag written into the JSON payload so future harness versions can
#: evolve the format without ambiguity.
SCHEMA = "repro-bench/8"

#: The schema before delta-aware cache retention: the serving layer
#: cleared its cache on every delta, so the warm stream entry had no
#: ``post_delta_hit_rate`` (it was structurally zero).
SCHEMA_V7 = "repro-bench/7"

#: The schema before the scenario engine: no top-level ``stream`` section.
SCHEMA_V6 = "repro-bench/6"

#: The schema before the serving layer: no per-cell ``cache`` stats and no
#: top-level ``serve`` section.
SCHEMA_V5 = "repro-bench/5"

#: The schema before the supervised scheduler: no per-cell ``execution``
#: summaries.
SCHEMA_V4 = "repro-bench/4"

#: The schema before the execution backend: no ``workers`` fields.
SCHEMA_V3 = "repro-bench/3"

#: The matrix schema without per-phase timings.
SCHEMA_V2 = "repro-bench/2"

#: The flat single-workload schema written before the workload matrix.
SCHEMA_V1 = "repro-bench/1"

#: Default output file, written at the repository root by ``repro bench``.
DEFAULT_OUTPUT = "BENCH_arsp.json"


@dataclass(frozen=True)
class BenchProfile:
    """One named scale of the harness: workload sizes plus repeat count."""

    name: str
    scale: WorkloadScale
    repeats: int = 5
    #: Workloads timed when ``--workloads`` is not given.
    workload_names: Tuple[str, ...] = WORKLOAD_AXIS
    #: Certain-point workload of the eclipse extras (Fig. 8 shape).
    eclipse_points: int = 1024
    eclipse_dimension: int = 3
    #: Continuous Monte Carlo extras workload.
    mc_objects: int = 16
    mc_trials: int = 400
    #: Scenario replayed by the ``stream`` section (steps × queries/step).
    stream_steps: int = 4
    stream_queries: int = 12


PROFILES: Dict[str, BenchProfile] = {
    "default": BenchProfile(
        name="default",
        scale=WorkloadScale(num_objects=192, max_instances=4, dimension=4),
        repeats=5),
    "quick": BenchProfile(
        name="quick",
        scale=WorkloadScale(num_objects=32, max_instances=3, dimension=3,
                            enum_objects=5, iip_records=48, car_models=16,
                            car_instances=4, nba_players=12, nba_games=5),
        repeats=2,
        workload_names=("ind", "anti", "iip"),
        eclipse_points=192, eclipse_dimension=2,
        mc_objects=8, mc_trials=100,
        stream_steps=3, stream_queries=8),
}

#: Reference algorithm used for the parity check of every matrix cell.
_REFERENCE_ALGORITHM = "kdtt+"

#: Names of the non-registry hot paths timed in the ``extras`` section.
EXTRA_PATHS = ("eclipse-quad", "eclipse-dual-s", "continuous-mc")


def _time_runs(runner, rounds: int
               ) -> Tuple[object, List[float], List[Dict[str, float]]]:
    """Run ``runner`` ``rounds`` times; return (last result, timings,
    per-run phase attributions)."""
    runs: List[float] = []
    phase_runs: List[Dict[str, float]] = []
    result = None
    for _ in range(rounds):
        phases: Dict[str, float] = {}
        with collect_phases(phases):
            start = time.perf_counter()
            result = runner()
            runs.append(time.perf_counter() - start)
        phase_runs.append(phases)
    return result, runs, phase_runs


def _timing_fields(runs: Sequence[float]) -> Dict[str, object]:
    return {
        "repeats": len(runs),
        "runs_s": [round(value, 6) for value in runs],
        "median_s": round(statistics.median(runs), 6),
        "min_s": round(min(runs), 6),
    }


def _phase_fields(phase_runs: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Per-phase medians across the repeated runs (empty when the
    algorithm does not annotate phases)."""
    names = sorted({name for phases in phase_runs for name in phases})
    return {name: round(statistics.median(
                [phases.get(name, 0.0) for phases in phase_runs]), 6)
            for name in names}


def _run_workload(workload: Workload, names: Sequence[str], rounds: int,
                  check: bool, workers: int = 1,
                  backend: Optional[str] = None,
                  policy=None) -> Dict[str, object]:
    """Time the named algorithms on one workload; one matrix section.

    ``workers > 1`` shards every backend-ported algorithm's target axis
    (``backend`` and ``policy`` — an
    :class:`repro.core.backend.ExecutionPolicy` — select the execution
    backend and its supervision knobs for those cells); serial-only
    algorithms keep running unsharded (their cells record ``workers: 1``).
    The parity reference is always computed on the serial backend, so a
    sharded run's cells double as a cross-backend parity sweep.  Each
    cell records the execution layer's report summary (its last timed
    run) under ``execution`` — ``None`` for serial-only algorithms — so
    retries, pool rebuilds and fallbacks are measured per cell.
    """
    references: Dict[str, Dict[int, float]] = {}
    entries: Dict[str, dict] = {}
    for name in names:
        variant_key = variant_for_algorithm(name)
        variant = workload.variants[variant_key]
        implementation = get_algorithm(name)
        cell_workers = workers if (workers > 1
                                   and supports_workers(name)) else 1
        if cell_workers > 1:
            def runner(impl=implementation, data=variant,
                       count=cell_workers):
                return impl(data.dataset, data.constraints, workers=count,
                            backend=backend, policy=policy)
        else:
            def runner(impl=implementation, data=variant):
                return impl(data.dataset, data.constraints)
        result, runs, phase_runs = _time_runs(runner, rounds)
        entry = dict({"variant": variant_key, "workers": cell_workers},
                     **_timing_fields(runs))
        entry["phases_s"] = _phase_fields(phase_runs)
        entry["arsp_size"] = arsp_size(result)
        execution = getattr(result, "execution", None)
        entry["execution"] = (execution.summary()
                              if execution is not None else None)
        # One-shot matrix cells never touch the serving layer's shared
        # cache; the field exists so every cell has the same v6 shape as
        # the serve section's entries.
        entry["cache"] = None
        if check:
            if variant_key not in references:
                if name == _REFERENCE_ALGORITHM and cell_workers == 1:
                    references[variant_key] = result
                else:
                    reference = get_algorithm(_REFERENCE_ALGORITHM)
                    references[variant_key] = reference(variant.dataset,
                                                        variant.constraints)
            mismatch = _compare(references[variant_key], result)
            entry["parity"] = mismatch if mismatch else "ok"
        entries[name] = entry
    return {
        "kind": workload.kind,
        "description": workload.description,
        "datasets": {key: variant.describe()
                     for key, variant in workload.variants.items()},
        "algorithms": entries,
    }


def _continuous_workload(profile: BenchProfile):
    """Random uniform-box objects for the Monte Carlo extras entry."""
    rng = np.random.default_rng(profile.scale.seed)
    dimension = profile.eclipse_dimension
    objects = []
    for object_id in range(profile.mc_objects):
        lo = rng.uniform(0.0, 0.8, size=dimension)
        hi = lo + rng.uniform(0.05, 0.2, size=dimension)
        objects.append(UniformBoxObject(
            object_id, lo, hi,
            appearance_probability=float(rng.uniform(0.5, 1.0))))
    return objects


def _run_extras(profile: BenchProfile, rounds: int, check: bool
                ) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """Time the eclipse and continuous paths; returns (entries, workloads)."""
    d = profile.eclipse_dimension
    points = generate_certain_points(profile.eclipse_points, d,
                                     distribution="IND",
                                     seed=profile.scale.seed)
    ratio = WeightRatioConstraints([(0.5, 2.0)] * (d - 1))
    objects = _continuous_workload(profile)

    workloads = {
        "eclipse-ind": {"constraints": "ratio[0.5,2]^%d" % (d - 1),
                        "num_points": profile.eclipse_points,
                        "dimension": d},
        "continuous-boxes": {"constraints": "ratio[0.5,2]^%d" % (d - 1),
                             "num_objects": profile.mc_objects,
                             "trials": profile.mc_trials,
                             "dimension": d},
    }
    runners = {
        "eclipse-quad": ("eclipse-ind",
                         lambda: quad_eclipse(points, ratio)),
        "eclipse-dual-s": ("eclipse-ind",
                           lambda: dual_s_eclipse(points, ratio)),
        "continuous-mc": ("continuous-boxes",
                          lambda: monte_carlo_object_arsp(
                              objects, ratio, num_trials=profile.mc_trials,
                              seed=profile.scale.seed)),
    }
    reference_eclipse = sorted(naive_eclipse(points, ratio)) if check else None

    entries: Dict[str, dict] = {}
    for name in EXTRA_PATHS:
        workload_key, runner = runners[name]
        result, runs, _ = _time_runs(runner, rounds)
        entry = dict({"workload": workload_key}, **_timing_fields(runs))
        entry["result_size"] = len(result)
        if check and name.startswith("eclipse"):
            entry["parity"] = ("ok" if sorted(result) == reference_eclipse
                               else "eclipse result differs from the naive "
                                    "reference")
        entries[name] = entry
    return entries, workloads


#: Distinct constraint boxes in the serve workload's query stream.  Each
#: round asks all of them, so warm rounds are all cache hits and cold
#: rounds all misses.
_SERVE_STREAM_CONSTRAINTS = 4

#: Workload the serve section queries (present in every profile's registry
#: even when not on its matrix axis).
_SERVE_WORKLOAD = "ind"


def _serve_constraint_stream(variant, count: int
                             ) -> List[WeightRatioConstraints]:
    """``count`` distinct WR boxes nested inside the variant's box.

    Each is shrunk a little further toward the box centre, so the stream
    exercises distinct cache keys while every query stays a valid
    weight-ratio constraint of the same shape.
    """
    stream = []
    for step in range(count):
        shrink = 0.08 * step
        ranges = []
        for low, high in variant.constraints.ranges:
            span = high - low
            ranges.append((low + span * shrink, high - span * shrink))
        stream.append(WeightRatioConstraints(ranges))
    return stream


def _run_serve(profile: BenchProfile, rounds: int, check: bool
               ) -> Dict[str, object]:
    """Measure the serving layer: cold-per-round vs a warm daemon.

    *Cold* rounds start a fresh :class:`repro.serve.ArspService` and
    answer the whole constraint stream — every query pays its share of
    the index build and a cross-query cache miss, the cost one-shot
    ``repro arsp`` pays on every invocation.  *Warm* rounds reuse one
    pre-warmed service whose cache already holds the stream — every query
    is a hit.  The warm entry carries the cache counters, and ``check``
    pins every served result against one-shot ``compute_arsp`` on the
    same (dataset, constraints) pair.
    """
    from ..serve import ArspService

    workload = build_workload(_SERVE_WORKLOAD, profile.scale)
    variant = workload.variants["ratio"]
    stream = _serve_constraint_stream(variant, _SERVE_STREAM_CONSTRAINTS)

    cold_runs: List[float] = []
    cold_results: List[Dict[int, float]] = []
    for _ in range(rounds):
        start = time.perf_counter()
        service = ArspService(variant.dataset)
        cold_results = [service.query(constraints).result
                        for constraints in stream]
        cold_runs.append(time.perf_counter() - start)
    cold_entry = _timing_fields(cold_runs)

    warm_service = ArspService(variant.dataset)
    warm_service.warm()
    for constraints in stream:
        warm_service.query(constraints)
    warm_runs: List[float] = []
    warm_results: List[Dict[int, float]] = []
    for _ in range(rounds):
        start = time.perf_counter()
        warm_results = [warm_service.query(constraints).result
                        for constraints in stream]
        warm_runs.append(time.perf_counter() - start)
    warm_entry = dict(_timing_fields(warm_runs),
                      cache=warm_service.cache.stats())

    warm_median = warm_entry["median_s"]
    section: Dict[str, object] = {
        "workload": dict(variant.describe(), workload=_SERVE_WORKLOAD,
                         variant="ratio"),
        "queries_per_round": len(stream),
        "cold": cold_entry,
        "warm": warm_entry,
        "speedup": (round(cold_entry["median_s"] / warm_median, 2)
                    if warm_median > 0 else None),
    }
    if check:
        mismatch = None
        for constraints, cold, warm in zip(stream, cold_results,
                                           warm_results):
            reference = dict(compute_arsp(variant.dataset, constraints,
                                          algorithm="dual"))
            if cold != reference:
                mismatch = "cold served result differs from one-shot"
                break
            if warm != reference:
                mismatch = "warm served result differs from one-shot"
                break
        section["parity"] = mismatch if mismatch else "ok"
    return section


#: Seed of the bench scenario.  Fixed so the stream section measures the
#: same script in every run of a given profile — the comparison gate
#: depends on the offered load being identical across runs.
_STREAM_SEED = 2024

#: Hit-rate guardrail of the ``--compare`` gate: the warm stream's cache
#: hit rate may drop at most this much (absolute) below the baseline's
#: before the cell flags.  Timing thresholds don't protect the cache — a
#: broken eviction policy can stay fast on bench-sized data while ruining
#: production hit rates, so the counter itself is gated.
HIT_RATE_TOLERANCE = 0.05


def _stream_spec(profile: BenchProfile):
    """The deterministic scenario the ``stream`` section replays."""
    from .scenarios import ScenarioSpec
    scale = profile.scale
    return ScenarioSpec(
        name="bench-%s" % profile.name,
        seed=_STREAM_SEED,
        steps=profile.stream_steps,
        num_objects=scale.num_objects,
        max_instances=scale.max_instances,
        dimension=scale.dimension,
        inserts_per_step=max(1, scale.num_objects // 24),
        deletes_per_step=max(1, scale.num_objects // 24),
        updates_per_step=max(1, scale.num_objects // 24),
        queries_per_step=profile.stream_queries)


def _run_stream(profile: BenchProfile, check: bool) -> Dict[str, object]:
    """Replay the bench scenario cold / incremental / warm.

    *Cold* is the specification — every query recomputed one-shot after
    each step's delta.  *Incremental* maintains σ matrices through
    :class:`repro.algorithms.incremental.IncrementalArsp`.  *Warm* runs
    the stream through the PR 7 daemon session: deltas and queries on
    the single compute thread, bursts submitted concurrently so repeated
    in-flight constraints coalesce, the cross-query LRU absorbing the
    Zipf repetition and carrying σ-repaired entries across each step's
    delta (``post_delta_hit_rate`` counts the hits those retained
    entries serve).  Per-step wall-clock becomes each entry's ``runs_s``
    (so ``--compare`` gates per-step latency), and ``check`` records
    whether all three stream fingerprints agree byte for byte.
    """
    from .scenarios import build_scenario, replay_scenario

    spec = _stream_spec(profile)
    script = build_scenario(spec)
    replays = {mode: replay_scenario(script, bench_mode)
               for mode, bench_mode in (("cold", "oneshot"),
                                        ("incremental", "incremental"),
                                        ("warm", "daemon"))}

    section: Dict[str, object] = {
        "workload": {
            "scenario": spec.name,
            "seed": spec.seed,
            "steps": spec.steps,
            "queries": script.num_queries,
            "num_objects": spec.num_objects,
            "max_instances": spec.max_instances,
            "dimension": spec.dimension,
            "constraint_pool": spec.constraint_pool,
            "zipf_exponent": spec.zipf_exponent,
            "script_fingerprint": script.fingerprint(),
        },
    }
    for mode, report in replays.items():
        entry = _timing_fields(report.step_seconds)
        if mode == "incremental":
            stats = report.engine_stats
            entry["maintenance"] = {
                "sigma_hits": stats["sigma_hits"],
                "copied_fraction": stats["copied_fraction"],
            }
        if mode == "warm":
            stats = report.engine_stats
            entry["cache"] = stats["cache"]
            entry["hit_rate"] = stats["cache"]["hit_rate"]
            # Post-delta warm hit rate: hits served by retained (σ-repaired)
            # entries over the queries that arrived after the first delta —
            # structurally zero before PR 10 cleared-on-delta was replaced.
            post_queries = sum(len(step.queries)
                               for step in script.steps[1:])
            entry["post_delta_hit_rate"] = (
                round(stats["cache"]["retained_hits"] / post_queries, 6)
                if post_queries else 0.0)
            entry["coalesced"] = stats["coalesced"]
        section[mode] = entry
    cold_total = sum(replays["cold"].step_seconds)
    warm_total = sum(replays["warm"].step_seconds)
    section["speedup"] = (round(cold_total / warm_total, 2)
                          if warm_total > 0 else None)
    if check:
        fingerprints = {report.result_fingerprint
                        for report in replays.values()}
        section["parity"] = ("ok" if len(fingerprints) == 1
                             else "replay modes disagree on the stream "
                                  "fingerprint")
    return section


def run_bench(profile: str = "default",
              algorithms: Optional[Sequence[str]] = None,
              workloads: Optional[Sequence[str]] = None,
              repeats: Optional[int] = None,
              output_path: Optional[str] = None,
              check: bool = True,
              workers: Optional[int] = None,
              backend: Optional[str] = None,
              policy=None) -> Dict[str, object]:
    """Time the algorithm × workload matrix and return (and optionally
    write) the ``BENCH_arsp.json`` payload.

    Parameters
    ----------
    profile:
        Name of a :data:`PROFILES` entry (``default`` or ``quick``).
    algorithms:
        Registry names to time; all registered algorithms by default.
    workloads:
        Workload names (see
        :func:`repro.experiments.workloads.available_workloads`); the
        profile's default axis when omitted.
    repeats:
        Override the profile's repeat count (the median is reported).
    output_path:
        When given, the payload is written there as JSON.
    check:
        Compare every cell against the reference algorithm on the same
        (dataset, constraints) pair and record the outcome in the payload.
    workers:
        Shard the target axis of every backend-ported algorithm across
        this many workers (``None``/1 keeps everything serial); the
        parity reference stays on the serial backend either way.
    backend:
        Execution backend for the sharded cells (``auto`` when omitted).
    policy:
        :class:`repro.core.backend.ExecutionPolicy` supervision knobs for
        the sharded cells (shard timeout, retry budget, ``on_failure``).
    """
    if profile not in PROFILES:
        raise KeyError("unknown bench profile %r; available: %s"
                       % (profile, ", ".join(sorted(PROFILES))))
    resolved = PROFILES[profile]
    rounds = repeats if repeats is not None else resolved.repeats
    if rounds < 1:
        raise ValueError("repeats must be at least 1")
    worker_count = resolve_workers(workers)
    # Resolve both axes (canonicalizing aliases and case, validating names,
    # dropping duplicates) before any timing work starts, so a typo in the
    # last name cannot discard minutes of already-measured cells — and so
    # an alias like ``dualms`` lands on its matching workload variant.
    # Empty selections fall back to the defaults, like omitted ones.
    names: List[str] = []
    for name in (algorithms if algorithms else list_algorithms()):
        canonical = canonical_name(name)
        if canonical not in names:
            names.append(canonical)
    selection: List[str] = []
    for name in (workloads if workloads else resolved.workload_names):
        canonical = get_workload_spec(name).name
        if canonical not in selection:
            selection.append(canonical)

    matrix: Dict[str, dict] = {}
    for workload_name in selection:
        workload = build_workload(workload_name, resolved.scale)
        matrix[workload.name] = _run_workload(workload, names, rounds, check,
                                              workers=worker_count,
                                              backend=backend, policy=policy)

    # The extras cover the vectorized paths outside the algorithm registry;
    # an explicit --algorithms subset is a request to time just that subset.
    extras: Dict[str, dict] = {}
    extra_workloads: Dict[str, dict] = {}
    serve: Dict[str, object] = {}
    stream: Dict[str, object] = {}
    if not algorithms:
        extras, extra_workloads = _run_extras(resolved, rounds, check)
        serve = _run_serve(resolved, rounds, check)
        stream = _run_stream(resolved, check)

    payload = {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "profile": resolved.name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "reference_algorithm": _REFERENCE_ALGORITHM if check else None,
        "workers": worker_count,
        "backend": backend,
        "workload_axis": [name for name in matrix],
        "matrix": matrix,
        "extras": extras,
        "extra_workloads": extra_workloads,
        "serve": serve,
        "stream": stream,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


# ----------------------------------------------------------------------
# Reading payloads (current and historical schemas)
# ----------------------------------------------------------------------

#: v1 workload keys -> v2 variant keys.
_V1_VARIANTS = {
    "synthetic-wr": "wr",
    "synthetic-ratio": "ratio",
    "synthetic-ratio-2d": "ratio-2d",
    "synthetic-tiny-wr": "tiny-wr",
}

#: v1 keys of the extras workload descriptors (everything else under the
#: v1 ``workloads`` mapping belongs to the registered algorithms).
_V1_EXTRA_WORKLOADS = ("eclipse-ind", "continuous-boxes")


def upgrade_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Return a ``repro-bench/7`` view of any known payload version.

    ``repro-bench/1`` files carried a single flat ``algorithms`` section
    measured on the default IND workload; they pass through the matrix
    upgrade first.  ``repro-bench/2`` matrix files predate the per-phase
    timings; their algorithm entries gain empty ``phases_s`` mappings.
    ``repro-bench/3`` files predate the execution backend; they gain
    ``workers: 1`` at the top level and in every matrix cell (everything
    before the backend was serial by construction).  ``repro-bench/4``
    files predate the supervised scheduler; they gain ``backend: None``
    at the top level and ``execution: None`` in every matrix cell (no
    execution reports were recorded).  ``repro-bench/5`` files predate
    the serving layer; they gain ``cache: None`` in every matrix cell and
    an empty top-level ``serve`` section (no serve workload was
    measured).  ``repro-bench/6`` files predate the scenario engine; they
    gain an empty top-level ``stream`` section (no stream replay was
    measured).  ``repro-bench/7`` files predate delta-aware cache
    retention; their warm stream entry gains
    ``post_delta_hit_rate: 0.0`` (the serving layer cleared its cache on
    every delta, so the rate genuinely was zero).  Downstream consumers
    only ever see the v8 shape; current payloads are returned unchanged.
    """
    schema = payload.get("schema")
    if schema == SCHEMA:
        return payload
    if schema == SCHEMA_V1:
        payload = _upgrade_v1(payload)
        schema = SCHEMA_V2
    if schema == SCHEMA_V2:
        payload = _upgrade_v2(payload)
        schema = SCHEMA_V3
    if schema == SCHEMA_V3:
        payload = _upgrade_v3(payload)
        schema = SCHEMA_V4
    if schema == SCHEMA_V4:
        payload = _upgrade_v4(payload)
        schema = SCHEMA_V5
    if schema == SCHEMA_V5:
        payload = _upgrade_v5(payload)
        schema = SCHEMA_V6
    if schema == SCHEMA_V6:
        payload = _upgrade_v6(payload)
        schema = SCHEMA_V7
    if schema != SCHEMA_V7:
        raise ValueError("unknown bench payload schema %r" % (schema,))
    return _upgrade_v7(payload)


def _upgrade_v1(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/1`` (flat IND section) -> ``repro-bench/2`` (matrix)."""
    v1_workloads = dict(payload.get("workloads", {}))
    extra_workloads = {key: v1_workloads.pop(key)
                       for key in _V1_EXTRA_WORKLOADS
                       if key in v1_workloads}
    datasets = {}
    for key, meta in v1_workloads.items():
        meta = dict(meta)
        variant = _V1_VARIANTS.get(key, key)
        datasets[variant] = meta
    entries = {}
    for name, entry in dict(payload.get("algorithms", {})).items():
        entry = dict(entry)
        workload_key = entry.pop("workload", "synthetic-wr")
        entry["variant"] = _V1_VARIANTS.get(workload_key, workload_key)
        entries[name] = entry

    upgraded = {key: value for key, value in payload.items()
                if key not in ("schema", "workloads", "algorithms",
                               "extras")}
    upgraded.update({
        "schema": SCHEMA_V2,
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres "
                           "(upgraded from %s)" % SCHEMA_V1,
            "datasets": datasets,
            "algorithms": entries,
        }},
        "extras": payload.get("extras", {}),
        "extra_workloads": extra_workloads,
    })
    return upgraded


def _upgrade_v2(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/2`` -> ``repro-bench/3``: empty per-phase timings."""
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA_V3
    matrix = {}
    for workload_name, section in dict(payload.get("matrix", {})).items():
        section = dict(section)
        section["algorithms"] = {
            name: dict(entry, phases_s=dict(entry.get("phases_s", {})))
            for name, entry in dict(section.get("algorithms", {})).items()}
        matrix[workload_name] = section
    upgraded["matrix"] = matrix
    return upgraded


def _upgrade_v3(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/3`` -> ``repro-bench/4``: serial ``workers`` fields."""
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA_V4
    upgraded.setdefault("workers", 1)
    matrix = {}
    for workload_name, section in dict(payload.get("matrix", {})).items():
        section = dict(section)
        section["algorithms"] = {
            name: dict(entry, workers=entry.get("workers", 1))
            for name, entry in dict(section.get("algorithms", {})).items()}
        matrix[workload_name] = section
    upgraded["matrix"] = matrix
    return upgraded


def _upgrade_v4(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/4`` -> ``repro-bench/5``: empty execution reports."""
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA_V5
    upgraded.setdefault("backend", None)
    matrix = {}
    for workload_name, section in dict(payload.get("matrix", {})).items():
        section = dict(section)
        section["algorithms"] = {
            name: dict(entry, execution=entry.get("execution"))
            for name, entry in dict(section.get("algorithms", {})).items()}
        matrix[workload_name] = section
    upgraded["matrix"] = matrix
    return upgraded


def _upgrade_v5(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/5`` -> ``repro-bench/6``: no cache stats, no serve."""
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA_V6
    upgraded.setdefault("serve", {})
    matrix = {}
    for workload_name, section in dict(payload.get("matrix", {})).items():
        section = dict(section)
        section["algorithms"] = {
            name: dict(entry, cache=entry.get("cache"))
            for name, entry in dict(section.get("algorithms", {})).items()}
        matrix[workload_name] = section
    upgraded["matrix"] = matrix
    return upgraded


def _upgrade_v6(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/6`` -> ``repro-bench/7``: no stream section."""
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA_V7
    upgraded.setdefault("stream", {})
    return upgraded


def _upgrade_v7(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/7`` -> ``repro-bench/8``: no post-delta hit rate.

    The v7 serving layer cleared its cross-query cache on every delta,
    so the post-delta warm hit rate was zero by construction — recorded
    as exactly that, not as missing, so ``--compare`` against an old
    baseline still gates the new counter (any nonzero current rate
    clears a 0.0 baseline).
    """
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA
    stream = dict(upgraded.get("stream") or {})
    if stream.get("warm"):
        warm = dict(stream["warm"])
        warm.setdefault("post_delta_hit_rate", 0.0)
        stream["warm"] = warm
    upgraded["stream"] = stream
    return upgraded


def load_bench(path: str) -> Dict[str, object]:
    """Read a ``BENCH_arsp.json`` file of any known schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        return upgrade_payload(json.load(handle))


# ----------------------------------------------------------------------
# Comparing payloads (the ``repro bench --compare`` regression gate)
# ----------------------------------------------------------------------

#: Default ``--regression-threshold``: a cell regresses when its median
#: grows beyond this factor of the baseline median.  Wall-clock medians on
#: shared machines are noisy, so the default leaves generous headroom; CI
#: setups with quiet runners can tighten it.
DEFAULT_REGRESSION_THRESHOLD = 1.5

#: ``statistic=`` values accepted by :func:`compare_payloads`: the cell
#: field each one gates on.  ``min`` is the CI-friendly mode — the minimum
#: over repeats filters scheduler noise that inflates medians on shared
#: runners.
COMPARE_STATISTICS = {"median": "median_s", "min": "min_s"}


def compare_payloads(baseline: Dict[str, object],
                     current: Dict[str, object],
                     threshold: float = DEFAULT_REGRESSION_THRESHOLD,
                     statistic: str = "median",
                     phase_threshold: Optional[float] = None
                     ) -> Tuple[List[str], List[str]]:
    """Per-cell timing deltas between two bench payloads.

    Both payloads may be of any known schema version.  Returns
    ``(lines, regressions)``: ``lines`` is the printable per-cell report
    over every cell of ``current`` (matrix and extras), ``regressions``
    the subset of cell names whose ``statistic`` (``median`` or the
    CI-friendly ``min`` of runs) grew beyond ``threshold`` times the
    baseline.  When ``phase_threshold`` is given, every phase recorded in
    both payloads (the ``phases_s`` medians) is additionally gated: a
    phase regressing beyond it flags ``cell:phase``, so an index-layer
    regression hiding inside a stable headline time still trips the gate.
    Cells or phases missing from the baseline (new algorithms, new
    workloads, newly annotated phases) are reported but never flagged.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if phase_threshold is not None and phase_threshold <= 0:
        raise ValueError("phase threshold must be positive")
    if statistic not in COMPARE_STATISTICS:
        raise ValueError("unknown statistic %r; available: %s"
                         % (statistic,
                            ", ".join(sorted(COMPARE_STATISTICS))))
    field = COMPARE_STATISTICS[statistic]
    baseline = upgrade_payload(baseline)
    current = upgrade_payload(current)
    baseline_matrix = baseline.get("matrix", {})
    lines: List[str] = []
    regressions: List[str] = []

    # Timings taken at different worker counts measure different things
    # (sharded cells pay pool/ship overhead and, on few cores, contention);
    # a delta between them is not attributable to a code change, so the
    # mismatch is called out up front and on every affected cell.
    base_workers = int(baseline.get("workers", 1))
    now_workers = int(current.get("workers", 1))
    if base_workers != now_workers:
        lines.append("  WARNING: baseline ran with workers=%d but this run "
                     "with workers=%d; deltas on sharded cells reflect the "
                     "backend, not code changes" % (base_workers,
                                                    now_workers))

    def ratio_of(base: float, now: float) -> float:
        return now / base if base > 0.0 else float("inf")

    def compare_cell(cell: str, base_entry, entry) -> None:
        if base_entry is None:
            lines.append("  %-28s %9.4f s  (no baseline)"
                         % (cell, entry[field]))
            return
        base = float(base_entry[field])
        now = float(entry[field])
        ratio = ratio_of(base, now)
        flag = ""
        cell_base_workers = int(base_entry.get("workers", 1))
        cell_now_workers = int(entry.get("workers", 1))
        if cell_base_workers != cell_now_workers:
            flag += ("  [workers %d -> %d]"
                     % (cell_base_workers, cell_now_workers))
        if ratio > threshold:
            regressions.append(cell)
            flag += "  REGRESSION (> %.2fx)" % threshold
        lines.append("  %-28s %9.4f s -> %9.4f s  (%5.2fx)%s"
                     % (cell, base, now, ratio, flag))
        if phase_threshold is None:
            return
        base_phases = base_entry.get("phases_s") or {}
        for phase_name, now_s in sorted((entry.get("phases_s")
                                         or {}).items()):
            if phase_name not in base_phases:
                # Newly annotated phases: reported, never flagged —
                # mirroring the cell-level "(no baseline)" convention.
                lines.append("    %-26s %9.4f s  (no baseline)"
                             % ("phase " + phase_name, float(now_s)))
                continue
            phase_ratio = ratio_of(float(base_phases[phase_name]),
                                   float(now_s))
            phase_flag = ""
            if phase_ratio > phase_threshold:
                regressions.append("%s:%s" % (cell, phase_name))
                phase_flag = ("  REGRESSION (> %.2fx)" % phase_threshold)
            lines.append("    %-26s %9.4f s -> %9.4f s  (%5.2fx)%s"
                         % ("phase " + phase_name,
                            float(base_phases[phase_name]), float(now_s),
                            phase_ratio, phase_flag))

    for workload_name, section in current.get("matrix", {}).items():
        base_section = baseline_matrix.get(workload_name, {})
        base_algorithms = base_section.get("algorithms", {})
        for name, entry in section["algorithms"].items():
            compare_cell("%s/%s" % (workload_name, name),
                         base_algorithms.get(name), entry)
    base_extras = baseline.get("extras") or {}
    for name, entry in (current.get("extras") or {}).items():
        compare_cell("extras/%s" % name, base_extras.get(name), entry)
    base_serve = baseline.get("serve") or {}
    current_serve = current.get("serve") or {}
    for mode in ("cold", "warm"):
        if mode in current_serve:
            compare_cell("serve/%s" % mode, base_serve.get(mode),
                         current_serve[mode])
    base_stream = baseline.get("stream") or {}
    current_stream = current.get("stream") or {}
    for mode in ("cold", "incremental", "warm"):
        if mode in current_stream:
            compare_cell("stream/%s" % mode, base_stream.get(mode),
                         current_stream[mode])
    # Per-step timings don't protect the cache; gate the warm replay's
    # hit rate directly so a cache/coalescing regression that stays fast
    # on bench-sized data still flags.
    warm = current_stream.get("warm") or {}
    base_warm = base_stream.get("warm") or {}
    # ``post_delta_hit_rate`` gates cache *retention*: a broken repair
    # path silently degrades to clear-on-delta (rate 0) without failing
    # any timing cell, so the counter is gated like the hit rate is.
    for field in ("hit_rate", "post_delta_hit_rate"):
        if field not in warm:
            continue
        label = "stream/warm:%s" % field
        now_rate = float(warm[field])
        if field in base_warm:
            base_rate = float(base_warm[field])
            flag = ""
            if now_rate < base_rate - HIT_RATE_TOLERANCE:
                regressions.append(label)
                flag = ("  REGRESSION (dropped > %.2f)"
                        % HIT_RATE_TOLERANCE)
            lines.append("  %-28s %9.2f   -> %9.2f%s"
                         % (label, base_rate, now_rate, flag))
        else:
            lines.append("  %-28s %9.2f    (no baseline)"
                         % (label, now_rate))
    return lines, regressions


def format_compare(baseline: Dict[str, object], current: Dict[str, object],
                   threshold: float = DEFAULT_REGRESSION_THRESHOLD,
                   statistic: str = "median",
                   phase_threshold: Optional[float] = None
                   ) -> Tuple[str, bool]:
    """Human-readable :func:`compare_payloads` report.

    Returns ``(text, ok)`` where ``ok`` is False when any cell (or, with
    ``phase_threshold``, any phase) regressed beyond its threshold.
    """
    lines, regressions = compare_payloads(baseline, current,
                                          threshold=threshold,
                                          statistic=statistic,
                                          phase_threshold=phase_threshold)
    header = ("comparison against baseline (%s, regression threshold %.2fx%s)"
              % (statistic, threshold,
                 "" if phase_threshold is None
                 else ", per-phase %.2fx" % phase_threshold))
    if regressions:
        footer = ("%d cell(s) regressed: %s"
                  % (len(regressions), ", ".join(regressions)))
    else:
        footer = "no regressions beyond the thresholds"
    return "\n".join([header] + lines + [footer]), not regressions


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------

def _format_entry(width: int, name: str, entry: Dict[str, object],
                  size_key: str, workload_key: str) -> str:
    parity = entry.get("parity")
    suffix = "" if parity in (None, "ok") else "  PARITY: %s" % parity
    execution = entry.get("execution") or {}
    if execution and not execution.get("clean", True):
        suffix += ("  [exec: %d attempts, %d rebuild(s), %d timeout(s)%s]"
                   % (execution.get("attempts", 0),
                      execution.get("pool_rebuilds", 0),
                      execution.get("timeouts", 0),
                      ", serial fallback"
                      if execution.get("serial_fallback_shards") else ""))
    phases = entry.get("phases_s") or {}
    if phases:
        suffix += "  {%s}" % ", ".join(
            "%s %.4f" % (phase_name, seconds)
            for phase_name, seconds in sorted(phases.items()))
    return ("  %-*s  %9.4f s  (min %.4f, size %d, %s)%s"
            % (width, name, entry["median_s"], entry["min_s"],
               entry[size_key], entry[workload_key], suffix))


def format_bench(payload: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_bench` payload."""
    payload = upgrade_payload(payload)
    matrix = payload["matrix"]
    extras = payload.get("extras") or {}
    names = [name for section in matrix.values()
             for name in section["algorithms"]] + list(extras)
    width = max(len(name) for name in names) if names else 1
    repeats = sorted({str(entry["repeats"]) + " runs"
                      for section in matrix.values()
                      for entry in section["algorithms"].values()}
                     | {str(entry["repeats"]) + " runs"
                        for entry in extras.values()})
    workers = payload.get("workers", 1)
    lines = ["bench profile %r (median of %s%s)"
             % (payload["profile"], ", ".join(repeats),
                "" if workers == 1 else ", workers=%d" % workers)]
    for workload_name in payload["workload_axis"]:
        section = matrix[workload_name]
        lines.append("[%s] %s" % (workload_name, section["description"]))
        for name in sorted(section["algorithms"]):
            lines.append(_format_entry(width, name,
                                       section["algorithms"][name],
                                       "arsp_size", "variant"))
    if extras:
        lines.append("[extras]")
        for name in sorted(extras):
            lines.append(_format_entry(width, name, extras[name],
                                       "result_size", "workload"))
    serve = payload.get("serve") or {}
    if serve:
        meta = serve.get("workload") or {}
        lines.append("[serve] %d-constraint query stream on %s/%s "
                     "(cold: fresh daemon per round, warm: shared cache)"
                     % (serve.get("queries_per_round", 0),
                        meta.get("workload", "?"), meta.get("variant", "?")))
        serve_width = max(width, len("serve-cold"))
        for mode in ("cold", "warm"):
            entry = serve.get(mode)
            if not entry:
                continue
            suffix = ""
            cache = entry.get("cache")
            if cache:
                suffix = ("  [cache: %d hit(s), %d miss(es), hit rate "
                          "%.2f]" % (cache["hits"], cache["misses"],
                                     cache["hit_rate"]))
            lines.append("  %-*s  %9.4f s  (min %.4f)%s"
                         % (serve_width, "serve-" + mode,
                            entry["median_s"], entry["min_s"], suffix))
        if serve.get("speedup") is not None:
            parity = serve.get("parity")
            lines.append("  warm rounds %.2fx faster than cold%s"
                         % (serve["speedup"],
                            "" if parity in (None, "ok")
                            else "  PARITY: %s" % parity))
    stream = payload.get("stream") or {}
    if stream:
        meta = stream.get("workload") or {}
        lines.append("[stream] scenario %r: %d steps, %d queries "
                     "(Zipf s=%.2f over %d constraints; cold: per-query "
                     "recompute, incremental: sigma maintenance, warm: "
                     "daemon replay)"
                     % (meta.get("scenario", "?"), meta.get("steps", 0),
                        meta.get("queries", 0),
                        meta.get("zipf_exponent", 0.0),
                        meta.get("constraint_pool", 0)))
        stream_width = max(width, len("stream-incremental"))
        for mode in ("cold", "incremental", "warm"):
            entry = stream.get(mode)
            if not entry:
                continue
            suffix = ""
            maintenance = entry.get("maintenance")
            if maintenance:
                suffix = ("  [sigma: %d hit(s), %.0f%% copied]"
                          % (maintenance["sigma_hits"],
                             100.0 * maintenance["copied_fraction"]))
            cache = entry.get("cache")
            if cache:
                suffix = ("  [cache: %d hit(s), %d miss(es), hit rate "
                          "%.2f; post-delta %.2f; %d coalesced]"
                          % (cache["hits"], cache["misses"],
                             cache["hit_rate"],
                             entry.get("post_delta_hit_rate", 0.0),
                             entry.get("coalesced", 0)))
            lines.append("  %-*s  %9.4f s/step  (min %.4f)%s"
                         % (stream_width, "stream-" + mode,
                            entry["median_s"], entry["min_s"], suffix))
        if stream.get("speedup") is not None:
            parity = stream.get("parity")
            lines.append("  warm replay %.2fx faster than cold%s"
                         % (stream["speedup"],
                            "" if parity in (None, "ok")
                            else "  PARITY: %s" % parity))
    return "\n".join(lines)
