"""Bench-regression harness for the ARSP hot paths.

``repro bench`` times every registered algorithm on the full **workload
matrix** of the paper's evaluation — the IND/ANTI/CORR synthetic
distributions plus the IIP/CAR/NBA real-data stand-ins, each at the
profile's scaled default size (see :mod:`repro.experiments.workloads`) —
and writes the per-workload medians to ``BENCH_arsp.json``.  The file is
the performance trajectory of the repository: every perf-affecting PR
reruns the harness and records before/after medians in PERFORMANCE.md, so
regressions show up as a diff instead of an anecdote, on every
distribution rather than only the independent one.

Profiles
--------
``default``
    The scaled-down counterpart of the paper's default setting
    (m = 192 objects, cnt = 4, d = 4, WR constraints with c = d - 1) on
    all six workloads.
``quick``
    A seconds-scale smoke profile used by the benchmark suite's tier-1
    test; it covers IND, ANTI and the IIP real-data stand-in so the smoke
    run already exercises a non-IND and a real-data cell.

Algorithms whose constraint class differs from the generic linear WR set
get a matching variant of the *same* workload: DUAL receives the
equivalent weight-ratio box, DUAL-MS the 2-d projection, and ENUM a
shrunk prefix whose possible worlds stay enumerable.  Every cell is
checked against KDTT+ on the same (dataset, constraints) pair, so the
file doubles as an end-to-end parity sweep across the whole matrix.

Beyond the registered ARSP algorithms, an ``extras`` section times the
kernel-layer paths that live outside the registry: the eclipse query
algorithms (QUAD and DUAL-S on a certain-point workload, parity-checked
against the naive eclipse) and the continuous-uncertainty Monte Carlo
sampler.  Extras run whenever no explicit ``--algorithms`` subset is
requested.

Per-phase timing
----------------
Algorithms that annotate their preprocessing/query split with
:func:`repro.core.profiling.phase` (currently B&B's static-index build vs.
traversal and DUAL's forest build vs. query) get a ``phases_s`` mapping in
their cells — per-phase medians next to the headline ``median_s`` — so an
index-layer regression is attributable without re-profiling.

The JSON schema is ``repro-bench/3`` (per-workload ``matrix`` sections with
per-phase timings); :func:`upgrade_payload` / :func:`load_bench` still read
the ``repro-bench/2`` matrix files and the flat ``repro-bench/1`` files
written before.

``compare_payloads`` diffs two payloads cell by cell (``repro bench
--compare BASELINE.json``) and flags cells whose median grew beyond a
configurable regression threshold; the CLI exits non-zero on any flagged
cell so a bench run doubles as a regression gate.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import (canonical_name, get_algorithm,
                                   list_algorithms)
from ..continuous.model import UniformBoxObject
from ..continuous.sampling import monte_carlo_object_arsp
from ..core.arsp import arsp_size
from ..core.preference import WeightRatioConstraints
from ..core.profiling import collect_phases
from ..data.synthetic import generate_certain_points
from ..eclipse import dual_s_eclipse, naive_eclipse, quad_eclipse
from .harness import _compare
from .workloads import (WORKLOAD_AXIS, Workload, WorkloadScale,
                        build_workload, get_workload_spec,
                        variant_for_algorithm)

#: Schema tag written into the JSON payload so future harness versions can
#: evolve the format without ambiguity.
SCHEMA = "repro-bench/3"

#: The matrix schema without per-phase timings.
SCHEMA_V2 = "repro-bench/2"

#: The flat single-workload schema written before the workload matrix.
SCHEMA_V1 = "repro-bench/1"

#: Default output file, written at the repository root by ``repro bench``.
DEFAULT_OUTPUT = "BENCH_arsp.json"


@dataclass(frozen=True)
class BenchProfile:
    """One named scale of the harness: workload sizes plus repeat count."""

    name: str
    scale: WorkloadScale
    repeats: int = 5
    #: Workloads timed when ``--workloads`` is not given.
    workload_names: Tuple[str, ...] = WORKLOAD_AXIS
    #: Certain-point workload of the eclipse extras (Fig. 8 shape).
    eclipse_points: int = 1024
    eclipse_dimension: int = 3
    #: Continuous Monte Carlo extras workload.
    mc_objects: int = 16
    mc_trials: int = 400


PROFILES: Dict[str, BenchProfile] = {
    "default": BenchProfile(
        name="default",
        scale=WorkloadScale(num_objects=192, max_instances=4, dimension=4),
        repeats=5),
    "quick": BenchProfile(
        name="quick",
        scale=WorkloadScale(num_objects=32, max_instances=3, dimension=3,
                            enum_objects=5, iip_records=48, car_models=16,
                            car_instances=4, nba_players=12, nba_games=5),
        repeats=2,
        workload_names=("ind", "anti", "iip"),
        eclipse_points=192, eclipse_dimension=2,
        mc_objects=8, mc_trials=100),
}

#: Reference algorithm used for the parity check of every matrix cell.
_REFERENCE_ALGORITHM = "kdtt+"

#: Names of the non-registry hot paths timed in the ``extras`` section.
EXTRA_PATHS = ("eclipse-quad", "eclipse-dual-s", "continuous-mc")


def _time_runs(runner, rounds: int
               ) -> Tuple[object, List[float], List[Dict[str, float]]]:
    """Run ``runner`` ``rounds`` times; return (last result, timings,
    per-run phase attributions)."""
    runs: List[float] = []
    phase_runs: List[Dict[str, float]] = []
    result = None
    for _ in range(rounds):
        phases: Dict[str, float] = {}
        with collect_phases(phases):
            start = time.perf_counter()
            result = runner()
            runs.append(time.perf_counter() - start)
        phase_runs.append(phases)
    return result, runs, phase_runs


def _timing_fields(runs: Sequence[float]) -> Dict[str, object]:
    return {
        "repeats": len(runs),
        "runs_s": [round(value, 6) for value in runs],
        "median_s": round(statistics.median(runs), 6),
        "min_s": round(min(runs), 6),
    }


def _phase_fields(phase_runs: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Per-phase medians across the repeated runs (empty when the
    algorithm does not annotate phases)."""
    names = sorted({name for phases in phase_runs for name in phases})
    return {name: round(statistics.median(
                [phases.get(name, 0.0) for phases in phase_runs]), 6)
            for name in names}


def _run_workload(workload: Workload, names: Sequence[str], rounds: int,
                  check: bool) -> Dict[str, object]:
    """Time the named algorithms on one workload; one matrix section."""
    references: Dict[str, Dict[int, float]] = {}
    entries: Dict[str, dict] = {}
    for name in names:
        variant_key = variant_for_algorithm(name)
        variant = workload.variants[variant_key]
        implementation = get_algorithm(name)
        result, runs, phase_runs = _time_runs(
            lambda: implementation(variant.dataset, variant.constraints),
            rounds)
        entry = dict({"variant": variant_key}, **_timing_fields(runs))
        entry["phases_s"] = _phase_fields(phase_runs)
        entry["arsp_size"] = arsp_size(result)
        if check:
            if variant_key not in references:
                if name == _REFERENCE_ALGORITHM:
                    references[variant_key] = result
                else:
                    reference = get_algorithm(_REFERENCE_ALGORITHM)
                    references[variant_key] = reference(variant.dataset,
                                                        variant.constraints)
            mismatch = _compare(references[variant_key], result)
            entry["parity"] = mismatch if mismatch else "ok"
        entries[name] = entry
    return {
        "kind": workload.kind,
        "description": workload.description,
        "datasets": {key: variant.describe()
                     for key, variant in workload.variants.items()},
        "algorithms": entries,
    }


def _continuous_workload(profile: BenchProfile):
    """Random uniform-box objects for the Monte Carlo extras entry."""
    rng = np.random.default_rng(profile.scale.seed)
    dimension = profile.eclipse_dimension
    objects = []
    for object_id in range(profile.mc_objects):
        lo = rng.uniform(0.0, 0.8, size=dimension)
        hi = lo + rng.uniform(0.05, 0.2, size=dimension)
        objects.append(UniformBoxObject(
            object_id, lo, hi,
            appearance_probability=float(rng.uniform(0.5, 1.0))))
    return objects


def _run_extras(profile: BenchProfile, rounds: int, check: bool
                ) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """Time the eclipse and continuous paths; returns (entries, workloads)."""
    d = profile.eclipse_dimension
    points = generate_certain_points(profile.eclipse_points, d,
                                     distribution="IND",
                                     seed=profile.scale.seed)
    ratio = WeightRatioConstraints([(0.5, 2.0)] * (d - 1))
    objects = _continuous_workload(profile)

    workloads = {
        "eclipse-ind": {"constraints": "ratio[0.5,2]^%d" % (d - 1),
                        "num_points": profile.eclipse_points,
                        "dimension": d},
        "continuous-boxes": {"constraints": "ratio[0.5,2]^%d" % (d - 1),
                             "num_objects": profile.mc_objects,
                             "trials": profile.mc_trials,
                             "dimension": d},
    }
    runners = {
        "eclipse-quad": ("eclipse-ind",
                         lambda: quad_eclipse(points, ratio)),
        "eclipse-dual-s": ("eclipse-ind",
                           lambda: dual_s_eclipse(points, ratio)),
        "continuous-mc": ("continuous-boxes",
                          lambda: monte_carlo_object_arsp(
                              objects, ratio, num_trials=profile.mc_trials,
                              seed=profile.scale.seed)),
    }
    reference_eclipse = sorted(naive_eclipse(points, ratio)) if check else None

    entries: Dict[str, dict] = {}
    for name in EXTRA_PATHS:
        workload_key, runner = runners[name]
        result, runs, _ = _time_runs(runner, rounds)
        entry = dict({"workload": workload_key}, **_timing_fields(runs))
        entry["result_size"] = len(result)
        if check and name.startswith("eclipse"):
            entry["parity"] = ("ok" if sorted(result) == reference_eclipse
                               else "eclipse result differs from the naive "
                                    "reference")
        entries[name] = entry
    return entries, workloads


def run_bench(profile: str = "default",
              algorithms: Optional[Sequence[str]] = None,
              workloads: Optional[Sequence[str]] = None,
              repeats: Optional[int] = None,
              output_path: Optional[str] = None,
              check: bool = True) -> Dict[str, object]:
    """Time the algorithm × workload matrix and return (and optionally
    write) the ``BENCH_arsp.json`` payload.

    Parameters
    ----------
    profile:
        Name of a :data:`PROFILES` entry (``default`` or ``quick``).
    algorithms:
        Registry names to time; all registered algorithms by default.
    workloads:
        Workload names (see
        :func:`repro.experiments.workloads.available_workloads`); the
        profile's default axis when omitted.
    repeats:
        Override the profile's repeat count (the median is reported).
    output_path:
        When given, the payload is written there as JSON.
    check:
        Compare every cell against the reference algorithm on the same
        (dataset, constraints) pair and record the outcome in the payload.
    """
    if profile not in PROFILES:
        raise KeyError("unknown bench profile %r; available: %s"
                       % (profile, ", ".join(sorted(PROFILES))))
    resolved = PROFILES[profile]
    rounds = repeats if repeats is not None else resolved.repeats
    if rounds < 1:
        raise ValueError("repeats must be at least 1")
    # Resolve both axes (canonicalizing aliases and case, validating names,
    # dropping duplicates) before any timing work starts, so a typo in the
    # last name cannot discard minutes of already-measured cells — and so
    # an alias like ``dualms`` lands on its matching workload variant.
    # Empty selections fall back to the defaults, like omitted ones.
    names: List[str] = []
    for name in (algorithms if algorithms else list_algorithms()):
        canonical = canonical_name(name)
        if canonical not in names:
            names.append(canonical)
    selection: List[str] = []
    for name in (workloads if workloads else resolved.workload_names):
        canonical = get_workload_spec(name).name
        if canonical not in selection:
            selection.append(canonical)

    matrix: Dict[str, dict] = {}
    for workload_name in selection:
        workload = build_workload(workload_name, resolved.scale)
        matrix[workload.name] = _run_workload(workload, names, rounds, check)

    # The extras cover the vectorized paths outside the algorithm registry;
    # an explicit --algorithms subset is a request to time just that subset.
    extras: Dict[str, dict] = {}
    extra_workloads: Dict[str, dict] = {}
    if not algorithms:
        extras, extra_workloads = _run_extras(resolved, rounds, check)

    payload = {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "profile": resolved.name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "reference_algorithm": _REFERENCE_ALGORITHM if check else None,
        "workload_axis": [name for name in matrix],
        "matrix": matrix,
        "extras": extras,
        "extra_workloads": extra_workloads,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


# ----------------------------------------------------------------------
# Reading payloads (current and historical schemas)
# ----------------------------------------------------------------------

#: v1 workload keys -> v2 variant keys.
_V1_VARIANTS = {
    "synthetic-wr": "wr",
    "synthetic-ratio": "ratio",
    "synthetic-ratio-2d": "ratio-2d",
    "synthetic-tiny-wr": "tiny-wr",
}

#: v1 keys of the extras workload descriptors (everything else under the
#: v1 ``workloads`` mapping belongs to the registered algorithms).
_V1_EXTRA_WORKLOADS = ("eclipse-ind", "continuous-boxes")


def upgrade_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Return a ``repro-bench/3`` view of any known payload version.

    ``repro-bench/1`` files carried a single flat ``algorithms`` section
    measured on the default IND workload; they pass through the matrix
    upgrade first.  ``repro-bench/2`` matrix files predate the per-phase
    timings; their algorithm entries gain empty ``phases_s`` mappings.
    Downstream consumers only ever see the v3 shape; current payloads are
    returned unchanged.
    """
    schema = payload.get("schema")
    if schema == SCHEMA:
        return payload
    if schema == SCHEMA_V1:
        payload = _upgrade_v1(payload)
        schema = SCHEMA_V2
    if schema != SCHEMA_V2:
        raise ValueError("unknown bench payload schema %r" % (schema,))
    return _upgrade_v2(payload)


def _upgrade_v1(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/1`` (flat IND section) -> ``repro-bench/2`` (matrix)."""
    v1_workloads = dict(payload.get("workloads", {}))
    extra_workloads = {key: v1_workloads.pop(key)
                       for key in _V1_EXTRA_WORKLOADS
                       if key in v1_workloads}
    datasets = {}
    for key, meta in v1_workloads.items():
        meta = dict(meta)
        variant = _V1_VARIANTS.get(key, key)
        datasets[variant] = meta
    entries = {}
    for name, entry in dict(payload.get("algorithms", {})).items():
        entry = dict(entry)
        workload_key = entry.pop("workload", "synthetic-wr")
        entry["variant"] = _V1_VARIANTS.get(workload_key, workload_key)
        entries[name] = entry

    upgraded = {key: value for key, value in payload.items()
                if key not in ("schema", "workloads", "algorithms",
                               "extras")}
    upgraded.update({
        "schema": SCHEMA_V2,
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres "
                           "(upgraded from %s)" % SCHEMA_V1,
            "datasets": datasets,
            "algorithms": entries,
        }},
        "extras": payload.get("extras", {}),
        "extra_workloads": extra_workloads,
    })
    return upgraded


def _upgrade_v2(payload: Dict[str, object]) -> Dict[str, object]:
    """``repro-bench/2`` -> ``repro-bench/3``: empty per-phase timings."""
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA
    matrix = {}
    for workload_name, section in dict(payload.get("matrix", {})).items():
        section = dict(section)
        section["algorithms"] = {
            name: dict(entry, phases_s=dict(entry.get("phases_s", {})))
            for name, entry in dict(section.get("algorithms", {})).items()}
        matrix[workload_name] = section
    upgraded["matrix"] = matrix
    return upgraded


def load_bench(path: str) -> Dict[str, object]:
    """Read a ``BENCH_arsp.json`` file of any known schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        return upgrade_payload(json.load(handle))


# ----------------------------------------------------------------------
# Comparing payloads (the ``repro bench --compare`` regression gate)
# ----------------------------------------------------------------------

#: Default ``--regression-threshold``: a cell regresses when its median
#: grows beyond this factor of the baseline median.  Wall-clock medians on
#: shared machines are noisy, so the default leaves generous headroom; CI
#: setups with quiet runners can tighten it.
DEFAULT_REGRESSION_THRESHOLD = 1.5


def compare_payloads(baseline: Dict[str, object],
                     current: Dict[str, object],
                     threshold: float = DEFAULT_REGRESSION_THRESHOLD
                     ) -> Tuple[List[str], List[str]]:
    """Per-cell median deltas between two bench payloads.

    Both payloads may be of any known schema version.  Returns
    ``(lines, regressions)``: ``lines`` is the printable per-cell report
    over every cell of ``current`` (matrix and extras), ``regressions``
    the subset of cell names whose median grew beyond ``threshold`` times
    the baseline median.  Cells missing from the baseline (new algorithms,
    new workloads) are reported but never flagged.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    baseline = upgrade_payload(baseline)
    current = upgrade_payload(current)
    baseline_matrix = baseline.get("matrix", {})
    lines: List[str] = []
    regressions: List[str] = []

    def compare_cell(cell: str, base_entry, entry) -> None:
        if base_entry is None:
            lines.append("  %-28s %9.4f s  (no baseline)"
                         % (cell, entry["median_s"]))
            return
        base = float(base_entry["median_s"])
        now = float(entry["median_s"])
        ratio = now / base if base > 0.0 else float("inf")
        flag = ""
        if ratio > threshold:
            regressions.append(cell)
            flag = "  REGRESSION (> %.2fx)" % threshold
        lines.append("  %-28s %9.4f s -> %9.4f s  (%5.2fx)%s"
                     % (cell, base, now, ratio, flag))

    for workload_name, section in current.get("matrix", {}).items():
        base_section = baseline_matrix.get(workload_name, {})
        base_algorithms = base_section.get("algorithms", {})
        for name, entry in section["algorithms"].items():
            compare_cell("%s/%s" % (workload_name, name),
                         base_algorithms.get(name), entry)
    base_extras = baseline.get("extras") or {}
    for name, entry in (current.get("extras") or {}).items():
        compare_cell("extras/%s" % name, base_extras.get(name), entry)
    return lines, regressions


def format_compare(baseline: Dict[str, object], current: Dict[str, object],
                   threshold: float = DEFAULT_REGRESSION_THRESHOLD
                   ) -> Tuple[str, bool]:
    """Human-readable :func:`compare_payloads` report.

    Returns ``(text, ok)`` where ``ok`` is False when any cell regressed
    beyond the threshold.
    """
    lines, regressions = compare_payloads(baseline, current,
                                          threshold=threshold)
    header = ("comparison against baseline (regression threshold %.2fx)"
              % threshold)
    if regressions:
        footer = ("%d cell(s) regressed beyond %.2fx: %s"
                  % (len(regressions), threshold, ", ".join(regressions)))
    else:
        footer = "no regressions beyond %.2fx" % threshold
    return "\n".join([header] + lines + [footer]), not regressions


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------

def _format_entry(width: int, name: str, entry: Dict[str, object],
                  size_key: str, workload_key: str) -> str:
    parity = entry.get("parity")
    suffix = "" if parity in (None, "ok") else "  PARITY: %s" % parity
    phases = entry.get("phases_s") or {}
    if phases:
        suffix += "  {%s}" % ", ".join(
            "%s %.4f" % (phase_name, seconds)
            for phase_name, seconds in sorted(phases.items()))
    return ("  %-*s  %9.4f s  (min %.4f, size %d, %s)%s"
            % (width, name, entry["median_s"], entry["min_s"],
               entry[size_key], entry[workload_key], suffix))


def format_bench(payload: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_bench` payload."""
    payload = upgrade_payload(payload)
    matrix = payload["matrix"]
    extras = payload.get("extras") or {}
    names = [name for section in matrix.values()
             for name in section["algorithms"]] + list(extras)
    width = max(len(name) for name in names) if names else 1
    repeats = sorted({str(entry["repeats"]) + " runs"
                      for section in matrix.values()
                      for entry in section["algorithms"].values()}
                     | {str(entry["repeats"]) + " runs"
                        for entry in extras.values()})
    lines = ["bench profile %r (median of %s)"
             % (payload["profile"], ", ".join(repeats))]
    for workload_name in payload["workload_axis"]:
        section = matrix[workload_name]
        lines.append("[%s] %s" % (workload_name, section["description"]))
        for name in sorted(section["algorithms"]):
            lines.append(_format_entry(width, name,
                                       section["algorithms"][name],
                                       "arsp_size", "variant"))
    if extras:
        lines.append("[extras]")
        for name in sorted(extras):
            lines.append(_format_entry(width, name, extras[name],
                                       "result_size", "workload"))
    return "\n".join(lines)
