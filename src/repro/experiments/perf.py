"""Bench-regression harness for the ARSP hot paths.

``repro bench`` times every registered algorithm on the paper's default
synthetic workload (scaled down exactly like ``benchmarks/workloads.py``)
and writes the per-algorithm medians to ``BENCH_arsp.json``.  The file is
the performance trajectory of the repository: every perf-affecting PR reruns
the harness and records before/after medians in PERFORMANCE.md, so
regressions show up as a diff instead of an anecdote.

Profiles
--------
``default``
    The scaled-down counterpart of the paper's default setting
    (m = 192 objects, cnt = 4, d = 4, WR constraints with c = d - 1);
    minutes of seed-era runtime, seconds after the kernel layer.
``quick``
    A seconds-scale smoke profile used by the benchmark suite's tier-1
    test so the harness itself cannot rot.

Algorithms whose constraint class differs from the generic linear WR set
get a matching workload: DUAL receives the equivalent weight-ratio box,
DUAL-MS a 2-dimensional variant, and ENUM a tiny dataset whose possible
worlds stay enumerable.  Every result is checked against KDTT+ on the same
workload, so the file doubles as an end-to-end parity check.

Beyond the registered ARSP algorithms, an ``extras`` section times the
kernel-layer paths that live outside the registry: the eclipse query
algorithms (QUAD and DUAL-S on a certain-point workload, parity-checked
against the naive eclipse) and the continuous-uncertainty Monte Carlo
sampler.  Extras run whenever no explicit ``--algorithms`` subset is
requested, so the default bench file tracks every vectorized hot path.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import get_algorithm, list_algorithms
from ..continuous.model import UniformBoxObject
from ..continuous.sampling import monte_carlo_object_arsp
from ..core.arsp import arsp_size
from ..core.dataset import UncertainDataset
from ..core.preference import WeightRatioConstraints
from ..data.constraints import weak_ranking_constraints
from ..data.synthetic import (SyntheticConfig, generate_certain_points,
                              generate_uncertain_dataset)
from ..eclipse import dual_s_eclipse, naive_eclipse, quad_eclipse
from .harness import _compare

#: Schema tag written into the JSON payload so future harness versions can
#: evolve the format without ambiguity.
SCHEMA = "repro-bench/1"

#: Default output file, written at the repository root by ``repro bench``.
DEFAULT_OUTPUT = "BENCH_arsp.json"


@dataclass(frozen=True)
class BenchProfile:
    """One named workload scale for the harness."""

    name: str
    num_objects: int
    max_instances: int
    dimension: int
    region_length: float = 0.2
    distribution: str = "IND"
    seed: int = 2024
    repeats: int = 5
    #: ENUM is exponential in the number of objects; it gets its own tiny
    #: dataset so the harness can still time it.
    enum_objects: int = 7
    enum_instances: int = 2
    #: Certain-point workload of the eclipse extras (Fig. 8 shape).
    eclipse_points: int = 1024
    eclipse_dimension: int = 3
    #: Continuous Monte Carlo extras workload.
    mc_objects: int = 16
    mc_trials: int = 400


PROFILES: Dict[str, BenchProfile] = {
    "default": BenchProfile(name="default", num_objects=192, max_instances=4,
                            dimension=4, repeats=5),
    "quick": BenchProfile(name="quick", num_objects=32, max_instances=3,
                          dimension=3, repeats=2, enum_objects=5,
                          eclipse_points=192, eclipse_dimension=2,
                          mc_objects=8, mc_trials=100),
}


def _make_dataset(profile: BenchProfile, num_objects: int, max_instances: int,
                  dimension: int) -> UncertainDataset:
    config = SyntheticConfig(num_objects=num_objects,
                             max_instances=max_instances,
                             dimension=dimension,
                             region_length=profile.region_length,
                             distribution=profile.distribution,
                             seed=profile.seed)
    return generate_uncertain_dataset(config)


def _build_workloads(profile: BenchProfile) -> Dict[str, Tuple[
        UncertainDataset, object, Dict[str, object]]]:
    """The named (dataset, constraints, description) workloads of a profile."""
    d = profile.dimension
    base = _make_dataset(profile, profile.num_objects, profile.max_instances,
                         d)
    ratio = WeightRatioConstraints([(0.5, 2.0)] * (d - 1))
    flat = _make_dataset(profile, profile.num_objects, profile.max_instances,
                         2)
    tiny = _make_dataset(profile, profile.enum_objects,
                         profile.enum_instances, d)
    workloads = {
        "synthetic-wr": (base, weak_ranking_constraints(d),
                         {"constraints": "WR(c=%d)" % (d - 1)}),
        "synthetic-ratio": (base, ratio,
                            {"constraints": "ratio[0.5,2]^%d" % (d - 1)}),
        "synthetic-ratio-2d": (flat, WeightRatioConstraints([(0.5, 2.0)]),
                               {"constraints": "ratio[0.5,2]"}),
        "synthetic-tiny-wr": (tiny, weak_ranking_constraints(d),
                              {"constraints": "WR(c=%d)" % (d - 1)}),
    }
    return workloads


#: Which named workload each registered algorithm runs on.
_WORKLOAD_FOR_ALGORITHM = {
    "enum": "synthetic-tiny-wr",
    "dual": "synthetic-ratio",
    "dual-ms": "synthetic-ratio-2d",
}

#: Reference algorithm used for the parity check of every workload.
_REFERENCE_ALGORITHM = "kdtt+"

#: Names of the non-registry hot paths timed in the ``extras`` section.
EXTRA_PATHS = ("eclipse-quad", "eclipse-dual-s", "continuous-mc")


def _continuous_workload(profile: BenchProfile):
    """Random uniform-box objects for the Monte Carlo extras entry."""
    rng = np.random.default_rng(profile.seed)
    dimension = profile.eclipse_dimension
    objects = []
    for object_id in range(profile.mc_objects):
        lo = rng.uniform(0.0, 0.8, size=dimension)
        hi = lo + rng.uniform(0.05, 0.2, size=dimension)
        objects.append(UniformBoxObject(
            object_id, lo, hi,
            appearance_probability=float(rng.uniform(0.5, 1.0))))
    return objects


def _run_extras(profile: BenchProfile, rounds: int, check: bool
                ) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """Time the eclipse and continuous paths; returns (entries, workloads)."""
    d = profile.eclipse_dimension
    points = generate_certain_points(profile.eclipse_points, d,
                                     distribution=profile.distribution,
                                     seed=profile.seed)
    ratio = WeightRatioConstraints([(0.5, 2.0)] * (d - 1))
    objects = _continuous_workload(profile)

    workloads = {
        "eclipse-ind": {"constraints": "ratio[0.5,2]^%d" % (d - 1),
                        "num_points": profile.eclipse_points,
                        "dimension": d},
        "continuous-boxes": {"constraints": "ratio[0.5,2]^%d" % (d - 1),
                             "num_objects": profile.mc_objects,
                             "trials": profile.mc_trials,
                             "dimension": d},
    }
    runners = {
        "eclipse-quad": ("eclipse-ind",
                         lambda: quad_eclipse(points, ratio)),
        "eclipse-dual-s": ("eclipse-ind",
                           lambda: dual_s_eclipse(points, ratio)),
        "continuous-mc": ("continuous-boxes",
                          lambda: monte_carlo_object_arsp(
                              objects, ratio, num_trials=profile.mc_trials,
                              seed=profile.seed)),
    }
    reference_eclipse = sorted(naive_eclipse(points, ratio)) if check else None

    entries: Dict[str, dict] = {}
    for name in EXTRA_PATHS:
        workload_key, runner = runners[name]
        runs: List[float] = []
        result = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = runner()
            runs.append(time.perf_counter() - start)
        entry = {
            "workload": workload_key,
            "repeats": rounds,
            "runs_s": [round(value, 6) for value in runs],
            "median_s": round(statistics.median(runs), 6),
            "min_s": round(min(runs), 6),
            "result_size": len(result),
        }
        if check and name.startswith("eclipse"):
            entry["parity"] = ("ok" if sorted(result) == reference_eclipse
                               else "eclipse result differs from the naive "
                                    "reference")
        entries[name] = entry
    return entries, workloads


def run_bench(profile: str = "default",
              algorithms: Optional[Sequence[str]] = None,
              repeats: Optional[int] = None,
              output_path: Optional[str] = None,
              check: bool = True) -> Dict[str, object]:
    """Time the registered algorithms and return (and optionally write)
    the ``BENCH_arsp.json`` payload.

    Parameters
    ----------
    profile:
        Name of a :data:`PROFILES` entry (``default`` or ``quick``).
    algorithms:
        Registry names to time; all registered algorithms by default.
    repeats:
        Override the profile's repeat count (the median is reported).
    output_path:
        When given, the payload is written there as JSON.
    check:
        Compare every result against the reference algorithm on the same
        workload and record the outcome in the payload.
    """
    if profile not in PROFILES:
        raise KeyError("unknown bench profile %r; available: %s"
                       % (profile, ", ".join(sorted(PROFILES))))
    resolved = PROFILES[profile]
    rounds = repeats if repeats is not None else resolved.repeats
    if rounds < 1:
        raise ValueError("repeats must be at least 1")
    names = list(algorithms) if algorithms else list_algorithms()

    workloads = _build_workloads(resolved)
    references: Dict[str, Dict[int, float]] = {}
    entries: Dict[str, dict] = {}
    for name in names:
        workload_key = _WORKLOAD_FOR_ALGORITHM.get(name, "synthetic-wr")
        dataset, constraints, _ = workloads[workload_key]
        implementation = get_algorithm(name)
        runs: List[float] = []
        result: Dict[int, float] = {}
        for _ in range(rounds):
            start = time.perf_counter()
            result = implementation(dataset, constraints)
            runs.append(time.perf_counter() - start)
        entry = {
            "workload": workload_key,
            "repeats": rounds,
            "runs_s": [round(value, 6) for value in runs],
            "median_s": round(statistics.median(runs), 6),
            "min_s": round(min(runs), 6),
            "arsp_size": arsp_size(result),
        }
        if check:
            if workload_key not in references:
                if name == _REFERENCE_ALGORITHM:
                    references[workload_key] = result
                else:
                    reference = get_algorithm(_REFERENCE_ALGORITHM)
                    references[workload_key] = reference(dataset, constraints)
            mismatch = _compare(references[workload_key], result)
            entry["parity"] = mismatch if mismatch else "ok"
        entries[name] = entry

    # The extras cover the vectorized paths outside the algorithm registry;
    # an explicit --algorithms subset is a request to time just that subset.
    extras: Dict[str, dict] = {}
    extra_workloads: Dict[str, dict] = {}
    if algorithms is None:
        extras, extra_workloads = _run_extras(resolved, rounds, check)

    payload = {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "profile": resolved.name,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "reference_algorithm": _REFERENCE_ALGORITHM if check else None,
        "workloads": dict(
            {key: dict(meta,
                       num_objects=dataset.num_objects,
                       num_instances=dataset.num_instances,
                       dimension=dataset.dimension)
             for key, (dataset, _, meta) in workloads.items()},
            **extra_workloads),
        "algorithms": entries,
        "extras": extras,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def format_bench(payload: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_bench` payload."""
    lines = ["bench profile %r (median of %s)" % (
        payload["profile"],
        ", ".join(sorted({str(entry["repeats"]) + " runs"
                          for entry in payload["algorithms"].values()})))]
    extras = payload.get("extras") or {}
    width = max(len(name) for name in
                list(payload["algorithms"]) + list(extras))
    for name in sorted(payload["algorithms"]):
        entry = payload["algorithms"][name]
        parity = entry.get("parity")
        suffix = "" if parity in (None, "ok") else "  PARITY: %s" % parity
        lines.append("%-*s  %9.4f s  (min %.4f, ARSP size %d, %s)%s"
                     % (width, name, entry["median_s"], entry["min_s"],
                        entry["arsp_size"], entry["workload"], suffix))
    for name in sorted(extras):
        entry = extras[name]
        parity = entry.get("parity")
        suffix = "" if parity in (None, "ok") else "  PARITY: %s" % parity
        lines.append("%-*s  %9.4f s  (min %.4f, size %d, %s)%s"
                     % (width, name, entry["median_s"], entry["min_s"],
                        entry["result_size"], entry["workload"], suffix))
    return "\n".join(lines)
