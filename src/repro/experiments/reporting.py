"""Plain-text formatting of experiment results.

The paper reports its evaluation as tables (Table I / II) and as running-time
/ result-size series over a swept parameter (Figs. 5-8).  The helpers here
turn the structured results produced by the harness into the same rows and
series, printed as aligned plain text so the benchmark output can be compared
directly with the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    columns = [list(map(_fmt, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(map(_fmt, headers),
                                                       widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(cell).ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(parameter_name: str,
                  parameter_values: Sequence[object],
                  series: Mapping[str, Sequence[object]],
                  title: str = "") -> str:
    """Render one swept parameter against several measured series.

    ``series`` maps a series name (e.g. an algorithm) to one value per
    parameter setting; missing values may be ``None`` and are rendered as
    ``-`` (the paper uses INF for algorithms that exceed the time limit).
    """
    headers = [parameter_name] + list(series)
    rows = []
    for position, value in enumerate(parameter_values):
        row = [value]
        for name in series:
            values = series[name]
            row.append(values[position] if position < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return "%.3e" % value
        return "%.4g" % value
    return str(value)


def merge_series(results: Sequence[Mapping[str, object]],
                 keys: Sequence[str]) -> Dict[str, List[object]]:
    """Collect per-run dictionaries into parallel series keyed by ``keys``."""
    return {key: [run.get(key) for run in results] for key in keys}
