"""Parameter sweeps behind Figures 5-8.

Every function returns a list of :class:`~repro.experiments.harness.SweepPoint`
(or, for Figs. 7/8, a list of per-point dictionaries) and can be rendered
with :func:`repro.experiments.reporting.format_series`.  Default parameter
values follow the paper's defaults but the sizes are scaled down so the
pure-Python implementation finishes in benchmark-friendly time; the sweep
grids themselves are arguments, so the full paper-scale experiment is a
matter of passing larger values.

Paper defaults (Section V-A): ``m = 16K``, ``cnt = 400``, ``d = 4``,
``l = 0.2``, ``φ = 0``, WR constraints with ``c = d - 1``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.dual2d import Dual2DIndex
from ..algorithms.kdtree_traversal import kdtree_traversal_arsp
from ..core.dataset import UncertainDataset
from ..core.preference import LinearConstraints, WeightRatioConstraints
from ..data.constraints import interactive_constraints, weak_ranking_constraints
from ..data.real import car_dataset, iip_dataset, nba_dataset
from ..data.synthetic import (SyntheticConfig, generate_certain_points,
                              generate_uncertain_dataset)
from ..eclipse import dual_s_eclipse, quad_eclipse
from .harness import SweepPoint, run_algorithms, time_call

#: Algorithms shown in the Fig. 5 / Fig. 6 running-time plots (ENUM is shown
#: only at the smallest sizes in the paper and is omitted by default here).
DEFAULT_ALGORITHMS = ("loop", "kdtt+", "qdtt+", "bnb")


# ----------------------------------------------------------------------
# Figure 5: synthetic datasets, general linear constraints
# ----------------------------------------------------------------------
def synthetic_workload(num_objects: int = 200, max_instances: int = 5,
                       dimension: int = 4, region_length: float = 0.2,
                       incomplete_fraction: float = 0.0,
                       distribution: str = "IND",
                       num_constraints: Optional[int] = None,
                       constraint_generator: str = "WR",
                       seed: int = 7) -> Tuple[UncertainDataset, LinearConstraints]:
    """One synthetic workload (dataset + constraints) with paper semantics."""
    config = SyntheticConfig(num_objects=num_objects,
                             max_instances=max_instances,
                             dimension=dimension,
                             region_length=region_length,
                             incomplete_fraction=incomplete_fraction,
                             distribution=distribution,
                             seed=seed)
    dataset = generate_uncertain_dataset(config)
    if num_constraints is None:
        num_constraints = dimension - 1
    if constraint_generator.upper() == "WR":
        constraints = weak_ranking_constraints(dimension, num_constraints)
    elif constraint_generator.upper() == "IM":
        constraints = interactive_constraints(dimension, num_constraints,
                                              seed=seed)
    else:
        raise ValueError("constraint_generator must be 'WR' or 'IM'")
    return dataset, constraints


def figure5_sweep(parameter: str, values: Sequence[object],
                  distribution: str = "IND",
                  algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                  constraint_generator: str = "WR",
                  base: Optional[Dict[str, object]] = None,
                  check_consistency: bool = False) -> List[SweepPoint]:
    """Generic Fig. 5 sweep over one of m / cnt / d / l / phi / c."""
    base = dict(base or {})
    base.setdefault("distribution", distribution)
    base.setdefault("constraint_generator", constraint_generator)
    parameter_to_kwarg = {
        "m": "num_objects",
        "cnt": "max_instances",
        "d": "dimension",
        "l": "region_length",
        "phi": "incomplete_fraction",
        "c": "num_constraints",
    }
    if parameter not in parameter_to_kwarg:
        raise ValueError("unknown Fig. 5 parameter %r" % parameter)
    kwarg = parameter_to_kwarg[parameter]

    points: List[SweepPoint] = []
    for value in values:
        kwargs = dict(base)
        kwargs[kwarg] = value
        dataset, constraints = synthetic_workload(**kwargs)
        runs = run_algorithms(dataset, constraints, algorithms,
                              check_consistency=check_consistency)
        points.append(SweepPoint(parameter=parameter, value=value, runs=runs))
    return points


# ----------------------------------------------------------------------
# Figure 6: real (simulated) datasets
# ----------------------------------------------------------------------
def real_dataset(name: str, seed: int = 11, **kwargs) -> UncertainDataset:
    """Instantiate one of the simulated real datasets by name."""
    name = name.upper()
    if name == "IIP":
        return iip_dataset(seed=seed, **kwargs)
    if name == "CAR":
        return car_dataset(seed=seed, **kwargs)
    if name == "NBA":
        return nba_dataset(seed=seed, **kwargs)
    raise ValueError("unknown real dataset %r (expected IIP, CAR or NBA)"
                     % name)


def figure6_sweep(dataset_name: str, parameter: str,
                  values: Sequence[object],
                  algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                  seed: int = 11,
                  dataset_kwargs: Optional[Dict[str, object]] = None
                  ) -> List[SweepPoint]:
    """Fig. 6 sweep on a real dataset over ``m`` (%), ``d`` or ``c``."""
    dataset_kwargs = dict(dataset_kwargs or {})
    full = real_dataset(dataset_name, seed=seed, **dataset_kwargs)
    rng = np.random.default_rng(seed)
    points: List[SweepPoint] = []
    for value in values:
        if parameter == "m":
            count = max(1, int(round(full.num_objects * float(value) / 100.0)))
            selected = rng.choice(full.num_objects, size=count, replace=False)
            dataset = full.subset(sorted(int(i) for i in selected))
            constraints = weak_ranking_constraints(dataset.dimension)
        elif parameter == "d":
            dims = list(range(int(value)))
            dataset = full.project(dims)
            constraints = weak_ranking_constraints(int(value))
        elif parameter == "c":
            dataset = full
            constraints = weak_ranking_constraints(full.dimension, int(value))
        else:
            raise ValueError("unknown Fig. 6 parameter %r" % parameter)
        runs = run_algorithms(dataset, constraints, algorithms)
        points.append(SweepPoint(parameter=parameter, value=value, runs=runs))
    return points


# ----------------------------------------------------------------------
# Figure 7: specialised DUAL-MS (d = 2) vs KDTT+ on IIP
# ----------------------------------------------------------------------
def figure7_dual_ms(fractions: Sequence[float] = (20, 40, 60, 80, 100),
                    num_records: int = 400,
                    ratio_range: Tuple[float, float] = (0.5, 2.0),
                    seed: int = 13) -> List[Dict[str, float]]:
    """Query time of DUAL-MS vs KDTT+ on the IIP dataset, plus DUAL-MS
    preprocessing time (the three series of Fig. 7(b))."""
    full = iip_dataset(num_records=num_records, seed=seed)
    rng = np.random.default_rng(seed)
    constraints = WeightRatioConstraints([ratio_range])
    rows: List[Dict[str, float]] = []
    for fraction in fractions:
        count = max(2, int(round(full.num_objects * float(fraction) / 100.0)))
        selected = rng.choice(full.num_objects, size=count, replace=False)
        dataset = full.subset(sorted(int(i) for i in selected))

        index, preprocessing = time_call(Dual2DIndex, dataset)
        _, query_seconds = time_call(index.query, constraints)
        _, kdtt_seconds = time_call(kdtree_traversal_arsp, dataset,
                                    constraints)
        rows.append({
            "m_percent": float(fraction),
            "num_instances": float(dataset.num_instances),
            "dual_ms_preprocess_s": preprocessing,
            "dual_ms_query_s": query_seconds,
            "kdtt_plus_s": kdtt_seconds,
        })
    return rows


# ----------------------------------------------------------------------
# Figure 8: eclipse queries, DUAL-S vs QUAD
# ----------------------------------------------------------------------
DEFAULT_RATIO_RANGE = (0.36, 2.75)
FIG8_RATIO_RANGES = ((0.84, 1.19), (0.58, 1.73), (0.36, 2.75), (0.18, 5.67))


def figure8_sweep(parameter: str, values: Sequence[object],
                  default_n: int = 2 ** 12, default_d: int = 3,
                  default_range: Tuple[float, float] = DEFAULT_RATIO_RANGE,
                  distribution: str = "IND",
                  seed: int = 17) -> List[Dict[str, object]]:
    """Running time of QUAD vs DUAL-S over ``n``, ``d`` or ``q`` (Fig. 8)."""
    rows: List[Dict[str, object]] = []
    for value in values:
        n, d, ratio = default_n, default_d, default_range
        if parameter == "n":
            n = int(value)
        elif parameter == "d":
            d = int(value)
        elif parameter == "q":
            ratio = tuple(value)
        else:
            raise ValueError("unknown Fig. 8 parameter %r" % parameter)
        points = generate_certain_points(n, d, distribution=distribution,
                                         seed=seed)
        constraints = WeightRatioConstraints([ratio] * (d - 1))
        quad_result, quad_seconds = time_call(quad_eclipse, points,
                                              constraints)
        dual_result, dual_seconds = time_call(dual_s_eclipse, points,
                                              constraints)
        rows.append({
            "parameter": parameter,
            "value": value,
            "quad_s": quad_seconds,
            "dual_s_s": dual_seconds,
            "eclipse_size": len(dual_result),
            "results_match": sorted(quad_result) == sorted(dual_result),
        })
    return rows
