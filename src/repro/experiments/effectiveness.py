"""Effectiveness study: Table I, Table II and Fig. 4 (Section V-B).

The paper's effectiveness analysis runs on the NBA dataset restricted to
three metrics (rebounds, assists, points) with the weak-ranking preference
``ω[1] >= ω[2] >= ω[3]`` and contrasts three views of the data:

* the top players by *rskyline probability* (Table I),
* the membership of the *aggregated rskyline* — the rskyline of the dataset
  of per-player averages — marked with ``*`` in Table I,
* the top players by *skyline probability* (Table II),
* the per-vertex score distributions that explain the differences (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.asp import object_skyline_probabilities
from ..core.arsp import compute_arsp, object_rskyline_probabilities
from ..core.dataset import UncertainDataset
from ..core.preference import resolve_preference_region
from ..core.rskyline import rskyline
from .reporting import format_table


@dataclass
class RankedObject:
    """One row of Table I / Table II."""

    object_id: int
    label: str
    probability: float
    in_aggregated_rskyline: bool = False


def aggregated_rskyline_ids(dataset: UncertainDataset, constraints
                            ) -> List[int]:
    """Object ids belonging to the rskyline of the aggregated dataset."""
    aggregated = dataset.aggregate()
    points = [obj.instances[0].values for obj in aggregated.objects]
    return rskyline(points, constraints)


def rskyline_probability_ranking(dataset: UncertainDataset, constraints,
                                 top_k: int = 14,
                                 algorithm: str = "kdtt+",
                                 arsp: Optional[Dict[int, float]] = None
                                 ) -> List[RankedObject]:
    """Table I: top objects by rskyline probability, with aggregated marks."""
    if arsp is None:
        arsp = compute_arsp(dataset, constraints, algorithm=algorithm)
    per_object = object_rskyline_probabilities(dataset, arsp)
    aggregated = set(aggregated_rskyline_ids(dataset, constraints))
    ranking = sorted(per_object.items(), key=lambda item: (-item[1], item[0]))
    rows = []
    for object_id, probability in ranking[:top_k]:
        obj = dataset.object(object_id)
        rows.append(RankedObject(
            object_id=object_id,
            label=obj.label or ("object-%d" % object_id),
            probability=probability,
            in_aggregated_rskyline=object_id in aggregated))
    return rows


def skyline_probability_ranking(dataset: UncertainDataset,
                                top_k: int = 14) -> List[RankedObject]:
    """Table II: top objects by skyline probability."""
    per_object = object_skyline_probabilities(dataset)
    ranking = sorted(per_object.items(), key=lambda item: (-item[1], item[0]))
    rows = []
    for object_id, probability in ranking[:top_k]:
        obj = dataset.object(object_id)
        rows.append(RankedObject(
            object_id=object_id,
            label=obj.label or ("object-%d" % object_id),
            probability=probability))
    return rows


def score_distributions(dataset: UncertainDataset, constraints,
                        object_ids: Sequence[int]) -> Dict[int, List[Dict[str, float]]]:
    """Fig. 4: per-vertex boxplot statistics of selected objects' scores.

    For every requested object and every vertex of the preference region the
    five-number summary (plus the mean) of the scores of its instances is
    returned — the textual equivalent of the paper's boxplots.
    """
    region = resolve_preference_region(constraints)
    result: Dict[int, List[Dict[str, float]]] = {}
    for object_id in object_ids:
        obj = dataset.object(object_id)
        points = np.asarray([inst.values for inst in obj], dtype=float)
        scores = region.score_matrix(points)
        summaries = []
        for vertex_index in range(region.num_vertices):
            column = scores[:, vertex_index]
            summaries.append({
                "min": float(column.min()),
                "q1": float(np.percentile(column, 25)),
                "median": float(np.median(column)),
                "q3": float(np.percentile(column, 75)),
                "max": float(column.max()),
                "mean": float(column.mean()),
            })
        result[object_id] = summaries
    return result


def rank_correlation(first: Sequence[RankedObject],
                     second: Sequence[RankedObject]) -> float:
    """Fraction of objects shared by two rankings (overlap coefficient).

    Used to quantify the paper's observation that rskyline and skyline
    probability rankings agree on the strongest objects but diverge in the
    tail.
    """
    ids_first = {row.object_id for row in first}
    ids_second = {row.object_id for row in second}
    if not ids_first or not ids_second:
        return 0.0
    return len(ids_first & ids_second) / float(min(len(ids_first),
                                                   len(ids_second)))


def format_ranking_table(rows: Sequence[RankedObject], title: str,
                         probability_header: str = "Pr_rsky") -> str:
    """Render a ranking as a Table I / Table II style text table."""
    table_rows = []
    for row in rows:
        marker = "*" if row.in_aggregated_rskyline else " "
        table_rows.append([marker, row.label, round(row.probability, 3)])
    return format_table(["", "Object", probability_header], table_rows,
                        title=title)
