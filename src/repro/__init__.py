"""repro — reproduction of "Computing All Restricted Skyline Probabilities
on Uncertain Datasets" (ICDE 2024).

The package computes the rskyline probability of every instance of an
uncertain dataset under a user-supplied set of linear scoring functions, and
ships every algorithm, baseline, workload generator and experiment harness
needed to regenerate the paper's evaluation.

Quickstart
----------
>>> from repro import UncertainDataset, LinearConstraints, compute_arsp
>>> dataset = UncertainDataset.from_instance_lists(
...     [[(1.0, 5.0), (2.0, 4.0)], [(3.0, 1.0)], [(4.0, 4.0)]])
>>> constraints = LinearConstraints.weak_ranking(dimension=2)
>>> arsp = compute_arsp(dataset, constraints, algorithm="kdtt+")
"""

from .core.arsp import (arsp_size, compute_arsp,
                        object_rskyline_probabilities, threshold_query,
                        top_k_objects)
from .core.backend import (AlgorithmResult, ExecutionPolicy,
                           ExecutionReport, ShardExecutionError)
from .core.dataset import Instance, UncertainDataset, UncertainObject
from .core.faults import FaultPlan
from .core.preference import (LinearConstraints, PreferenceRegion,
                              WeightRatioConstraints)
from .core.rskyline import eclipse, rskyline, skyline
from .algorithms import (compute_asp, compute_skyline_probabilities,
                         get_algorithm, list_algorithms)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmResult",
    "ExecutionPolicy",
    "ExecutionReport",
    "FaultPlan",
    "Instance",
    "LinearConstraints",
    "PreferenceRegion",
    "ShardExecutionError",
    "UncertainDataset",
    "UncertainObject",
    "WeightRatioConstraints",
    "arsp_size",
    "compute_arsp",
    "compute_asp",
    "compute_skyline_probabilities",
    "eclipse",
    "get_algorithm",
    "list_algorithms",
    "object_rskyline_probabilities",
    "rskyline",
    "skyline",
    "threshold_query",
    "top_k_objects",
    "__version__",
]
