"""Continuous uncertainty extension.

The paper's conclusion lists rskyline analysis over *continuous* uncertainty
models as an open direction: when each object is a continuous distribution,
the dominance probabilities become integrals that are expensive to evaluate
exactly.  This subpackage provides the two standard practical routes and is
the repository's implementation of that future-work item:

* :func:`discretize` — sample each continuous object into a discrete
  uncertain object and run any exact ARSP algorithm on the result;
* :func:`monte_carlo_object_arsp` — estimate object-level rskyline
  probabilities directly by sampling possible worlds, with standard errors.
"""

from .model import (ContinuousUncertainObject, GaussianObject,
                    UniformBoxObject)
from .sampling import discretize, discretized_arsp, monte_carlo_object_arsp

__all__ = [
    "ContinuousUncertainObject",
    "GaussianObject",
    "UniformBoxObject",
    "discretize",
    "discretized_arsp",
    "monte_carlo_object_arsp",
]
