"""Continuous uncertain object models.

An object is described by a continuous distribution over ``R^d`` plus an
*appearance probability*: with probability ``1 - appearance_probability``
the object does not materialise at all, mirroring the discrete model's
objects whose instance probabilities sum to less than one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np


class ContinuousUncertainObject(ABC):
    """Base class for continuously distributed uncertain objects."""

    def __init__(self, object_id: int, appearance_probability: float = 1.0,
                 label: Optional[str] = None):
        if not 0.0 < appearance_probability <= 1.0:
            raise ValueError("appearance probability must be in (0, 1]")
        self.object_id = int(object_id)
        self.appearance_probability = float(appearance_probability)
        self.label = label

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality of the attribute space."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` attribute vectors from the object's distribution."""

    @abstractmethod
    def mean(self) -> np.ndarray:
        """Mean attribute vector (used for aggregated comparisons)."""


class UniformBoxObject(ContinuousUncertainObject):
    """Uniform distribution over an axis-aligned box ``[lo, hi]``.

    This is the continuous analogue of the paper's synthetic generator,
    which places instances uniformly inside a hyper-rectangle around the
    object centre.
    """

    def __init__(self, object_id: int, lo: Sequence[float],
                 hi: Sequence[float], appearance_probability: float = 1.0,
                 label: Optional[str] = None):
        super().__init__(object_id, appearance_probability, label)
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("lo and hi must be 1-D arrays of equal length")
        if np.any(self.lo > self.hi):
            raise ValueError("lo must not exceed hi")

    @property
    def dimension(self) -> int:
        return self.lo.shape[0]

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self.lo, self.hi, size=(count, self.dimension))

    def mean(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0


class GaussianObject(ContinuousUncertainObject):
    """Axis-aligned Gaussian distribution, optionally truncated to a box.

    Measurement noise around a point estimate is the textbook source of
    continuous uncertainty (e.g. predicted stock price with a confidence
    band); truncation keeps samples inside the valid attribute domain.
    """

    def __init__(self, object_id: int, mean: Sequence[float],
                 std: Sequence[float], appearance_probability: float = 1.0,
                 bounds: Optional[Sequence[Sequence[float]]] = None,
                 label: Optional[str] = None):
        super().__init__(object_id, appearance_probability, label)
        self._mean = np.asarray(mean, dtype=float)
        self._std = np.asarray(std, dtype=float)
        if self._mean.shape != self._std.shape or self._mean.ndim != 1:
            raise ValueError("mean and std must be 1-D arrays of equal length")
        if np.any(self._std < 0):
            raise ValueError("standard deviations must be non-negative")
        if bounds is not None:
            self._lo = np.asarray(bounds[0], dtype=float)
            self._hi = np.asarray(bounds[1], dtype=float)
        else:
            self._lo = None
            self._hi = None

    @property
    def dimension(self) -> int:
        return self._mean.shape[0]

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        samples = rng.normal(self._mean, self._std,
                             size=(count, self.dimension))
        if self._lo is not None:
            samples = np.clip(samples, self._lo, self._hi)
        return samples

    def mean(self) -> np.ndarray:
        return self._mean.copy()
