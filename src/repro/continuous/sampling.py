"""Discretisation and Monte Carlo estimation for continuous uncertainty.

Two complementary approaches, both reducing to machinery that already exists
in the package:

* :func:`discretize` turns each continuous object into a discrete uncertain
  object by sampling; any exact ARSP algorithm then applies.  As the number
  of samples grows the discretised probabilities converge to the continuous
  ones (at the cost of a larger instance count).
* :func:`monte_carlo_object_arsp` estimates the *object-level* rskyline
  probability directly: sample a possible world (one point per appearing
  object), compute its rskyline with the certain-data operator, repeat.  It
  returns the estimate together with its standard error, so callers can pick
  the trial count for a target accuracy.

The Monte Carlo path runs through the kernel layer (docs/ARCHITECTURE.md):
all appearance flags are drawn as one ``(trials, objects)`` matrix, every
object contributes one ``(trials, d)`` sample matrix, and whole batches of
possible worlds are scored with a single
:func:`repro.core.kernels.weak_dominance_tensor` evaluation per chunk
(:func:`count_world_hits`) instead of the former per-trial, per-pair scalar
loop.  The dominance comparisons match the scalar
:func:`repro.core.dominance.f_dominates_scores` exactly; the property tests
pin the batched world scoring to a scalar re-count of the same worlds.
Note the vectorized sampler consumes the random stream in a different order
than the former per-trial loop, so estimates for a fixed seed differ (both
are unbiased draws from the same distributions).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.arsp import compute_arsp, object_rskyline_probabilities
from ..core.dataset import UncertainDataset
from ..core.kernels import weak_dominance_tensor
from ..core.numeric import SCORE_ATOL
from ..core.preference import resolve_preference_region
from .model import ContinuousUncertainObject

#: Upper bound on the number of dominance-tensor entries held in memory at
#: once; :func:`count_world_hits` chunks its trial axis accordingly.
_CHUNK_BUDGET = 4_000_000


def discretize(objects: Sequence[ContinuousUncertainObject],
               samples_per_object: int = 16,
               seed: Optional[int] = None) -> UncertainDataset:
    """Sample every continuous object into a discrete uncertain object.

    Each object contributes ``samples_per_object`` instances with equal
    probability ``appearance_probability / samples_per_object``, so objects
    that may not materialise keep a total probability below one.
    """
    if samples_per_object < 1:
        raise ValueError("samples_per_object must be positive")
    _validate_objects(objects)
    rng = np.random.default_rng(seed)
    instance_lists = []
    probability_lists = []
    labels = []
    for obj in objects:
        points = obj.sample(rng, samples_per_object)
        probability = obj.appearance_probability / samples_per_object
        instance_lists.append([tuple(point) for point in points])
        probability_lists.append([probability] * samples_per_object)
        labels.append(obj.label if obj.label is not None
                      else "object-%d" % obj.object_id)
    return UncertainDataset.from_instance_lists(instance_lists,
                                                probability_lists,
                                                labels=labels)


def discretized_arsp(objects: Sequence[ContinuousUncertainObject],
                     constraints, samples_per_object: int = 16,
                     algorithm: str = "auto",
                     seed: Optional[int] = None) -> Dict[int, float]:
    """Object-level rskyline probabilities via discretisation + exact ARSP."""
    dataset = discretize(objects, samples_per_object=samples_per_object,
                         seed=seed)
    instance_probabilities = compute_arsp(dataset, constraints,
                                          algorithm=algorithm)
    per_object = object_rskyline_probabilities(dataset,
                                               instance_probabilities)
    return {objects[index].object_id: per_object[index]
            for index in range(len(objects))}


def monte_carlo_object_arsp(objects: Sequence[ContinuousUncertainObject],
                            constraints, num_trials: int = 500,
                            seed: Optional[int] = None
                            ) -> Dict[int, Tuple[float, float]]:
    """Monte Carlo estimate of every object's rskyline probability.

    Returns ``{object_id: (estimate, standard_error)}``.  Each trial samples
    one possible world: every object appears with its appearance probability
    and, if it appears, materialises as a single draw from its distribution;
    the objects whose draws are not F-dominated by another appearing object's
    draw score a hit.

    All trials are drawn and scored as whole matrices: one appearance draw,
    one sample matrix per object, one score-space mapping, and batched world
    scoring through :func:`count_world_hits`.
    """
    if num_trials < 1:
        raise ValueError("num_trials must be positive")
    _validate_objects(objects)
    region = resolve_preference_region(constraints)
    if objects and region.dimension != objects[0].dimension:
        raise ValueError("constraints are defined for dimension %d but the "
                         "objects have dimension %d"
                         % (region.dimension, objects[0].dimension))
    rng = np.random.default_rng(seed)
    num_objects = len(objects)
    appearance = np.asarray([obj.appearance_probability for obj in objects])

    # Draw, score and count whole trial chunks; the chunk bound covers both
    # the (chunk, m, d') sample/score tensors and the (chunk, m, m)
    # dominance tensor of the world scoring.
    entries_per_trial = num_objects * num_objects * max(
        1, region.num_vertices, objects[0].dimension)
    chunk = max(1, _CHUNK_BUDGET // entries_per_trial)
    hits = np.zeros(num_objects, dtype=np.int64)
    for begin in range(0, num_trials, chunk):
        count = min(num_trials, begin + chunk) - begin
        appearing = rng.random((count, num_objects)) < appearance
        # One (count, d) sample matrix per object, stacked to (count, m, d).
        samples = np.stack([obj.sample(rng, count) for obj in objects],
                           axis=1)
        dimension = samples.shape[2]
        scores = region.score_matrix(
            samples.reshape(count * num_objects, dimension)).reshape(
                count, num_objects, -1)
        hits += count_world_hits(scores, appearing)
    estimates: Dict[int, Tuple[float, float]] = {}
    for position, obj in enumerate(objects):
        probability = int(hits[position]) / num_trials
        standard_error = math.sqrt(max(probability * (1.0 - probability), 0.0)
                                   / num_trials)
        estimates[obj.object_id] = (probability, standard_error)
    return estimates


def count_world_hits(scores: np.ndarray, appearing: np.ndarray,
                     atol: float = SCORE_ATOL) -> np.ndarray:
    """Per-object rskyline hit counts over a batch of possible worlds.

    ``scores`` is the ``(trials, m, d')`` tensor of score vectors and
    ``appearing`` the ``(trials, m)`` boolean appearance matrix.  An object
    scores a hit in a trial when it appears and no *other* appearing
    object's score vector weakly dominates its own — the same rule the
    former per-trial loop applied with
    :func:`repro.core.dominance.f_dominates_scores`.  Whole trial chunks
    are resolved with one :func:`repro.core.kernels.weak_dominance_tensor`
    call each; chunk size is bounded by the kernel's ``O(b m^2 d')``
    memory.  Returns the ``(m,)`` integer hit counts.
    """
    num_trials, num_objects = appearing.shape
    hits = np.zeros(num_objects, dtype=np.int64)
    if num_trials == 0 or num_objects == 0:
        return hits
    entries_per_trial = num_objects * num_objects * max(1, scores.shape[2])
    chunk = max(1, _CHUNK_BUDGET // entries_per_trial)
    eye = np.eye(num_objects, dtype=bool)
    for begin in range(0, num_trials, chunk):
        end = min(num_trials, begin + chunk)
        block_scores = scores[begin:end]
        block_appearing = appearing[begin:end]
        # dominates[t, j, i]: appearing object j weakly dominates object i
        # in trial t (self-pairs removed).
        dominates = weak_dominance_tensor(block_scores, atol=atol)
        dominates &= block_appearing[:, :, None]
        dominates &= ~eye[None, :, :]
        dominated = dominates.any(axis=1)
        hits += (block_appearing & ~dominated).sum(axis=0)
    return hits


def _validate_objects(objects: Sequence[ContinuousUncertainObject]) -> None:
    if not objects:
        raise ValueError("at least one continuous object is required")
    dimension = objects[0].dimension
    seen = set()
    for obj in objects:
        if obj.dimension != dimension:
            raise ValueError("all objects must share the same dimension")
        if obj.object_id in seen:
            raise ValueError("duplicate object id %d" % obj.object_id)
        seen.add(obj.object_id)
