"""Discretisation and Monte Carlo estimation for continuous uncertainty.

Two complementary approaches, both reducing to machinery that already exists
in the package:

* :func:`discretize` turns each continuous object into a discrete uncertain
  object by sampling; any exact ARSP algorithm then applies.  As the number
  of samples grows the discretised probabilities converge to the continuous
  ones (at the cost of a larger instance count).
* :func:`monte_carlo_object_arsp` estimates the *object-level* rskyline
  probability directly: sample a possible world (one point per appearing
  object), compute its rskyline with the certain-data operator, repeat.  It
  returns the estimate together with its standard error, so callers can pick
  the trial count for a target accuracy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.arsp import compute_arsp, object_rskyline_probabilities
from ..core.dataset import UncertainDataset
from ..core.dominance import f_dominates_scores
from ..core.preference import resolve_preference_region
from .model import ContinuousUncertainObject


def discretize(objects: Sequence[ContinuousUncertainObject],
               samples_per_object: int = 16,
               seed: Optional[int] = None) -> UncertainDataset:
    """Sample every continuous object into a discrete uncertain object.

    Each object contributes ``samples_per_object`` instances with equal
    probability ``appearance_probability / samples_per_object``, so objects
    that may not materialise keep a total probability below one.
    """
    if samples_per_object < 1:
        raise ValueError("samples_per_object must be positive")
    _validate_objects(objects)
    rng = np.random.default_rng(seed)
    instance_lists = []
    probability_lists = []
    labels = []
    for obj in objects:
        points = obj.sample(rng, samples_per_object)
        probability = obj.appearance_probability / samples_per_object
        instance_lists.append([tuple(point) for point in points])
        probability_lists.append([probability] * samples_per_object)
        labels.append(obj.label if obj.label is not None
                      else "object-%d" % obj.object_id)
    return UncertainDataset.from_instance_lists(instance_lists,
                                                probability_lists,
                                                labels=labels)


def discretized_arsp(objects: Sequence[ContinuousUncertainObject],
                     constraints, samples_per_object: int = 16,
                     algorithm: str = "auto",
                     seed: Optional[int] = None) -> Dict[int, float]:
    """Object-level rskyline probabilities via discretisation + exact ARSP."""
    dataset = discretize(objects, samples_per_object=samples_per_object,
                         seed=seed)
    instance_probabilities = compute_arsp(dataset, constraints,
                                          algorithm=algorithm)
    per_object = object_rskyline_probabilities(dataset,
                                               instance_probabilities)
    return {objects[index].object_id: per_object[index]
            for index in range(len(objects))}


def monte_carlo_object_arsp(objects: Sequence[ContinuousUncertainObject],
                            constraints, num_trials: int = 500,
                            seed: Optional[int] = None
                            ) -> Dict[int, Tuple[float, float]]:
    """Monte Carlo estimate of every object's rskyline probability.

    Returns ``{object_id: (estimate, standard_error)}``.  Each trial samples
    one possible world: every object appears with its appearance probability
    and, if it appears, materialises as a single draw from its distribution;
    the objects whose draws are not F-dominated by another appearing object's
    draw score a hit.
    """
    if num_trials < 1:
        raise ValueError("num_trials must be positive")
    _validate_objects(objects)
    region = resolve_preference_region(constraints)
    if objects and region.dimension != objects[0].dimension:
        raise ValueError("constraints are defined for dimension %d but the "
                         "objects have dimension %d"
                         % (region.dimension, objects[0].dimension))
    rng = np.random.default_rng(seed)
    hits = {obj.object_id: 0 for obj in objects}

    for _ in range(num_trials):
        appearing = [obj for obj in objects
                     if rng.random() < obj.appearance_probability]
        if not appearing:
            continue
        points = np.vstack([obj.sample(rng, 1)[0] for obj in appearing])
        scores = region.score_matrix(points)
        for i, obj in enumerate(appearing):
            dominated = False
            for j in range(len(appearing)):
                if i != j and f_dominates_scores(scores[j], scores[i]):
                    dominated = True
                    break
            if not dominated:
                hits[obj.object_id] += 1

    estimates: Dict[int, Tuple[float, float]] = {}
    for obj in objects:
        probability = hits[obj.object_id] / num_trials
        standard_error = math.sqrt(max(probability * (1.0 - probability), 0.0)
                                   / num_trials)
        estimates[obj.object_id] = (probability, standard_error)
    return estimates


def _validate_objects(objects: Sequence[ContinuousUncertainObject]) -> None:
    if not objects:
        raise ValueError("at least one continuous object is required")
    dimension = objects[0].dimension
    seen = set()
    for obj in objects:
        if obj.dimension != dimension:
            raise ValueError("all objects must share the same dimension")
        if obj.object_id in seen:
            raise ValueError("duplicate object id %d" % obj.object_id)
        seen.add(obj.object_id)
