"""Dominance predicates.

Three related predicates are used throughout the paper:

* classical (Pareto) dominance ``t ⪯ s``: ``t[i] <= s[i]`` for every
  attribute;
* F-dominance for general linear constraints (Theorem 2): ``t ≺_F s`` iff
  ``S_ω(t) <= S_ω(s)`` for every vertex ``ω`` of the preference region;
* the O(d) F-dominance test for weight ratio constraints (Theorem 5).

All predicates are *weak*: they hold when every comparison is an equality.
The algorithms only ever apply them between instances of different uncertain
objects, which is the form used in equation (3) of the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .numeric import SCORE_ATOL
from .preference import (LinearConstraints, PreferenceRegion,
                         WeightRatioConstraints, resolve_preference_region)


def dominates(t: Sequence[float], s: Sequence[float],
              atol: float = SCORE_ATOL) -> bool:
    """Classical weak dominance: ``t[i] <= s[i]`` for every attribute."""
    return all(a <= b + atol for a, b in zip(t, s))


def in_box(point: Sequence[float], lo: Sequence[float], hi: Sequence[float],
           atol: float = 0.0) -> bool:
    """Closed-box containment: ``lo[i] <= point[i] <= hi[i]`` everywhere.

    The scalar specification of the window-aggregate predicate of the
    aggregated R-tree (:mod:`repro.index.rtree`) and of the batched
    :func:`repro.core.kernels.points_in_boxes` kernel.  Window aggregates
    count *exact* closed-box membership of score vectors, so the default
    tolerance is ``0.0``, unlike the dominance predicates below.
    """
    return all(a - atol <= p <= b + atol
               for p, a, b in zip(point, lo, hi))


def strictly_dominates(t: Sequence[float], s: Sequence[float],
                       atol: float = SCORE_ATOL) -> bool:
    """Pareto dominance: weak dominance plus strictly better somewhere."""
    better_somewhere = False
    for a, b in zip(t, s):
        if a > b + atol:
            return False
        if a < b - atol:
            better_somewhere = True
    return better_somewhere


def f_dominates(t: Sequence[float], s: Sequence[float],
                constraints, atol: float = SCORE_ATOL) -> bool:
    """F-dominance test via the vertices of the preference region (Thm 2).

    ``constraints`` may be a :class:`LinearConstraints`,
    :class:`WeightRatioConstraints`, :class:`PreferenceRegion` or a raw
    vertex array.  For repeated tests precompute the region once and use
    :func:`f_dominates_region` or score-space dominance instead.
    """
    region = resolve_preference_region(constraints)
    return f_dominates_region(t, s, region, atol=atol)


def f_dominates_region(t: Sequence[float], s: Sequence[float],
                       region: PreferenceRegion,
                       atol: float = SCORE_ATOL) -> bool:
    """F-dominance given an already-resolved preference region."""
    score_t = region.score(t)
    score_s = region.score(s)
    return bool(np.all(score_t <= score_s + atol))


def f_dominates_scores(score_t: Sequence[float], score_s: Sequence[float],
                       atol: float = SCORE_ATOL) -> bool:
    """F-dominance expressed directly on precomputed score vectors.

    This is classical weak dominance in the mapped ``d'``-dimensional score
    space, which is the form every index-based algorithm uses internally.
    """
    return dominates(score_t, score_s, atol=atol)


def weight_ratio_f_dominates(t: Sequence[float], s: Sequence[float],
                             constraints: WeightRatioConstraints,
                             atol: float = SCORE_ATOL) -> bool:
    """The O(d) F-dominance test of Theorem 5.

    ``t ≺_F s`` iff

    ``t[d] - s[d] <= sum_i coeff_i * (s[i] - t[i])`` where ``coeff_i = l_i``
    when ``s[i] > t[i]`` and ``h_i`` otherwise.  Equivalently, the minimum of
    ``sum_i r[i] (s[i] - t[i]) + (s[d] - t[d])`` over the ratio
    hyper-rectangle is non-negative (Lemma 1).
    """
    d = constraints.dimension
    if len(t) != d or len(s) != d:
        raise ValueError("points must have dimension %d" % d)
    total = 0.0
    for i, (low, high) in enumerate(constraints.ranges):
        diff = s[i] - t[i]
        coeff = low if diff > 0.0 else high
        total += coeff * diff
    return t[d - 1] - s[d - 1] <= total + atol


def weight_ratio_min_margin(t: Sequence[float], s: Sequence[float],
                            constraints: WeightRatioConstraints) -> float:
    """Minimum of ``h'(r) = sum_i r[i](s[i]-t[i]) + (s[d]-t[d])`` over ``R``.

    ``t ≺_F s`` iff the returned value is ``>= 0``; exposing the margin makes
    the bound computations of the DUAL algorithms and the property tests
    straightforward.
    """
    d = constraints.dimension
    total = float(s[d - 1]) - float(t[d - 1])
    for i, (low, high) in enumerate(constraints.ranges):
        diff = float(s[i]) - float(t[i])
        total += (low if diff > 0.0 else high) * diff
    return total


def dominance_region_hyperplane(t: Sequence[float],
                                constraints: WeightRatioConstraints,
                                k: int) -> np.ndarray:
    """Coefficients of the hyperplane ``h_{t,k}`` of equation (6).

    Instances ``s`` lying in orthant ``k`` (relative to ``t``) that
    F-dominate ``t`` are exactly those lying below or on this hyperplane.
    The return value ``(a_1, ..., a_{d-1}, b)`` describes
    ``x[d] = sum_i a_i (t[i] - x[i]) + t[d]`` through its slope coefficients
    ``a_i`` (``l_i`` or ``h_i`` depending on bit ``i`` of ``k``) and the
    intercept evaluated at ``x[1..d-1] = 0``, i.e.
    ``b = sum_i a_i t[i] + t[d]``.
    """
    d = constraints.dimension
    d_minus_1 = d - 1
    coeffs = np.empty(d_minus_1)
    for i, (low, high) in enumerate(constraints.ranges):
        bit = (k >> (d_minus_1 - 1 - i)) & 1
        coeffs[i] = high if bit else low
    intercept = float(np.dot(coeffs, np.asarray(t[:d_minus_1], dtype=float))
                      + t[d - 1])
    return np.concatenate([coeffs, [intercept]])


def orthant_of(s: Sequence[float], t: Sequence[float], dimension: int) -> int:
    """Orthant index ``k`` of instance ``s`` relative to pivot ``t``.

    Bit ``i`` (most significant first) is 1 when ``s[i] > t[i]`` — the same
    encoding used by :meth:`WeightRatioConstraints.rectangle_vertex`, so the
    hyperplane ``h_{t,k}`` built from the ``k``-vertex applies to orthant
    ``k``'s instances.

    Note the paper assigns bit 0 to ``s[i] < t[i]``; instances exactly on the
    boundary may be assigned either orthant without affecting correctness
    because the two hyperplanes agree on the boundary.
    """
    d_minus_1 = dimension - 1
    k = 0
    for i in range(d_minus_1):
        k <<= 1
        if s[i] > t[i]:
            k |= 1
    return k


def lp_reference_f_dominates(t: Sequence[float], s: Sequence[float],
                             constraints) -> bool:
    """Reference F-dominance test used only for validation.

    Because ``h(ω) = sum_i ω[i](s[i] - t[i])`` is linear and the preference
    region is a bounded convex polytope, its minimum over the region is
    attained at a vertex.  The reference test therefore evaluates the margin
    at every vertex explicitly; it exists so tests can check the faster
    predicates against an independent formulation.
    """
    region = resolve_preference_region(constraints)
    diffs = np.asarray(s, dtype=float) - np.asarray(t, dtype=float)
    margins = region.vertices @ diffs
    return bool(np.min(margins) >= -SCORE_ATOL)
