"""Shared, size-bounded cross-query caches for the serving layer.

Until PR 7 the only result caching in the repository lived inside
:class:`repro.algorithms.dual.DualIndex` as two private dict caches with a
``_bounded_insert`` helper.  That helper had FIFO semantics — re-inserting
(or re-reading) an existing key did *not* refresh its eviction order, so a
hot constraint queried on every other request was still evicted once
``limit`` distinct keys had passed since its first insertion.  This module
promotes the helper to a shared, properly-LRU primitive and builds the
serving layer's cross-query :class:`QueryCache` on top of it:

``bounded_insert`` / ``bounded_lookup``
    Plain-dict LRU operations (Python dicts preserve insertion order, so
    "move to the end" is pop + re-insert).  Both refresh recency: an
    insert of an existing key re-ranks it newest, and a lookup hit does
    the same — the property that lets a hot key survive an arbitrarily
    long sweep of cold keys.  DUAL's per-constraint caches use these
    directly.

``QueryCache``
    The serving layer's shared cache: a size-bounded LRU mapping from a
    query identity (see :func:`constraint_key`) to a full ARSP result,
    with hit/miss/eviction counters that every ``repro serve`` response
    exposes (docs/ARCHITECTURE.md, "Serving layer").  Operations take an
    internal lock so the daemon's compute thread and in-process callers
    can share one instance.

The cache contract of the serving layer is *full-result granularity*: a
cached value is the complete ``{instance_id: probability}`` mapping for
one (algorithm, constraints) identity, in canonical instance order, and
target-set projections are sliced from it per request.  Cached answers are
therefore byte-identical to uncached ones by construction — the cache
stores exactly what the one-shot computation returned.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterator, Tuple

import numpy as np

#: Default entry bound of the serving layer's shared cache.  Full results
#: are O(num_instances) dicts, so the bound is per-entry, not per-byte;
#: ``repro serve --cache-limit`` overrides it.
DEFAULT_CACHE_LIMIT = 64

_MISSING = object()


def bounded_insert(cache: Dict, key, value, limit: int) -> None:
    """Insert into an LRU-bounded dict cache, evicting the stalest entry.

    Re-inserting an existing key refreshes its eviction order (it becomes
    the newest entry) — the LRU fix over the FIFO helper this replaces:
    dict order is insertion order, so eviction always removes
    ``next(iter(cache))``, and a key that is never re-ranked dies after
    ``limit`` distinct inserts no matter how hot it is.
    """
    if limit < 1:
        raise ValueError("cache limit must be positive, got %d" % limit)
    if key in cache:
        del cache[key]
    elif len(cache) >= limit:
        cache.pop(next(iter(cache)))
    cache[key] = value


def bounded_lookup(cache: Dict, key, default=None):
    """LRU lookup: a hit re-ranks the key newest and returns its value.

    The read-side half of the LRU contract — without it, a key that is
    only ever *read* after its first insert still ages out underneath a
    sweep of cold inserts.
    """
    value = cache.get(key, _MISSING)
    if value is _MISSING:
        return default
    # Pop + re-insert moves the key to the (newest) end of the dict.
    del cache[key]
    cache[key] = value
    return value


def constraint_key(constraints) -> Tuple:
    """Hashable identity of a constraint specification.

    Two constraint objects that describe the same preference region the
    same way map to the same key; the serving layer combines this with the
    resolved algorithm name to key its cross-query cache.  Supported are
    the types :func:`repro.core.arsp.compute_arsp` accepts.
    """
    # Imported here: preference pulls numpy-heavy modules this leaf module
    # should not force on import.
    from .preference import (LinearConstraints, PreferenceRegion,
                             WeightRatioConstraints)

    if isinstance(constraints, WeightRatioConstraints):
        return ("ratio", constraints.ranges)
    if isinstance(constraints, LinearConstraints):
        return ("linear", constraints.dimension,
                constraints.matrix.shape, constraints.matrix.tobytes(),
                constraints.rhs.tobytes())
    if isinstance(constraints, PreferenceRegion):
        return ("region", constraints.vertices.shape,
                constraints.vertices.tobytes())
    array = np.asarray(constraints, dtype=float)
    if array.ndim == 2:
        return ("vertices", array.shape, array.tobytes())
    raise TypeError("unsupported constraint specification: %r"
                    % (type(constraints),))


class QueryCache:
    """Size-bounded LRU cache with hit/miss/eviction accounting.

    The shared cross-query cache of the serving layer: one instance fronts
    every query a daemon answers, so a repeated constraint — no matter
    which client sends it — is served from memory.  ``get`` refreshes
    recency (read-side LRU), ``put`` evicts the stalest entry beyond
    ``limit`` and counts the eviction.  ``stats()`` is the JSON-ready
    counter snapshot attached to every serve response.
    """

    def __init__(self, limit: int = DEFAULT_CACHE_LIMIT):
        if limit < 1:
            raise ValueError("cache limit must be positive, got %d" % limit)
        self.limit = limit
        self._entries: Dict[Hashable, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Presence probe; deliberately counts nothing, refreshes nothing."""
        return key in self._entries

    def __iter__(self) -> Iterator:
        """Keys, stalest first (the next eviction victim leads)."""
        return iter(list(self._entries))

    def get(self, key, default=None):
        """Counted LRU lookup: a hit re-ranks the key newest."""
        with self._lock:
            value = bounded_lookup(self._entries, key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting beyond the bound."""
        with self._lock:
            evicting = key not in self._entries \
                and len(self._entries) >= self.limit
            bounded_insert(self._entries, key, value, self.limit)
            if evicting:
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry; the counters keep their lifetime totals."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """JSON-ready counter snapshot (the per-response ``cache`` field)."""
        return {
            "size": len(self._entries),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }
