"""Shared, size-bounded cross-query caches for the serving layer.

Until PR 7 the only result caching in the repository lived inside
:class:`repro.algorithms.dual.DualIndex` as two private dict caches with a
``_bounded_insert`` helper.  That helper had FIFO semantics — re-inserting
(or re-reading) an existing key did *not* refresh its eviction order, so a
hot constraint queried on every other request was still evicted once
``limit`` distinct keys had passed since its first insertion.  This module
promotes the helper to a shared, properly-LRU primitive and builds the
serving layer's cross-query :class:`QueryCache` on top of it:

``bounded_insert`` / ``bounded_lookup``
    Plain-dict LRU operations (Python dicts preserve insertion order, so
    "move to the end" is pop + re-insert).  Both refresh recency: an
    insert of an existing key re-ranks it newest, and a lookup hit does
    the same — the property that lets a hot key survive an arbitrarily
    long sweep of cold keys.  DUAL's per-constraint caches use these
    directly.

``QueryCache``
    The serving layer's shared cache: a size-bounded LRU mapping from a
    query identity (see :func:`constraint_key`) to a full ARSP result,
    with hit/miss/eviction counters that every ``repro serve`` response
    exposes (docs/ARCHITECTURE.md, "Serving layer").  Every operation —
    including ``in``, iteration and the ``stats()`` snapshot — takes an
    internal lock so the daemon's compute thread and in-process callers
    can share one instance without torn reads.

The cache contract of the serving layer is *full-result granularity*: a
cached value is the complete ``{instance_id: probability}`` mapping for
one (algorithm, constraints-at-epoch) identity, in canonical instance
order, and target-set projections are sliced from it per request.  Cached
answers are therefore byte-identical to uncached ones by construction —
the cache stores exactly what the one-shot computation returned.  When
the served dataset moves (a delta), the service either repairs surviving
entries onto the new epoch's keys (:meth:`QueryCache.retain_across_delta`)
or drops them; either way an old-epoch key can never hit again, because
no request ever asks for one.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

import numpy as np

#: Default entry bound of the serving layer's shared cache.  Full results
#: are O(num_instances) dicts, so the bound is per-entry, not per-byte;
#: ``repro serve --cache-limit`` overrides it.
DEFAULT_CACHE_LIMIT = 64

_MISSING = object()


def bounded_insert(cache: Dict, key, value, limit: int) -> None:
    """Insert into an LRU-bounded dict cache, evicting the stalest entry.

    Re-inserting an existing key refreshes its eviction order (it becomes
    the newest entry) — the LRU fix over the FIFO helper this replaces:
    dict order is insertion order, so eviction always removes
    ``next(iter(cache))``, and a key that is never re-ranked dies after
    ``limit`` distinct inserts no matter how hot it is.
    """
    if limit < 1:
        raise ValueError("cache limit must be positive, got %d" % limit)
    if key in cache:
        del cache[key]
    elif len(cache) >= limit:
        cache.pop(next(iter(cache)))
    cache[key] = value


def bounded_lookup(cache: Dict, key, default=None):
    """LRU lookup: a hit re-ranks the key newest and returns its value.

    The read-side half of the LRU contract — without it, a key that is
    only ever *read* after its first insert still ages out underneath a
    sweep of cold inserts.
    """
    value = cache.get(key, _MISSING)
    if value is _MISSING:
        return default
    # Pop + re-insert moves the key to the (newest) end of the dict.
    del cache[key]
    cache[key] = value
    return value


def _canonical_bytes(array) -> bytes:
    """Hash-stable bytes of a numeric array: C-contiguous native float64.

    ``ndarray.tobytes()`` is dtype- and byte-order-sensitive, so hashing
    raw buffers gave *equal* regions *different* keys whenever one side
    arrived as float32 or big-endian.  Canonicalizing before hashing makes
    the key a function of the values alone.
    """
    return np.ascontiguousarray(array, dtype=np.float64).tobytes()


def constraint_key(constraints, epoch: Optional[int] = None) -> Tuple:
    """Hashable identity of a constraint specification.

    Two constraint objects that describe the same preference region the
    same way map to the same key — regardless of array dtype or byte
    order (see :func:`_canonical_bytes`); the serving layer combines this
    with the resolved algorithm name to key its cross-query cache.
    Supported are the types :func:`repro.core.arsp.compute_arsp` accepts.

    When ``epoch`` is given (the serving layer passes
    :attr:`UncertainDataset.epoch <repro.core.dataset.UncertainDataset.epoch>`),
    it is folded in as a trailing ``("epoch", n)`` component, so the same
    constraints against different dataset generations are *different*
    keys — a stale cache hit after a delta is structurally impossible.
    """
    # Imported here: preference pulls numpy-heavy modules this leaf module
    # should not force on import.
    from .preference import (LinearConstraints, PreferenceRegion,
                             WeightRatioConstraints)

    if isinstance(constraints, WeightRatioConstraints):
        key: Tuple = ("ratio", constraints.ranges)
    elif isinstance(constraints, LinearConstraints):
        key = ("linear", constraints.dimension,
               constraints.matrix.shape,
               _canonical_bytes(constraints.matrix),
               _canonical_bytes(constraints.rhs))
    elif isinstance(constraints, PreferenceRegion):
        key = ("region", constraints.vertices.shape,
               _canonical_bytes(constraints.vertices))
    else:
        array = np.asarray(constraints, dtype=float)
        if array.ndim != 2:
            raise TypeError("unsupported constraint specification: %r"
                            % (type(constraints),))
        key = ("vertices", array.shape, _canonical_bytes(array))
    if epoch is None:
        return key
    return key + (("epoch", int(epoch)),)


class QueryCache:
    """Size-bounded LRU cache with hit/miss/eviction accounting.

    The shared cross-query cache of the serving layer: one instance fronts
    every query a daemon answers, so a repeated constraint — no matter
    which client sends it — is served from memory.  ``get`` refreshes
    recency (read-side LRU), ``put`` evicts the stalest entry beyond
    ``limit`` and counts the eviction.  ``stats()`` is the JSON-ready
    counter snapshot attached to every serve response.

    Delta retention (:meth:`retain_across_delta`) atomically replaces the
    contents with entries that survived a dataset delta under new-epoch
    keys.  Three lifetime counters account for it: ``retained`` (entries
    carried across a delta), ``repaired`` (the subset whose value needed
    σ-recompute work, not just row/column copies), and ``retained_hits``
    (hits served by an entry while it was in its carried-over state) —
    the numerator of the bench harness's post-delta warm hit rate.

    Every read — ``in``, ``len``, iteration, ``hit_rate``, ``stats()`` —
    takes the internal (non-reentrant) lock, so concurrent readers never
    observe a torn snapshot of the entries or the counters.
    """

    def __init__(self, limit: int = DEFAULT_CACHE_LIMIT):
        if limit < 1:
            raise ValueError("cache limit must be positive, got %d" % limit)
        self.limit = limit
        self._entries: Dict[Hashable, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.retained = 0
        self.repaired = 0
        self.retained_hits = 0
        #: Keys currently holding a value carried across a delta; a fresh
        #: ``put`` (a recompute) or an eviction takes a key back out.
        self._retained_keys: set = set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        """Presence probe; deliberately counts nothing, refreshes nothing."""
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator:
        """Keys, stalest first (the next eviction victim leads).

        The key list is snapshotted under the lock, so iterating while
        another thread mutates the cache walks a consistent moment in
        time rather than racing the underlying dict.
        """
        with self._lock:
            return iter(list(self._entries))

    def get(self, key, default=None):
        """Counted LRU lookup: a hit re-ranks the key newest."""
        with self._lock:
            value = bounded_lookup(self._entries, key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            if key in self._retained_keys:
                self.retained_hits += 1
            return value

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting beyond the bound."""
        with self._lock:
            evicting = key not in self._entries \
                and len(self._entries) >= self.limit
            if evicting:
                self._retained_keys.discard(next(iter(self._entries)))
            bounded_insert(self._entries, key, value, self.limit)
            # A put is a freshly computed value: the key no longer holds
            # a carried-over result even if it did before.
            self._retained_keys.discard(key)
            if evicting:
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry; the counters keep their lifetime totals."""
        with self._lock:
            self._entries.clear()
            self._retained_keys.clear()

    def retain_across_delta(
            self, entries: Iterable[Tuple[Hashable, object, bool]]) -> int:
        """Atomically replace the contents with a delta's survivors.

        ``entries`` yields ``(new_key, value, repaired)`` triples in
        stalest-first order (the order :meth:`__iter__` produces), so the
        survivors keep their relative LRU ranking under their new-epoch
        keys.  Everything not in ``entries`` is dropped — the non-retained
        analogue of :meth:`clear` — without counting evictions (nothing
        was displaced by an insert).  Returns the number of entries
        retained; counters: ``retained`` per entry, ``repaired`` for the
        triples flagged as having needed recompute work.
        """
        with self._lock:
            self._entries.clear()
            self._retained_keys.clear()
            count = 0
            for key, value, repaired in entries:
                self._entries[key] = value
                self._retained_keys.add(key)
                self.retained += 1
                if repaired:
                    self.repaired += 1
                count += 1
            return count

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """JSON-ready counter snapshot (the per-response ``cache`` field).

        Taken under one lock acquisition: ``size`` and every counter come
        from the same instant, so a response can never report, say, the
        size from after an eviction next to the eviction count from
        before it.
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "limit": self.limit,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "retained": self.retained,
                "repaired": self.repaired,
                "retained_hits": self.retained_hits,
                "hit_rate": round(self._hit_rate_locked(), 6),
            }
