"""Per-phase wall-clock attribution for the bench harness.

Index-based algorithms split into constraint-independent preprocessing and
constraint-dependent query work (docs/ARCHITECTURE.md, "Preprocessing /
query split").  The bench harness records that split per cell: algorithms
wrap their phases in :func:`phase` blocks, and the harness activates a
collector around every timed run with :func:`collect_phases`.

When no collector is active, :func:`phase` is a no-op beyond one global
check, so algorithms annotate their phases unconditionally without taxing
ordinary callers.  Phases are flat, top-level sections of one algorithm
run — nested ``phase`` blocks would be attributed to both names — and the
collector is process-global (the whole repository is single-threaded).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

_active: Optional[Dict[str, float]] = None


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the enclosed block's wall clock to ``name``.

    Durations accumulate: entering the same phase name repeatedly (e.g. a
    query phase resumed per batch) sums into one entry.
    """
    if _active is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _active[name] = (_active.get(name, 0.0)
                         + time.perf_counter() - start)


@contextmanager
def collect_phases(sink: Dict[str, float]) -> Iterator[Dict[str, float]]:
    """Collect :func:`phase` durations into ``sink`` while the block runs."""
    global _active
    previous = _active
    _active = sink
    try:
        yield sink
    finally:
        _active = previous
