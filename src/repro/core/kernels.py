"""Vectorized batch kernels for the ARSP hot paths.

Every per-instance predicate the algorithms evaluate in their inner loops —
weak/strict dominance, box-versus-point classification in score space, the
Theorem 5 weight-ratio margin — has a batched counterpart here that applies
the predicate to a whole block of points with one NumPy expression.  The
kernels are the single source of truth for the vectorized arithmetic: the
scalar predicates in :mod:`repro.core.dominance` remain the readable
reference implementations, and the property tests assert the two agree on
random inputs.

Every algorithm layer hot path runs through this module (see
docs/ARCHITECTURE.md for the layer contract): the kd-ASP*/DUAL family since
PR 1 and, since the vectorization sweep, LOOP (:func:`weak_dominance_matrix`
over sorted prefixes), B&B (:func:`dominates_corner` against the pruning
set and :func:`points_in_boxes` / :func:`points_in_boxes_rows` behind the
flat R-tree window aggregates), the eclipse algorithms
(:func:`weight_ratio_margins_matrix` / :func:`eclipse_dominance_matrix`)
and the continuous Monte Carlo sampler (:func:`weak_dominance_tensor` over
whole possible-world batches).

Design rules:

* Kernels are pure functions over ``ndarray`` inputs; no algorithm state.
* Each kernel performs exactly the comparisons of its scalar counterpart
  (same tolerance, same operand order) so results match to float precision.
  The one documented exception is :func:`weight_ratio_margins_matrix`, whose
  separable decomposition may differ from the scalar margin by a few ulp.
* Box classification verdicts reuse the integer convention of
  :mod:`repro.index.kdtree` (``INSIDE = 1``, ``PARTIAL = 0``,
  ``OUTSIDE = -1``) without importing it, keeping ``core`` free of index
  dependencies.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

import numpy as np

from .numeric import SCORE_ATOL

#: Box classification verdicts (numerically identical to the constants in
#: :mod:`repro.index.kdtree` so the two layers interoperate).
BOX_INSIDE = 1
BOX_PARTIAL = 0
BOX_OUTSIDE = -1


# ----------------------------------------------------------------------
# Dominance matrices
# ----------------------------------------------------------------------
def weak_dominance_matrix(a: np.ndarray, b: np.ndarray,
                          atol: float = SCORE_ATOL) -> np.ndarray:
    """Pairwise weak dominance: ``out[i, j]`` iff ``a[i]`` dominates ``b[j]``.

    Batched counterpart of :func:`repro.core.dominance.dominates` applied to
    every pair of rows of the ``(n, d)`` and ``(m, d)`` inputs.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.all(a[:, None, :] <= b[None, :, :] + atol, axis=2)


def strict_dominance_matrix(a: np.ndarray, b: np.ndarray,
                            atol: float = SCORE_ATOL) -> np.ndarray:
    """Pairwise Pareto dominance: weak dominance plus strictly better somewhere.

    Batched counterpart of :func:`repro.core.dominance.strictly_dominates`.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    weak = np.all(a[:, None, :] <= b[None, :, :] + atol, axis=2)
    better = np.any(a[:, None, :] < b[None, :, :] - atol, axis=2)
    return weak & better


def dominates_corner(points: np.ndarray, corner: np.ndarray,
                     atol: float = SCORE_ATOL) -> np.ndarray:
    """``out[k]`` iff ``points[k]`` weakly dominates the single ``corner``."""
    points = np.asarray(points, dtype=float)
    return np.all(points <= np.asarray(corner, dtype=float) + atol, axis=1)


def weak_dominance_tensor(points: np.ndarray,
                          atol: float = SCORE_ATOL) -> np.ndarray:
    """Per-batch pairwise weak dominance over a ``(b, n, d)`` stack.

    ``out[t, i, j]`` iff ``points[t, i]`` weakly dominates ``points[t, j]`` —
    one :func:`weak_dominance_matrix` evaluation per batch element ``t``, in
    a single broadcast.  Used by the continuous Monte Carlo sampler, where
    every batch element is one sampled possible world.  Memory is
    ``O(b * n^2 * d)``; callers chunk the batch axis.
    """
    points = np.asarray(points, dtype=float)
    return np.all(points[:, :, None, :] <= points[:, None, :, :] + atol,
                  axis=3)


def points_in_boxes(points: np.ndarray, los: np.ndarray, his: np.ndarray,
                    atol: float = 0.0) -> np.ndarray:
    """Pairwise closed-box containment: ``out[q, k]`` iff ``points[k]`` lies
    inside ``[los[q], his[q]]``.

    Batched counterpart of :func:`repro.core.dominance.in_box` over every
    (box, point) pair of the ``(Q, d)`` corner arrays and the ``(K, d)``
    point block.  Window aggregates are *exact* closed-box counts (the
    aggregated R-tree matches per-point equality of score vectors, not
    tolerant dominance), so the default tolerance is ``0.0`` — unlike the
    dominance kernels above.  Memory is ``O(Q * K * d)``; callers chunk one
    of the axes.
    """
    points = np.asarray(points, dtype=float)
    los = np.atleast_2d(np.asarray(los, dtype=float))
    his = np.atleast_2d(np.asarray(his, dtype=float))
    return np.all((los[:, None, :] <= points[None, :, :] + atol)
                  & (points[None, :, :] <= his[:, None, :] + atol), axis=2)


def points_in_boxes_rows(points: np.ndarray, los: np.ndarray,
                         his: np.ndarray, atol: float = 0.0) -> np.ndarray:
    """Row-aligned :func:`points_in_boxes`: ``out[k]`` iff ``points[k]`` lies
    inside ``[los[k], his[k]]``.

    This is the shape produced when many (box, point) pairs have already
    been expanded — the flat R-tree's frontier traversal resolves all its
    PARTIAL leaves with one call.
    """
    points = np.asarray(points, dtype=float)
    los = np.asarray(los, dtype=float)
    his = np.asarray(his, dtype=float)
    return np.all((los <= points + atol) & (points <= his + atol), axis=1)


def box_containment_counts(points: np.ndarray, weights: np.ndarray,
                           los: np.ndarray, his: np.ndarray,
                           atol: float = 0.0) -> np.ndarray:
    """Weighted containment counts: ``out[q] = sum of weights[k]`` over the
    points inside ``[los[q], his[q]]``.

    One :func:`points_in_boxes` mask folded against the weight vector —
    the brute-force window aggregate the R-tree property tests pin the
    tree traversals against, and the kernel the forest uses to resolve
    its pending (not yet merged) points.
    """
    mask = points_in_boxes(points, los, his, atol=atol)
    return mask @ np.asarray(weights, dtype=float)


def classify_against_box(points: np.ndarray, pmin: np.ndarray,
                         pmax: np.ndarray, atol: float = SCORE_ATOL
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Batched box-versus-point classification of the kd-ASP* traversal.

    Returns ``(dominates_min, dominates_max)`` boolean arrays over the
    ``(k, d)`` candidate block: candidates dominating the min corner move
    into the σ state, candidates dominating only the max corner stay
    candidates for the children, the rest are discarded.
    """
    points = np.asarray(points, dtype=float)
    dominates_min = np.all(points <= pmin + atol, axis=1)
    dominates_max = np.all(points <= pmax + atol, axis=1)
    return dominates_min, dominates_max


# ----------------------------------------------------------------------
# Weight-ratio (Theorem 5) margins
# ----------------------------------------------------------------------
def weight_ratio_margins(target: np.ndarray, points: np.ndarray,
                         lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Batched Theorem 5 margins of candidate dominators against ``target``.

    For every row ``s`` of ``points`` this computes

    ``g(s) = min_{r ∈ R} sum_i r[i] (t[i] - s[i]) + (t[d] - s[d])``

    where the minimum over the ratio hyper-rectangle is attained by picking
    ``lows[i]`` when ``t[i] > s[i]`` and ``highs[i]`` otherwise.  ``s``
    F-dominates ``target`` iff ``g(s) >= 0`` (up to tolerance), i.e. the
    kernel equals ``weight_ratio_min_margin(s, target, constraints)`` of
    :mod:`repro.core.dominance` for every row.
    """
    target = np.asarray(target, dtype=float)
    points = np.atleast_2d(np.asarray(points, dtype=float))
    d = target.shape[0]
    diffs = target[: d - 1] - points[:, : d - 1]
    coeffs = np.where(diffs > 0.0, lows, highs)
    return (coeffs * diffs).sum(axis=1) + (target[d - 1] - points[:, d - 1])


def weight_ratio_margins_rows(targets: np.ndarray, points: np.ndarray,
                              lows: np.ndarray, highs: np.ndarray
                              ) -> np.ndarray:
    """Row-aligned Theorem 5 margins: ``out[k] = g(points[k])`` vs ``targets[k]``.

    Like :func:`weight_ratio_margins` but with one target per row, which is
    the shape produced when many (target, candidate) pairs are resolved in a
    single batch.
    """
    targets = np.asarray(targets, dtype=float)
    points = np.asarray(points, dtype=float)
    d = targets.shape[1]
    diffs = targets[:, : d - 1] - points[:, : d - 1]
    coeffs = np.where(diffs > 0.0, lows, highs)
    return (coeffs * diffs).sum(axis=1) + (targets[:, d - 1]
                                           - points[:, d - 1])


class MarginTerms(NamedTuple):
    """Precomputed per-point state of :func:`weight_ratio_margins_matrix`.

    The separable decomposition of the margin matrix splits into a
    constraint-only part (``mid``, ``half``), a per-point linear score
    (``point_linear``, shape ``(K,)``) and the raw leading coordinates
    (``points_head``, shape ``(K, d-1)``).  All four depend only on the
    candidate points and the constraint box, not on the targets, so callers
    that classify the *same* point block against many target chunks — or
    against repeated queries with the same constraints — compute them once
    with :func:`margin_matrix_terms` and reuse them.
    """

    mid: np.ndarray
    half: np.ndarray
    point_linear: np.ndarray
    points_head: np.ndarray


def margin_matrix_terms(points: np.ndarray, lows: np.ndarray,
                        highs: np.ndarray) -> MarginTerms:
    """Precompute the target-independent terms of the margin matrix."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    d = points.shape[1]
    lows = np.asarray(lows, dtype=float)
    highs = np.asarray(highs, dtype=float)
    mid = (lows + highs) / 2.0
    half = (highs - lows) / 2.0
    point_linear = points[:, : d - 1] @ mid + points[:, d - 1]
    return MarginTerms(mid=mid, half=half, point_linear=point_linear,
                       points_head=points[:, : d - 1])


def weight_ratio_margins_matrix_from_terms(targets: np.ndarray,
                                           terms: MarginTerms) -> np.ndarray:
    """:func:`weight_ratio_margins_matrix` with precomputed point terms."""
    targets = np.asarray(targets, dtype=float)
    d = targets.shape[1]
    target_linear = targets[:, : d - 1] @ terms.mid + targets[:, d - 1]
    spread = np.abs(targets[:, None, : d - 1]
                    - terms.points_head[None, :, :]) @ terms.half
    return target_linear[:, None] - terms.point_linear[None, :] - spread


def weight_ratio_margins_matrix(targets: np.ndarray, points: np.ndarray,
                                lows: np.ndarray, highs: np.ndarray
                                ) -> np.ndarray:
    """All-pairs Theorem 5 margins: ``out[t, k] = g(points[k])`` vs ``targets[t]``.

    One broadcast evaluation over the full ``(T, K)`` cross product; memory
    is ``O(T * K * d)``, so callers chunk the target axis when ``K`` is
    large.

    Uses the algebraically identical decomposition
    ``coeff_i * diff_i = mid_i * diff_i - half_i * |diff_i|`` with
    ``mid = (lows + highs) / 2`` and ``half = (highs - lows) / 2``: the
    ``mid`` part is separable into per-target and per-point linear scores,
    leaving only the absolute-difference term as genuine ``(T, K, d)`` work.
    Rounding can differ from :func:`weight_ratio_margins` by a few ulp.
    The per-point terms are target-independent; callers reusing the same
    point block across chunks precompute them with
    :func:`margin_matrix_terms` and call
    :func:`weight_ratio_margins_matrix_from_terms` instead.
    """
    return weight_ratio_margins_matrix_from_terms(
        targets, margin_matrix_terms(points, lows, highs))


def eclipse_dominance_matrix(points: np.ndarray, lows: np.ndarray,
                             highs: np.ndarray,
                             atol: float = SCORE_ATOL) -> np.ndarray:
    """Pairwise strict eclipse dominance over one ``(n, d)`` point block.

    ``out[i, j]`` iff ``points[i]`` eclipse-dominates ``points[j]`` in the
    strict (non-mutual) sense of :func:`repro.eclipse.naive.eclipse_dominates`:
    ``i`` F-dominates ``j`` under the weight ratio box but ``j`` does not
    F-dominate ``i``.  The diagonal is always ``False``.  One margin-matrix
    evaluation replaces the ``O(n^2)`` scalar verification loop of the
    eclipse algorithms; memory is ``O(n^2 * d)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    margins = weight_ratio_margins_matrix(points, points, lows, highs)
    # margins[t, k] is the margin of k dominating t, so the forward test for
    # the (i, j) pair reads the transposed entry.
    dominates = (margins.T >= -atol) & (margins < -atol)
    np.fill_diagonal(dominates, False)
    return dominates


def classify_boxes_by_margin(hi_margins: np.ndarray, lo_margins: np.ndarray,
                             atol: float = SCORE_ATOL) -> np.ndarray:
    """Verdicts for boxes whose margin extremes sit at the two corners.

    The Theorem 5 margin is monotonically decreasing in every coordinate of
    the candidate dominator, so over an axis-aligned box ``[lo, hi]`` the
    minimum margin is attained at ``hi`` and the maximum at ``lo``:

    * ``margin(hi) >= -atol`` — every point dominates (:data:`BOX_INSIDE`),
    * ``margin(lo) < -atol`` — no point dominates (:data:`BOX_OUTSIDE`),
    * otherwise the box straddles the boundary (:data:`BOX_PARTIAL`).
    """
    return np.where(hi_margins >= -atol, BOX_INSIDE,
                    np.where(lo_margins < -atol, BOX_OUTSIDE, BOX_PARTIAL))


# ----------------------------------------------------------------------
# Partitioning helpers
# ----------------------------------------------------------------------
def orthant_codes(points: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Orthant code of every point relative to ``center`` in one broadcast.

    Bit ``i`` of the code (most significant bit = dimension 0) is set when
    ``points[k, i] >= center[i]`` — the same encoding the quadtree partition
    previously built with a per-dimension Python loop.
    """
    bits = np.asarray(points, dtype=float) >= np.asarray(center, dtype=float)
    dimension = bits.shape[1]
    weights = np.left_shift(np.int64(1),
                            np.arange(dimension - 1, -1, -1, dtype=np.int64))
    return bits.astype(np.int64) @ weights
