"""Shared numeric tolerances and small helpers.

Every algorithm in the package compares floating point probabilities and
scores.  Centralising the tolerances here keeps the algorithms consistent
with each other: an instance whose accumulated dominating probability is
``1 - 1e-15`` must be treated as saturated by *all* algorithms, otherwise
they would disagree on which rskyline probabilities are exactly zero.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

#: Absolute tolerance used when deciding whether an accumulated probability
#: mass has reached 1 (object "saturation") or 0.
PROB_ATOL = 1e-12

#: Absolute tolerance used when comparing scores / coordinates for weak
#: dominance.  Scores are exact sums of products of inputs, so only genuine
#: representation noise needs to be absorbed.
SCORE_ATOL = 1e-12


def is_one(value: float, atol: float = PROB_ATOL) -> bool:
    """Return True if ``value`` should be treated as probability 1."""
    return value >= 1.0 - atol


def is_zero(value: float, atol: float = PROB_ATOL) -> bool:
    """Return True if ``value`` should be treated as probability 0."""
    return abs(value) <= atol


def clamp_probability(value: float) -> float:
    """Clamp a computed probability into [0, 1], absorbing float noise."""
    if value < 0.0:
        return 0.0 if value > -PROB_ATOL else value
    if value > 1.0:
        return 1.0 if value < 1.0 + PROB_ATOL else value
    return value


def leq(a: float, b: float, atol: float = SCORE_ATOL) -> bool:
    """Weak less-than-or-equal with absolute tolerance."""
    return a <= b + atol


def lt(a: float, b: float, atol: float = SCORE_ATOL) -> bool:
    """Strict less-than with absolute tolerance."""
    return a < b - atol


def close(a: float, b: float, atol: float = SCORE_ATOL) -> bool:
    """Approximate equality with absolute tolerance."""
    return abs(a - b) <= atol


def vector_leq(a: Sequence[float], b: Sequence[float],
               atol: float = SCORE_ATOL) -> bool:
    """Component-wise weak dominance: ``a[i] <= b[i]`` for every i."""
    return all(x <= y + atol for x, y in zip(a, b))


def vector_close(a: Sequence[float], b: Sequence[float],
                 atol: float = SCORE_ATOL) -> bool:
    """Component-wise approximate equality."""
    return all(abs(x - y) <= atol for x, y in zip(a, b))


def probabilities_close(a: float, b: float, atol: float = 1e-9) -> bool:
    """Comparison used by tests when checking two algorithms agree."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=atol)


def product(values: Iterable[float]) -> float:
    """Product of an iterable of floats (math.prod with an empty default)."""
    result = 1.0
    for value in values:
        result *= value
    return result
