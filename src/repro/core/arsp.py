"""High level ARSP API.

``compute_arsp`` is the main entry point of the package: it dispatches to any
of the registered algorithms and returns the rskyline probability of every
instance.  Convenience helpers aggregate the result per object, rank objects
and report the ARSP size statistic used throughout the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .dataset import UncertainDataset
from .numeric import PROB_ATOL, clamp_probability
from .preference import WeightRatioConstraints


def compute_arsp(dataset: UncertainDataset, constraints,
                 algorithm: str = "auto", workers: Optional[int] = None,
                 backend: Optional[str] = None, policy=None,
                 **options) -> Dict[int, float]:
    """Compute the rskyline probability of every instance.

    Parameters
    ----------
    dataset:
        The uncertain dataset.
    constraints:
        A :class:`~repro.core.preference.LinearConstraints`,
        :class:`~repro.core.preference.WeightRatioConstraints`,
        :class:`~repro.core.preference.PreferenceRegion` or raw vertex array.
    algorithm:
        One of the names in :func:`repro.algorithms.list_algorithms`, or
        ``"auto"`` to pick a sensible default (B&B for general constraints,
        DUAL for weight ratio constraints).
    workers:
        Shard the target axis across this many workers (see
        :mod:`repro.core.backend`).  Only the ported algorithms accept it;
        requesting workers for a serial-only algorithm raises
        ``ValueError`` rather than silently running serial.
    backend:
        Execution backend name (``auto``/``serial``/``process``); like
        ``workers``, only meaningful for the ported algorithms.
    policy:
        An :class:`~repro.core.backend.ExecutionPolicy` with the
        supervision knobs (shard timeout, retry budget, ``on_failure``);
        only meaningful for the ported algorithms.
    options:
        Extra keyword arguments passed to the selected algorithm.

    Returns
    -------
    dict
        Mapping ``instance_id -> rskyline probability`` covering every
        instance of the dataset (zero-probability instances included).
        The ported algorithms return an
        :class:`~repro.core.backend.AlgorithmResult` whose ``execution``
        attribute records what the execution layer did.
    """
    from ..algorithms.registry import (canonical_name, get_algorithm,
                                       supports_workers)

    if algorithm == "auto":
        if isinstance(constraints, WeightRatioConstraints):
            algorithm = "dual"
        else:
            algorithm = "bnb"
    name = canonical_name(algorithm)
    implementation = get_algorithm(name)
    sharded_options = {"workers": workers, "backend": backend,
                       "policy": policy}
    requested = {key: value for key, value in sharded_options.items()
                 if value is not None}
    if requested:
        if not supports_workers(name):
            from ..algorithms.registry import PARALLEL_ALGORITHMS

            raise ValueError(
                "algorithm %r does not support sharded execution (%s); "
                "parallel algorithms: %s"
                % (name,
                   ", ".join("%s=%r" % item for item in requested.items()),
                   ", ".join(sorted(PARALLEL_ALGORITHMS))))
        options = dict(options, **requested)
    return implementation(dataset, constraints, **options)


def object_rskyline_probabilities(dataset: UncertainDataset,
                                  instance_probabilities: Dict[int, float]
                                  ) -> Dict[int, float]:
    """Aggregate instance-level ARSP into per-object probabilities.

    This is the canonical implementation shared with
    ``repro.algorithms.base.object_probabilities``; sums are clamped into
    ``[0, 1]`` to absorb accumulated float noise.
    """
    totals: Dict[int, float] = {obj.object_id: 0.0 for obj in dataset.objects}
    for instance in dataset.instances:
        totals[instance.object_id] += instance_probabilities[
            instance.instance_id]
    return {key: clamp_probability(value) for key, value in totals.items()}


def top_k_objects(dataset: UncertainDataset,
                  instance_probabilities: Dict[int, float],
                  k: int) -> List[Tuple[int, float]]:
    """Top-``k`` objects ranked by rskyline probability.

    Returns ``(object_id, probability)`` pairs sorted by decreasing
    probability (ties broken by object id for determinism).  This is the
    query behind Table I of the paper.
    """
    totals = object_rskyline_probabilities(dataset, instance_probabilities)
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]


def arsp_size(instance_probabilities: Dict[int, float],
              atol: float = PROB_ATOL) -> int:
    """Number of instances with non-zero rskyline probability."""
    return sum(1 for value in instance_probabilities.values() if value > atol)


def threshold_query(instance_probabilities: Dict[int, float],
                    threshold: float) -> List[int]:
    """Instance ids whose rskyline probability is at least ``threshold``.

    The paper motivates computing *all* probabilities partly because it
    subsumes threshold queries; this helper provides that derived query.
    """
    return [instance_id
            for instance_id, value in instance_probabilities.items()
            if value >= threshold]
