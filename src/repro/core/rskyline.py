"""Certain-data operators: skyline, restricted skyline and eclipse membership.

These operators are needed in three places:

* the effectiveness study compares ARSP against the *aggregated rskyline*
  (the rskyline of the dataset of per-object averages);
* the eclipse query of Section IV operates on certain datasets;
* tests use the certain-data operators as a semantic cross-check of the
  probabilistic algorithms (an instance with rskyline probability zero in a
  deterministic dataset is exactly a non-rskyline point).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .dominance import dominates, f_dominates_scores, strictly_dominates
from .preference import resolve_preference_region


def skyline(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the Pareto-skyline points of a certain dataset.

    A point is in the skyline iff no *other* point Pareto-dominates it, where
    dominance is weak dominance plus being strictly better in at least one
    attribute (duplicated points therefore stay in the skyline together).
    """
    array = np.asarray(points, dtype=float)
    result = []
    for i, candidate in enumerate(array):
        dominated = False
        for j, other in enumerate(array):
            if i == j:
                continue
            if strictly_dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


def rskyline(points: Sequence[Sequence[float]], constraints) -> List[int]:
    """Indices of the restricted-skyline points ``RSKY(D, F)``.

    F-dominance follows the paper's definition: point ``t`` F-dominates
    ``s != t`` iff every vertex score of ``t`` is at most that of ``s`` *and*
    the two score vectors are not identical (so exact duplicates do not
    eliminate each other, mirroring the behaviour of :func:`skyline`).
    """
    region = resolve_preference_region(constraints)
    array = np.asarray(points, dtype=float)
    scores = region.score_matrix(array)
    result = []
    for i in range(len(array)):
        dominated = False
        for j in range(len(array)):
            if i == j:
                continue
            if (f_dominates_scores(scores[j], scores[i])
                    and not f_dominates_scores(scores[i], scores[j])):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result


def eclipse(points: Sequence[Sequence[float]], ratio_constraints) -> List[int]:
    """Indices of the eclipse (non-eclipse-dominated) points.

    The eclipse query of Liu et al. is the restricted skyline under weight
    ratio constraints; this reference implementation simply delegates to
    :func:`rskyline` using the induced preference region and is used to
    validate the optimised algorithms in :mod:`repro.eclipse`.
    """
    return rskyline(points, ratio_constraints)


def is_f_dominated_by_any(point: Sequence[float],
                          others: Sequence[Sequence[float]],
                          constraints) -> bool:
    """True iff some point in ``others`` weakly F-dominates ``point``."""
    region = resolve_preference_region(constraints)
    target = region.score(point)
    for other in others:
        if f_dominates_scores(region.score(other), target):
            return True
    return False


def dominance_counts(points: Sequence[Sequence[float]], constraints
                     ) -> List[int]:
    """For each point, the number of other points that F-dominate it.

    Used by examples and by the effectiveness analysis to illustrate why
    objects with low rskyline probability have many dominated instances.
    """
    region = resolve_preference_region(constraints)
    array = np.asarray(points, dtype=float)
    scores = region.score_matrix(array)
    counts = []
    for i in range(len(array)):
        count = 0
        for j in range(len(array)):
            if i != j and f_dominates_scores(scores[j], scores[i]):
                count += 1
        counts.append(count)
    return counts
