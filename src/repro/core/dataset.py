"""Uncertain data model.

The paper models an uncertain dataset ``D = {T_1, ..., T_m}`` where every
uncertain object ``T_i`` is a discrete probability distribution over a set of
instances in ``R^d``.  This module provides the three value classes used by
every algorithm in the package:

* :class:`Instance` — a single point together with its existence probability
  and the identity of the object it belongs to.
* :class:`UncertainObject` — a named collection of instances whose
  probabilities sum to at most one.
* :class:`UncertainDataset` — the full dataset, with validation, convenient
  accessors and the aggregation used by the paper's effectiveness study.
* :class:`ObjectSpec` / :class:`DatasetDelta` — a declarative batch of
  object-level edits (insert / delete / update), applied with
  :meth:`UncertainDataset.apply_delta`.  Deltas are the unit of change of
  the scenario engine (:mod:`repro.experiments.scenarios`): a time step
  applies one delta and then answers its query stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .numeric import PROB_ATOL


@dataclass(frozen=True)
class Instance:
    """A single instance of an uncertain object.

    Attributes
    ----------
    object_id:
        Index of the owning uncertain object within the dataset.
    instance_id:
        Global index of the instance within the dataset (unique across all
        objects); used as the key of ARSP result dictionaries.
    values:
        Attribute vector as a tuple of floats.  Lower values are preferred.
    probability:
        Existence probability ``p(t)`` of this instance.
    """

    object_id: int
    instance_id: int
    values: Tuple[float, ...]
    probability: float

    @property
    def dimension(self) -> int:
        """Number of attributes of the instance."""
        return len(self.values)

    def as_array(self) -> np.ndarray:
        """Return the attribute vector as a 1-D numpy array."""
        return np.asarray(self.values, dtype=float)

    def __getitem__(self, index: int) -> float:
        return self.values[index]


@dataclass
class UncertainObject:
    """A discrete probability distribution over a set of instances."""

    object_id: int
    instances: List[Instance] = field(default_factory=list)
    label: Optional[str] = None

    @property
    def total_probability(self) -> float:
        """Sum of existence probabilities of all instances (``<= 1``)."""
        return sum(instance.probability for instance in self.instances)

    @property
    def dimension(self) -> int:
        if not self.instances:
            raise ValueError("object %d has no instances" % self.object_id)
        return self.instances[0].dimension

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances)

    def mean_vector(self) -> np.ndarray:
        """Plain (unweighted) average of the instance attribute vectors.

        This matches the paper's effectiveness study, which aggregates each
        player by "computing the average statistics for each player".
        """
        if not self.instances:
            raise ValueError("object %d has no instances" % self.object_id)
        return np.mean([instance.as_array() for instance in self.instances],
                       axis=0)

    def expected_vector(self) -> np.ndarray:
        """Probability-weighted average of the instance attribute vectors.

        The weights are renormalised so that they sum to one, which makes the
        value well defined also for objects with total probability below one.
        """
        total = self.total_probability
        if total <= 0.0:
            raise ValueError("object %d has zero probability mass"
                             % self.object_id)
        acc = np.zeros(self.dimension)
        for instance in self.instances:
            acc += instance.as_array() * (instance.probability / total)
        return acc

    def validate(self) -> None:
        """Raise ``ValueError`` if the object violates the data model."""
        if not self.instances:
            raise ValueError("object %d has no instances" % self.object_id)
        dim = self.instances[0].dimension
        for instance in self.instances:
            if instance.object_id != self.object_id:
                raise ValueError(
                    "instance %d claims object %d but is stored in object %d"
                    % (instance.instance_id, instance.object_id,
                       self.object_id))
            if instance.dimension != dim:
                raise ValueError(
                    "instance %d has dimension %d, expected %d"
                    % (instance.instance_id, instance.dimension, dim))
            if instance.probability <= 0.0:
                raise ValueError(
                    "instance %d has non-positive probability %g"
                    % (instance.instance_id, instance.probability))
        if self.total_probability > 1.0 + PROB_ATOL:
            raise ValueError(
                "object %d has total probability %g > 1"
                % (self.object_id, self.total_probability))


@dataclass(frozen=True)
class ObjectSpec:
    """Instance list of one inserted or replacement uncertain object.

    A value object: coordinates and probabilities are stored as nested
    tuples so specs are hashable and safely shareable between the scenario
    script that declares them and every replay mode that applies them.
    """

    instances: Tuple[Tuple[float, ...], ...]
    probabilities: Tuple[float, ...]
    label: Optional[str] = None

    @classmethod
    def make(cls, rows: Sequence[Sequence[float]],
             probabilities: Optional[Sequence[float]] = None,
             label: Optional[str] = None) -> "ObjectSpec":
        """Normalise nested sequences (e.g. numpy rows) into a spec."""
        instances = tuple(tuple(float(v) for v in row) for row in rows)
        if probabilities is None:
            if not instances:
                raise ValueError("an object spec needs at least one instance")
            probs = (1.0 / len(instances),) * len(instances)
        else:
            probs = tuple(float(p) for p in probabilities)
        return cls(instances=instances, probabilities=probs, label=label)

    def validate(self) -> None:
        if not self.instances:
            raise ValueError("an object spec needs at least one instance")
        if len(self.probabilities) != len(self.instances):
            raise ValueError(
                "object spec has %d probabilities for %d instances"
                % (len(self.probabilities), len(self.instances)))
        dim = len(self.instances[0])
        for row in self.instances:
            if len(row) != dim:
                raise ValueError("object spec mixes dimensions %d and %d"
                                 % (dim, len(row)))


@dataclass(frozen=True)
class DatasetDelta:
    """One declarative batch of object-level edits.

    ``deletes`` and the first element of every ``updates`` pair name object
    ids *of the dataset the delta is applied to*; ``inserts`` are appended
    after the survivors.  :meth:`UncertainDataset.apply_delta` renumbers the
    result canonically (dense object and instance ids, survivors keeping
    their relative order), so applying a delta is equivalent to rebuilding
    the edited object list through ``from_instance_lists`` — the recompute
    specification every incremental index update is pinned against.
    """

    inserts: Tuple[ObjectSpec, ...] = ()
    deletes: Tuple[int, ...] = ()
    updates: Tuple[Tuple[int, ObjectSpec], ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.inserts or self.deletes or self.updates)

    def validate(self, num_objects: int) -> None:
        """Raise ``ValueError`` unless the delta fits a ``num_objects``
        dataset: ids in range, no duplicate edits, no update of a deleted
        object, and at least one object surviving."""
        deleted = set()
        for object_id in self.deletes:
            if not 0 <= object_id < num_objects:
                raise ValueError("delete of object %d out of range [0, %d)"
                                 % (object_id, num_objects))
            if object_id in deleted:
                raise ValueError("object %d deleted twice" % object_id)
            deleted.add(object_id)
        updated = set()
        for object_id, spec in self.updates:
            if not 0 <= object_id < num_objects:
                raise ValueError("update of object %d out of range [0, %d)"
                                 % (object_id, num_objects))
            if object_id in deleted:
                raise ValueError("object %d is both updated and deleted"
                                 % object_id)
            if object_id in updated:
                raise ValueError("object %d updated twice" % object_id)
            updated.add(object_id)
            spec.validate()
        for spec in self.inserts:
            spec.validate()
        if num_objects - len(deleted) + len(self.inserts) < 1:
            raise ValueError("delta leaves the dataset empty")

    def mappings(self, num_objects: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Object-id translation tables for a ``num_objects`` dataset.

        Returns ``(old_to_new, unchanged)``:

        * ``old_to_new`` has one entry per old object: its dense id in the
          result, or ``-1`` when deleted.
        * ``unchanged`` has one entry per *new* object: the old id whose
          instance list it carries **unmodified** (neither updated nor
          inserted), or ``-1``.  This is the contract delta-aware index
          updates consume — an ``unchanged[j] >= 0`` object's per-object
          state (kd-tree, σ column, σ rows) may be reused verbatim;
          everything else must be recomputed.
        """
        self.validate(num_objects)
        deleted = set(self.deletes)
        updated = {object_id for object_id, _ in self.updates}
        old_to_new = np.full(num_objects, -1, dtype=int)
        survivors = [i for i in range(num_objects) if i not in deleted]
        old_to_new[survivors] = np.arange(len(survivors))
        unchanged = np.full(len(survivors) + len(self.inserts), -1,
                            dtype=int)
        for new_id, old_id in enumerate(survivors):
            if old_id not in updated:
                unchanged[new_id] = old_id
        return old_to_new, unchanged


class UncertainDataset:
    """A collection of uncertain objects over a common attribute space."""

    def __init__(self, objects: Sequence[UncertainObject], epoch: int = 0):
        self._objects: List[UncertainObject] = list(objects)
        self._instances: List[Instance] = [
            instance for obj in self._objects for instance in obj.instances
        ]
        #: Delta generation of this dataset: 0 for a freshly built dataset,
        #: advanced by one on every :meth:`apply_delta`.  The serving layer
        #: folds it into its cache keys so a result computed against an
        #: older generation can never be served after the dataset moves.
        self._epoch = int(epoch)
        #: Opt-in cache of the flat array views (see :meth:`_attach_flat_cache`).
        self._flat_cache: Optional[Tuple[np.ndarray, np.ndarray,
                                         np.ndarray]] = None

    @property
    def epoch(self) -> int:
        """Monotone delta counter: how many deltas produced this dataset.

        Derived datasets (:meth:`subset`, :meth:`project`,
        :meth:`aggregate`, ...) are new logical datasets and restart at 0;
        only :meth:`apply_delta` advances the epoch, by exactly one.
        """
        return self._epoch

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_instance_lists(
        cls,
        instance_lists: Sequence[Sequence[Sequence[float]]],
        probability_lists: Optional[Sequence[Sequence[float]]] = None,
        labels: Optional[Sequence[str]] = None,
        epoch: int = 0,
    ) -> "UncertainDataset":
        """Build a dataset from nested lists of coordinates.

        Parameters
        ----------
        instance_lists:
            ``instance_lists[i][j]`` is the coordinate vector of the ``j``-th
            instance of object ``i``.
        probability_lists:
            Optional matching nested list of probabilities.  When omitted,
            every instance of object ``i`` gets probability
            ``1 / len(instance_lists[i])``.
        labels:
            Optional human readable labels for the objects.
        epoch:
            Delta generation to stamp on the dataset (see :attr:`epoch`);
            only :meth:`apply_delta` should pass a nonzero value.
        """
        objects: List[UncertainObject] = []
        next_instance_id = 0
        for object_id, rows in enumerate(instance_lists):
            rows = list(rows)
            if probability_lists is None:
                probs = [1.0 / len(rows)] * len(rows)
            else:
                probs = list(probability_lists[object_id])
                if len(probs) != len(rows):
                    raise ValueError(
                        "object %d: %d probabilities for %d instances"
                        % (object_id, len(probs), len(rows)))
            instances = []
            for values, prob in zip(rows, probs):
                instances.append(Instance(
                    object_id=object_id,
                    instance_id=next_instance_id,
                    values=tuple(float(v) for v in values),
                    probability=float(prob),
                ))
                next_instance_id += 1
            label = labels[object_id] if labels is not None else None
            objects.append(UncertainObject(object_id=object_id,
                                           instances=instances,
                                           label=label))
        return cls(objects, epoch=epoch)

    @classmethod
    def from_certain_points(
        cls,
        points: Sequence[Sequence[float]],
        probabilities: Optional[Sequence[float]] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> "UncertainDataset":
        """Build a dataset where every object has exactly one instance.

        This is the structure of the IIP dataset in the paper and is also how
        certain datasets are represented when running the eclipse query code
        paths through the uncertain machinery.
        """
        if probabilities is None:
            probabilities = [1.0] * len(points)
        return cls.from_instance_lists(
            [[point] for point in points],
            [[prob] for prob in probabilities],
            labels=labels,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def objects(self) -> List[UncertainObject]:
        return self._objects

    @property
    def instances(self) -> List[Instance]:
        return self._instances

    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    @property
    def dimension(self) -> int:
        if not self._objects:
            raise ValueError("dataset has no objects")
        return self._objects[0].dimension

    def object(self, object_id: int) -> UncertainObject:
        return self._objects[object_id]

    def instance(self, instance_id: int) -> Instance:
        return self._instances[instance_id]

    def __len__(self) -> int:
        return self.num_objects

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects)

    def instance_matrix(self) -> np.ndarray:
        """All instance coordinate vectors stacked into an ``(n, d)`` array."""
        if self._flat_cache is not None:
            return self._flat_cache[0]
        return np.asarray([inst.values for inst in self._instances],
                          dtype=float)

    def probability_vector(self) -> np.ndarray:
        """Existence probabilities of all instances as an ``(n,)`` array."""
        if self._flat_cache is not None:
            return self._flat_cache[1]
        return np.asarray([inst.probability for inst in self._instances],
                          dtype=float)

    def object_ids(self) -> np.ndarray:
        """Owning object index of every instance as an ``(n,)`` int array."""
        if self._flat_cache is not None:
            return self._flat_cache[2]
        return np.asarray([inst.object_id for inst in self._instances],
                          dtype=int)

    def _attach_flat_cache(self, points: np.ndarray,
                           probabilities: np.ndarray,
                           object_ids: np.ndarray) -> None:
        """Serve the flat accessors from pre-built arrays.

        Used by the execution backend when a worker rebuilds a shipped
        dataset: the flat arrays already exist (they *are* the shipped
        payload), so the accessors above return them directly instead of
        re-walking the Python instance objects per query.  The arrays
        must match the instance list exactly and are returned without
        copying — callers of the accessors must treat them as read-only
        (every algorithm does; derived-dataset builders construct new
        datasets rather than mutating this one).
        """
        points = np.asarray(points, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        object_ids = np.asarray(object_ids, dtype=int)
        if (points.shape != (self.num_instances, self.dimension)
                or probabilities.shape != (self.num_instances,)
                or object_ids.shape != (self.num_instances,)):
            raise ValueError("flat cache arrays do not match the dataset")
        self._flat_cache = (points, probabilities, object_ids)

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def aggregate(self, weighted: bool = False) -> "UncertainDataset":
        """Aggregate every object into a single certain point.

        The paper's effectiveness study compares ARSP against the "aggregated
        rskyline", the rskyline of the dataset obtained by replacing every
        uncertain object with its average instance.
        """
        points = []
        labels = []
        for obj in self._objects:
            vector = obj.expected_vector() if weighted else obj.mean_vector()
            points.append(tuple(float(v) for v in vector))
            labels.append(obj.label if obj.label is not None
                          else "object-%d" % obj.object_id)
        return UncertainDataset.from_certain_points(points, labels=labels)

    @staticmethod
    def _rebuild(objects: Sequence[UncertainObject],
                 max_instances: Optional[int] = None,
                 dimensions: Optional[Sequence[int]] = None
                 ) -> "UncertainDataset":
        """Re-number the given objects through ``from_instance_lists``,
        optionally truncating every instance list and/or restricting the
        attributes — the shared tail of all derived-dataset builders."""
        limit = slice(max_instances)

        def values(inst: Instance) -> Tuple[float, ...]:
            if dimensions is None:
                return inst.values
            return tuple(inst.values[k] for k in dimensions)

        instance_lists = [[values(inst) for inst in obj.instances[limit]]
                          for obj in objects]
        probability_lists = [[inst.probability
                              for inst in obj.instances[limit]]
                             for obj in objects]
        labels = [obj.label if obj.label is not None
                  else "object-%d" % obj.object_id for obj in objects]
        return UncertainDataset.from_instance_lists(
            instance_lists, probability_lists, labels=labels)

    def project(self, dimensions: Sequence[int]) -> "UncertainDataset":
        """Return a new dataset restricted to a subset of the attributes.

        Used by the experiments that vary the dimensionality of the real
        datasets (Fig. 6(d)) and by the workload matrix's 2-d DUAL-MS
        variants.
        """
        return self._rebuild(self._objects, dimensions=list(dimensions))

    def truncate_instances(self, max_instances: int) -> "UncertainDataset":
        """Return a dataset where every object keeps at most ``max_instances``
        of its instances (in storage order).

        The surviving instances keep their original existence probabilities,
        so truncated objects simply become incomplete (total probability
        below one) — still a valid dataset.  The bench harness uses this to
        derive an enumerable ENUM variant from any workload.
        """
        if max_instances < 1:
            raise ValueError("max_instances must be positive")
        return self._rebuild(self._objects, max_instances=max_instances)

    def subset(self, object_ids: Iterable[int]) -> "UncertainDataset":
        """Return a dataset containing only the selected objects.

        Object and instance ids are re-assigned to keep them dense, which is
        what the per-figure experiments that sample ``m%`` of a real dataset
        expect.
        """
        return self._rebuild([self._objects[i] for i in object_ids])

    def apply_delta(self, delta: DatasetDelta) -> "UncertainDataset":
        """Return the dataset with one :class:`DatasetDelta` applied.

        Survivors keep their relative order, updated objects are replaced
        in place, inserts are appended, and the result is renumbered
        densely through ``from_instance_lists`` — so an object whose
        instance list the delta did not touch is *identical* (coordinates,
        probabilities, within-object instance order) to its old self, only
        under possibly different dense ids.  That invariant is what lets
        delta-aware indexes reuse per-object state
        (see :meth:`DatasetDelta.mappings`).  The result's :attr:`epoch`
        is this dataset's epoch plus one.
        """
        delta.validate(self.num_objects)
        deleted = set(delta.deletes)
        updates = dict(delta.updates)
        instance_lists: List[Sequence[Sequence[float]]] = []
        probability_lists: List[Sequence[float]] = []
        labels: List[Optional[str]] = []
        for obj in self._objects:
            if obj.object_id in deleted:
                continue
            spec = updates.get(obj.object_id)
            if spec is not None:
                instance_lists.append(spec.instances)
                probability_lists.append(spec.probabilities)
                labels.append(spec.label if spec.label is not None
                              else obj.label)
            else:
                instance_lists.append([inst.values
                                       for inst in obj.instances])
                probability_lists.append([inst.probability
                                          for inst in obj.instances])
                labels.append(obj.label)
        for spec in delta.inserts:
            instance_lists.append(spec.instances)
            probability_lists.append(spec.probabilities)
            labels.append(spec.label)
        return UncertainDataset.from_instance_lists(
            instance_lists, probability_lists, labels=labels,
            epoch=self._epoch + 1)

    # ------------------------------------------------------------------
    # Validation and summaries
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Validate the whole dataset; raise ``ValueError`` on any problem."""
        if not self._objects:
            raise ValueError("dataset has no objects")
        dim = self._objects[0].dimension
        seen_instance_ids: Dict[int, int] = {}
        for expected_id, obj in enumerate(self._objects):
            if obj.object_id != expected_id:
                raise ValueError("object at position %d has id %d"
                                 % (expected_id, obj.object_id))
            obj.validate()
            if obj.dimension != dim:
                raise ValueError("object %d has dimension %d, expected %d"
                                 % (obj.object_id, obj.dimension, dim))
            for inst in obj:
                if inst.instance_id in seen_instance_ids:
                    raise ValueError("duplicate instance id %d"
                                     % inst.instance_id)
                seen_instance_ids[inst.instance_id] = inst.object_id

    def summary(self) -> Dict[str, float]:
        """Small dictionary of dataset statistics used in reports."""
        counts = [len(obj) for obj in self._objects]
        return {
            "num_objects": float(self.num_objects),
            "num_instances": float(self.num_instances),
            "dimension": float(self.dimension),
            "min_instances_per_object": float(min(counts)),
            "max_instances_per_object": float(max(counts)),
            "mean_instances_per_object": float(np.mean(counts)),
            "objects_below_full_probability": float(sum(
                1 for obj in self._objects
                if obj.total_probability < 1.0 - PROB_ATOL)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return ("UncertainDataset(objects=%d, instances=%d, dimension=%d)"
                % (self.num_objects, self.num_instances, self.dimension))
