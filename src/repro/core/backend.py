"""Execution backends: sharding the target axis across worker processes.

Every ARSP algorithm is embarrassingly parallel over the *target objects*:
the rskyline probability of each instance depends on the whole dataset but
not on the results of any other instance, so the target axis ``[0, m)`` can
be cut into contiguous shards and each shard computed independently against
the shared instance arrays.  This module provides the executor abstraction
behind the uniform ``workers=`` parameter of the ported algorithms
(docs/ARCHITECTURE.md, "Execution backends"):

``serial``
    Runs the shard functions in-process, one after the other.  With a
    single shard this is exactly the pre-backend code path; with several
    shards it exercises the shard/merge machinery without process overhead
    (which is what the cross-backend parity suite leans on).
``process``
    Ships the dataset to a ``multiprocessing`` pool once — through a
    ``multiprocessing.shared_memory`` block holding the flat instance
    arrays when available, falling back to pickling the same arrays — and
    runs one shard function call per shard in the pool.

Determinism contract
--------------------
The shard layout is a pure function of ``(num_targets, workers)`` — it
never depends on ``os.cpu_count()`` or on which backend executes it — and
shard results are merged in ascending target order.  Together with the
per-target invariance of the ported shard functions (each target's result
is bit-identical no matter which other targets share its shard; see the
algorithm modules) this makes results *bit-identical* across backends,
across worker counts and across machines.  The CPU-count clamp applies
only to the number of worker processes actually spawned, so an
over-subscribed ``workers=`` cannot change results, only scheduling.

Shard functions must be module-level callables (picklable by reference)
with the signature ``fn(dataset, constraints, lo, hi, **options)``
returning ``{instance_id: probability}`` for every instance whose owning
object id lies in ``[lo, hi)``.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .dataset import Instance, UncertainDataset, UncertainObject

#: Backend names accepted by :func:`run_sharded` / the ``backend=`` option.
BACKENDS = ("auto", "serial", "process")

#: Start method used for worker pools: the platform default.  Forcing
#: ``fork`` would be marginally faster where it is not already the
#: default, but forking a multi-threaded host (or numpy/Accelerate on
#: macOS) can deadlock or crash the child — the reason CPython moved its
#: defaults to ``spawn``/``forkserver`` — and the determinism contract
#: does not depend on the start method, so the default always stands.
_START_METHOD = None


def _start_method() -> str:
    global _START_METHOD
    if _START_METHOD is None:
        import multiprocessing

        _START_METHOD = multiprocessing.get_start_method(allow_none=False)
    return _START_METHOD


def resolve_workers(workers: Optional[int]) -> int:
    """Validate a ``workers=`` value; ``None`` means serial (one shard).

    The returned count drives the *shard layout* and is deliberately not
    clamped to the machine's CPU count — the layout must be deterministic
    across machines.  :func:`pool_size` applies the CPU clamp to the
    number of processes actually spawned.
    """
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError("workers must be a positive integer, got %r"
                         % (workers,))
    if workers < 1:
        raise ValueError("workers must be a positive integer, got %d"
                         % workers)
    return workers


def pool_size(workers: int, num_shards: int,
              available: Optional[int] = None) -> int:
    """Number of worker processes to spawn: clamped to the CPU count.

    ``available`` overrides ``os.cpu_count()`` for tests; a machine whose
    CPU count cannot be determined counts as one CPU.
    """
    if available is None:
        available = os.cpu_count() or 1
    return max(1, min(workers, num_shards, available))


def shard_bounds(num_targets: int, num_shards: int) -> List[Tuple[int, int]]:
    """Cut ``[0, num_targets)`` into at most ``num_shards`` contiguous,
    near-equal shards (the first ``num_targets % num_shards`` shards are one
    target larger).  Empty shards are dropped, so ``num_targets <
    num_shards`` yields ``num_targets`` single-target shards.  A zero-target
    axis keeps one empty shard so degenerate inputs still reach the shard
    function (and fail there exactly like the pre-backend code paths).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive, got %d" % num_shards)
    if num_targets <= 0:
        return [(0, 0)]
    num_shards = min(num_shards, num_targets)
    base, remainder = divmod(num_targets, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


# ----------------------------------------------------------------------
# Shipping the dataset to worker processes
# ----------------------------------------------------------------------

def _dataset_arrays(dataset: UncertainDataset) -> Dict[str, np.ndarray]:
    """The flat arrays that fully determine an ARSP computation.

    Labels are deliberately not shipped: no algorithm reads them, and
    results are keyed by instance ids.
    """
    return {
        "points": np.ascontiguousarray(dataset.instance_matrix(),
                                       dtype=np.float64),
        "probabilities": np.ascontiguousarray(dataset.probability_vector(),
                                              dtype=np.float64),
        "object_ids": np.ascontiguousarray(dataset.object_ids(),
                                           dtype=np.int64),
        "instance_ids": np.ascontiguousarray(
            [instance.instance_id for instance in dataset.instances],
            dtype=np.int64),
    }


def _rebuild_dataset(arrays: Dict[str, np.ndarray],
                     num_objects: int) -> UncertainDataset:
    """Inverse of :func:`_dataset_arrays`: regroup the flat arrays.

    Instance order within each object (and hence the dataset's flat
    instance order, which is grouped by object on construction) round-trips
    exactly, so the rebuilt dataset produces bit-identical results.  The
    shipped arrays are attached as the dataset's flat-accessor cache, so
    a shard function's ``instance_matrix()`` / ``probability_vector()`` /
    ``object_ids()`` calls return them directly instead of re-flattening
    the just-built Python instance objects.
    """
    grouped: List[List[Instance]] = [[] for _ in range(num_objects)]
    points = arrays["points"]
    probabilities = arrays["probabilities"]
    object_ids = arrays["object_ids"]
    instance_ids = arrays["instance_ids"]
    for row in range(points.shape[0]):
        object_id = int(object_ids[row])
        grouped[object_id].append(Instance(
            object_id=object_id,
            instance_id=int(instance_ids[row]),
            values=tuple(float(value) for value in points[row]),
            probability=float(probabilities[row])))
    objects = [UncertainObject(object_id=object_id, instances=instances)
               for object_id, instances in enumerate(grouped)]
    dataset = UncertainDataset(objects)
    if num_objects and points.shape[0]:
        dataset._attach_flat_cache(points, probabilities, object_ids)
    return dataset


@dataclass
class PickledDataset:
    """Pickle-shipping fallback: the flat arrays ride the initargs pipe."""

    arrays: Dict[str, np.ndarray]
    num_objects: int

    @classmethod
    def create(cls, dataset: UncertainDataset) -> "PickledDataset":
        return cls(_dataset_arrays(dataset), dataset.num_objects)

    def restore(self) -> UncertainDataset:
        return _rebuild_dataset(self.arrays, self.num_objects)

    def unlink(self) -> None:
        """Nothing to release; mirrors :class:`SharedDatasetHandle`."""


@dataclass
class SharedDatasetHandle:
    """Dataset shipped through one ``multiprocessing.shared_memory`` block.

    The parent writes the flat arrays into a single block; only this small
    descriptor (block name, array shapes/offsets) is pickled to the
    workers, which attach by name, copy the arrays out and rebuild the
    dataset.  The parent owns the block and must call :meth:`unlink` once
    the pool has finished.
    """

    name: str
    specs: Dict[str, Tuple[int, Tuple[int, ...], str]]
    num_objects: int

    @classmethod
    def create(cls, dataset: UncertainDataset) -> "SharedDatasetHandle":
        from multiprocessing import shared_memory

        arrays = _dataset_arrays(dataset)
        specs: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for key, array in arrays.items():
            specs[key] = (offset, array.shape, array.dtype.str)
            offset += array.nbytes
        block = shared_memory.SharedMemory(create=True, size=max(1, offset))
        try:
            for key, array in arrays.items():
                start = specs[key][0]
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=block.buf, offset=start)
                view[...] = array
                del view
        except BaseException:
            block.close()
            block.unlink()
            raise
        handle = cls(block.name, specs, dataset.num_objects)
        handle._block = block
        return handle

    def restore(self) -> UncertainDataset:
        """Attach to the block (in a worker) and rebuild the dataset."""
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=self.name)
        try:
            arrays = {}
            for key, (offset, shape, dtype) in self.specs.items():
                view = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=block.buf, offset=offset)
                arrays[key] = view.copy()
                del view
        finally:
            # Only close, never unlink or unregister: the parent owns the
            # block, unlinks it once the pool has finished, and (with a
            # pool-shared resource tracker) performs the single unregister.
            block.close()
        return _rebuild_dataset(arrays, self.num_objects)

    def unlink(self) -> None:
        """Release the block (parent side, after the pool has finished)."""
        block = getattr(self, "_block", None)
        if block is not None:
            block.close()
            block.unlink()
            self._block = None

    def __getstate__(self):
        # The live block object stays in the parent; workers reattach by
        # name, so only the descriptor crosses the process boundary.
        return (self.name, self.specs, self.num_objects)

    def __setstate__(self, state):
        self.name, self.specs, self.num_objects = state


def ship_dataset(dataset: UncertainDataset):
    """Prepare a dataset for worker processes.

    Returns ``(payload, release)``: a picklable payload whose ``restore()``
    rebuilds the dataset in a worker, and a zero-argument cleanup callable
    for the parent.  Shared memory is preferred; environments without a
    usable ``/dev/shm`` (or without the module at all) fall back to
    pickling the same arrays, so both paths rebuild the identical dataset.
    """
    try:
        handle = SharedDatasetHandle.create(dataset)
        return handle, handle.unlink
    except (ImportError, OSError) as error:
        warnings.warn("shared memory unavailable (%s); falling back to "
                      "pickled dataset shipping" % error,
                      RuntimeWarning, stacklevel=2)
        payload = PickledDataset.create(dataset)
        return payload, payload.unlink


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------

class SerialBackend:
    """Run every shard in-process, in ascending target order."""

    name = "serial"

    def map_shards(self, fn: Callable, dataset: UncertainDataset,
                   constraints, bounds: Sequence[Tuple[int, int]],
                   options: Dict[str, object]) -> List[Dict[int, float]]:
        return [fn(dataset, constraints, lo, hi, **options)
                for lo, hi in bounds]


#: Worker-process state installed once per worker by the pool initializer:
#: ``(dataset, shard_fn, constraints, options)``.
_WORKER_STATE = None


def _worker_init(payload, fn, constraints, options) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (payload.restore(), fn, constraints, options)


def _worker_run(bounds: Tuple[int, int]) -> Dict[int, float]:
    dataset, fn, constraints, options = _WORKER_STATE
    lo, hi = bounds
    return fn(dataset, constraints, lo, hi, **options)


class ProcessBackend:
    """Run shards in a worker-process pool.

    The dataset is shipped once per worker through the pool initializer
    (shared memory when available, pickled arrays otherwise); each shard
    is one task, and results come back in shard order.  The pool is a
    ``concurrent.futures.ProcessPoolExecutor`` rather than
    ``multiprocessing.Pool`` deliberately: when a worker dies (OOM kill,
    native crash, an initializer failure) the executor raises
    ``BrokenProcessPool`` instead of hanging forever, which lets
    :func:`run_sharded` degrade to serial execution loudly.
    """

    name = "process"

    def __init__(self, workers: int, available_cpus: Optional[int] = None):
        self.workers = workers
        self.available_cpus = available_cpus

    def map_shards(self, fn: Callable, dataset: UncertainDataset,
                   constraints, bounds: Sequence[Tuple[int, int]],
                   options: Dict[str, object]) -> List[Dict[int, float]]:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context(_start_method())
        payload, release = ship_dataset(dataset)
        try:
            processes = pool_size(self.workers, len(bounds),
                                  self.available_cpus)
            with ProcessPoolExecutor(max_workers=processes,
                                     mp_context=context,
                                     initializer=_worker_init,
                                     initargs=(payload, fn, constraints,
                                               options)) as pool:
                return list(pool.map(_worker_run, bounds))
        finally:
            release()


def get_backend(name: str, workers: int):
    """Resolve a backend name (``auto`` picks by worker count)."""
    if name not in BACKENDS:
        raise ValueError("unknown execution backend %r; available: %s"
                         % (name, ", ".join(BACKENDS)))
    if name == "auto":
        name = "process" if workers > 1 else "serial"
    if name == "process":
        return ProcessBackend(workers)
    return SerialBackend()


def run_sharded(fn: Callable, dataset: UncertainDataset, constraints, *,
                num_targets: int, workers: Optional[int] = None,
                backend: Optional[str] = None,
                base_result: Optional[Dict[int, float]] = None,
                options: Optional[Dict[str, object]] = None
                ) -> Dict[int, float]:
    """Shard the target axis, execute, and merge in target order.

    Parameters
    ----------
    fn:
        Module-level shard function
        ``fn(dataset, constraints, lo, hi, **options)`` returning results
        for the targets in ``[lo, hi)``.
    num_targets:
        Length of the target axis (the number of uncertain objects).
    workers:
        Requested worker count; ``None`` and ``1`` mean one serial shard.
    backend:
        ``auto`` (default), ``serial`` or ``process``.  ``serial`` with
        ``workers > 1`` still shards — it just executes the shards
        in-process, which the parity suite uses to test the shard layout
        without pool overhead.
    base_result:
        Merged-into result template (typically every instance id mapped to
        0.0, in canonical instance order, so the merged dictionary keeps a
        deterministic key order).
    options:
        Extra keyword arguments forwarded to every shard call.
    """
    count = resolve_workers(workers)
    bounds = shard_bounds(num_targets, count)
    chosen = get_backend(backend or "auto", count)
    if isinstance(chosen, ProcessBackend) and len(bounds) == 1:
        # One shard gains nothing from a pool; run it where the caller is.
        chosen = SerialBackend()
    from concurrent.futures import BrokenExecutor

    options = dict(options or {})
    try:
        partials = chosen.map_shards(fn, dataset, constraints, bounds,
                                     options)
    except (OSError, BrokenExecutor) as error:
        if not isinstance(chosen, ProcessBackend):
            raise
        # Process pools need working semaphores/pipes and live workers;
        # a locked-down environment (OSError) or a worker death
        # (BrokenExecutor: OOM kill, initializer failure) degrades to
        # serial execution loudly instead of failing — or hanging — the
        # query.  Shard-function exceptions are not caught here: they
        # re-raise from the pool as themselves and propagate.
        warnings.warn("process backend unavailable (%s: %s); falling back "
                      "to serial execution"
                      % (type(error).__name__, error), RuntimeWarning,
                      stacklevel=2)
        partials = SerialBackend().map_shards(fn, dataset, constraints,
                                              bounds, options)
    merged: Dict[int, float] = dict(base_result) if base_result else {}
    for partial in partials:
        merged.update(partial)
    return merged
