"""Execution backends: sharding the target axis across worker processes.

Every ARSP algorithm is embarrassingly parallel over the *target objects*:
the rskyline probability of each instance depends on the whole dataset but
not on the results of any other instance, so the target axis ``[0, m)`` can
be cut into contiguous shards and each shard computed independently against
the shared instance arrays.  This module provides the executor abstraction
behind the uniform ``workers=`` parameter of the ported algorithms
(docs/ARCHITECTURE.md, "Execution backends"):

``serial``
    Runs the shard functions in-process, one after the other.  With a
    single shard this is exactly the pre-backend code path; with several
    shards it exercises the shard/merge machinery without process overhead
    (which is what the cross-backend parity suite leans on).
``process``
    Ships the dataset to a worker-process pool once — through a
    ``multiprocessing.shared_memory`` block holding the flat instance
    arrays when available, falling back to pickling the same arrays — and
    runs the shards under a **supervised scheduler**: every shard is an
    individual future, a broken pool is rebuilt and only the unfinished
    shards are resubmitted (bounded retries with exponential backoff), a
    hung worker is detected by a per-shard wall-clock timeout and its pool
    is killed and rebuilt, and the terminal behaviour is selected by
    :class:`ExecutionPolicy` (``on_failure="serial"|"retry"|"raise"``).
    What happened — attempts, recoveries, rebuilds, fallbacks, per-shard
    timings — is recorded in an :class:`ExecutionReport` attached to the
    returned :class:`AlgorithmResult`.

Determinism contract
--------------------
The shard layout is a pure function of ``(num_targets, workers)`` — it
never depends on ``os.cpu_count()`` or on which backend executes it — and
shard results are merged in ascending target order.  Together with the
per-target invariance of the ported shard functions (each target's result
is bit-identical no matter which other targets share its shard; see the
algorithm modules) this makes results *bit-identical* across backends,
across worker counts and across machines.  The CPU-count clamp applies
only to the number of worker processes actually spawned, so an
over-subscribed ``workers=`` cannot change results, only scheduling.
Supervision preserves the contract: retries resubmit the *same* shard
bounds to the *same* shard function, and the merge consumes results by
shard index, so a recovered run is byte-identical to a clean one.

Shard functions must be module-level callables (picklable by reference)
with the signature ``fn(dataset, constraints, lo, hi, **options)``
returning ``{instance_id: probability}`` for every instance whose owning
object id lies in ``[lo, hi)``.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .dataset import Instance, UncertainDataset, UncertainObject
from .faults import FaultPlan, apply_task_fault

#: Backend names accepted by :func:`run_sharded` / the ``backend=`` option.
BACKENDS = ("auto", "serial", "process")

#: Terminal policies when a shard exhausts its retry budget (see
#: :class:`ExecutionPolicy`).
ON_FAILURE = ("serial", "retry", "raise")

#: Start method used for worker pools: the platform default.  Forcing
#: ``fork`` would be marginally faster where it is not already the
#: default, but forking a multi-threaded host (or numpy/Accelerate on
#: macOS) can deadlock or crash the child — the reason CPython moved its
#: defaults to ``spawn``/``forkserver`` — and the determinism contract
#: does not depend on the start method, so the default always stands.
_START_METHOD = None


def _start_method() -> str:
    global _START_METHOD
    if _START_METHOD is None:
        import multiprocessing

        _START_METHOD = multiprocessing.get_start_method(allow_none=False)
    return _START_METHOD


def resolve_workers(workers: Optional[int]) -> int:
    """Validate a ``workers=`` value; ``None`` means serial (one shard).

    The returned count drives the *shard layout* and is deliberately not
    clamped to the machine's CPU count — the layout must be deterministic
    across machines.  :func:`pool_size` applies the CPU clamp to the
    number of processes actually spawned.
    """
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError("workers must be a positive integer, got %r"
                         % (workers,))
    if workers < 1:
        raise ValueError("workers must be a positive integer, got %d"
                         % workers)
    return workers


def pool_size(workers: int, num_shards: int,
              available: Optional[int] = None) -> int:
    """Number of worker processes to spawn: clamped to the CPU count.

    ``available`` overrides ``os.cpu_count()`` for tests; a machine whose
    CPU count cannot be determined counts as one CPU.
    """
    if available is None:
        available = os.cpu_count() or 1
    return max(1, min(workers, num_shards, available))


def shard_bounds(num_targets: int, num_shards: int) -> List[Tuple[int, int]]:
    """Cut ``[0, num_targets)`` into at most ``num_shards`` contiguous,
    near-equal shards (the first ``num_targets % num_shards`` shards are one
    target larger).  Empty shards are dropped, so ``num_targets <
    num_shards`` yields ``num_targets`` single-target shards.  A zero-target
    axis keeps one empty shard so degenerate inputs still reach the shard
    function (and fail there exactly like the pre-backend code paths).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive, got %d" % num_shards)
    if num_targets <= 0:
        return [(0, 0)]
    num_shards = min(num_shards, num_targets)
    base, remainder = divmod(num_targets, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------

class DatasetRestoreError(RuntimeError):
    """A shipped dataset failed validation while being rebuilt in a worker.

    Raised by :func:`_rebuild_dataset` when the flat arrays violate the
    shipping invariants (e.g. an ``object_id`` outside the dense range
    ``[0, num_objects)``), identifying the offending row instead of
    letting a bare ``IndexError`` surface from deep inside a worker.
    """


class ShardExecutionError(RuntimeError):
    """The supervised scheduler gave up on one or more shards.

    Raised under ``on_failure="raise"`` (immediately, on the first
    infrastructure failure) and under ``on_failure="retry"`` (once a
    shard's retry budget is exhausted).  Deliberately *not* an ``OSError``
    or ``BrokenExecutor`` subclass, so it bypasses
    :func:`run_sharded`'s serial-degradation path and reaches the caller.
    """

    def __init__(self, message: str, shard_indices: Sequence[int] = (),
                 report: Optional["ExecutionReport"] = None):
        super().__init__(message)
        self.shard_indices = tuple(shard_indices)
        self.report = report


class _HungShards(RuntimeError):
    """Internal: one or more in-flight shards exceeded the shard timeout."""


# ----------------------------------------------------------------------
# Shipping the dataset to worker processes
# ----------------------------------------------------------------------

def _dataset_arrays(dataset: UncertainDataset) -> Dict[str, np.ndarray]:
    """The flat arrays that fully determine an ARSP computation.

    Labels are deliberately not shipped: no algorithm reads them, and
    results are keyed by instance ids.
    """
    return {
        "points": np.ascontiguousarray(dataset.instance_matrix(),
                                       dtype=np.float64),
        "probabilities": np.ascontiguousarray(dataset.probability_vector(),
                                              dtype=np.float64),
        "object_ids": np.ascontiguousarray(dataset.object_ids(),
                                           dtype=np.int64),
        "instance_ids": np.ascontiguousarray(
            [instance.instance_id for instance in dataset.instances],
            dtype=np.int64),
    }


def _rebuild_dataset(arrays: Dict[str, np.ndarray],
                     num_objects: int) -> UncertainDataset:
    """Inverse of :func:`_dataset_arrays`: regroup the flat arrays.

    Instance order within each object (and hence the dataset's flat
    instance order, which is grouped by object on construction) round-trips
    exactly, so the rebuilt dataset produces bit-identical results.  The
    shipped arrays are attached as the dataset's flat-accessor cache, so
    a shard function's ``instance_matrix()`` / ``probability_vector()`` /
    ``object_ids()`` calls return them directly instead of re-flattening
    the just-built Python instance objects.

    Object ids are validated against the dense range ``[0, num_objects)``
    the sharded target axis assumes; a violation raises
    :class:`DatasetRestoreError` naming the offending row.
    """
    grouped: List[List[Instance]] = [[] for _ in range(num_objects)]
    points = arrays["points"]
    probabilities = arrays["probabilities"]
    object_ids = arrays["object_ids"]
    instance_ids = arrays["instance_ids"]
    for row in range(points.shape[0]):
        object_id = int(object_ids[row])
        if not 0 <= object_id < num_objects:
            raise DatasetRestoreError(
                "shipped dataset is corrupt: row %d (instance id %d) has "
                "object_id %d outside the dense target range [0, %d)"
                % (row, int(instance_ids[row]), object_id, num_objects))
        grouped[object_id].append(Instance(
            object_id=object_id,
            instance_id=int(instance_ids[row]),
            values=tuple(float(value) for value in points[row]),
            probability=float(probabilities[row])))
    objects = [UncertainObject(object_id=object_id, instances=instances)
               for object_id, instances in enumerate(grouped)]
    dataset = UncertainDataset(objects)
    if num_objects and points.shape[0]:
        dataset._attach_flat_cache(points, probabilities, object_ids)
    return dataset


@dataclass
class PickledDataset:
    """Pickle-shipping fallback: the flat arrays ride the initargs pipe."""

    arrays: Dict[str, np.ndarray]
    num_objects: int

    @classmethod
    def create(cls, dataset: UncertainDataset) -> "PickledDataset":
        return cls(_dataset_arrays(dataset), dataset.num_objects)

    def restore(self) -> UncertainDataset:
        return _rebuild_dataset(self.arrays, self.num_objects)

    def unlink(self) -> None:
        """Nothing to release; mirrors :class:`SharedDatasetHandle`."""


def _release_block(block) -> None:
    """Close and unlink a shared-memory block, tolerating double release.

    Used both by :meth:`SharedDatasetHandle.unlink` and by the
    ``weakref.finalize`` guard, so it must be safe when the block is
    already gone (e.g. the resource tracker or an earlier call won the
    race).
    """
    try:
        block.close()
    except (OSError, BufferError):
        pass
    try:
        block.unlink()
    except FileNotFoundError:
        pass


@dataclass
class SharedDatasetHandle:
    """Dataset shipped through one ``multiprocessing.shared_memory`` block.

    The parent writes the flat arrays into a single block; only this small
    descriptor (block name, array shapes/offsets) is pickled to the
    workers, which attach by name, copy the arrays out and rebuild the
    dataset.  The parent owns the block and calls :meth:`unlink` once the
    pool has finished; a ``weakref.finalize`` guard unlinks the block even
    when the owner crashes between :func:`ship_dataset` and the release,
    so an abandoned handle can never leak ``/dev/shm`` space (or trigger a
    ``resource_tracker`` leak warning at interpreter exit).
    """

    name: str
    specs: Dict[str, Tuple[int, Tuple[int, ...], str]]
    num_objects: int

    @classmethod
    def create(cls, dataset: UncertainDataset) -> "SharedDatasetHandle":
        from multiprocessing import shared_memory

        arrays = _dataset_arrays(dataset)
        specs: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for key, array in arrays.items():
            specs[key] = (offset, array.shape, array.dtype.str)
            offset += array.nbytes
        block = shared_memory.SharedMemory(create=True, size=max(1, offset))
        try:
            for key, array in arrays.items():
                start = specs[key][0]
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=block.buf, offset=start)
                view[...] = array
                del view
        except BaseException:
            _release_block(block)
            raise
        handle = cls(block.name, specs, dataset.num_objects)
        handle._block = block
        handle._finalizer = weakref.finalize(handle, _release_block, block)
        return handle

    def restore(self) -> UncertainDataset:
        """Attach to the block (in a worker) and rebuild the dataset."""
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=self.name)
        try:
            arrays = {}
            for key, (offset, shape, dtype) in self.specs.items():
                view = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=block.buf, offset=offset)
                arrays[key] = view.copy()
                del view
        finally:
            # Only close, never unlink or unregister: the parent owns the
            # block, unlinks it once the pool has finished, and (with a
            # pool-shared resource tracker) performs the single unregister.
            block.close()
        return _rebuild_dataset(arrays, self.num_objects)

    def unlink(self) -> None:
        """Release the block (parent side, after the pool has finished).

        Idempotent: the release goes through the ``weakref.finalize``
        guard, which runs at most once no matter how many times it is
        invoked — double ``unlink()``, or ``unlink()`` racing garbage
        collection, releases exactly once.
        """
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer()
        self._block = None

    def __getstate__(self):
        # The live block object (and its finalizer) stays in the parent;
        # workers reattach by name, so only the descriptor crosses the
        # process boundary.
        return (self.name, self.specs, self.num_objects)

    def __setstate__(self, state):
        self.name, self.specs, self.num_objects = state


def ship_dataset(dataset: UncertainDataset):
    """Prepare a dataset for worker processes.

    Returns ``(payload, release)``: a picklable payload whose ``restore()``
    rebuilds the dataset in a worker, and a zero-argument cleanup callable
    for the parent.  Shared memory is preferred; environments without a
    usable ``/dev/shm`` (or without the module at all) fall back to
    pickling the same arrays, so both paths rebuild the identical dataset.
    """
    try:
        handle = SharedDatasetHandle.create(dataset)
        return handle, handle.unlink
    except (ImportError, OSError) as error:
        warnings.warn("shared memory unavailable (%s); falling back to "
                      "pickled dataset shipping" % error,
                      RuntimeWarning, stacklevel=2)
        payload = PickledDataset.create(dataset)
        return payload, payload.unlink


# ----------------------------------------------------------------------
# Execution policy and report
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExecutionPolicy:
    """Supervision knobs for the process backend.

    shard_timeout_s:
        Wall-clock budget per shard attempt.  An in-flight shard that
        exceeds it is treated as hung: its pool is killed and rebuilt and
        the shard is rescheduled (consuming one attempt).  ``None``
        (default) disables the timeout.
    max_retries:
        Extra submissions granted per shard beyond the first, so a shard
        runs at most ``1 + max_retries`` times.  A broken pool charges an
        attempt to every shard that was in flight on it — the scheduler
        cannot know which task killed the pool.
    on_failure:
        Terminal behaviour once a shard exhausts its budget (a tolerance
        ladder): ``"serial"`` (default) computes the still-missing shards
        serially in the parent, preserving the everything-still-answers
        degradation contract; ``"retry"`` raises
        :class:`ShardExecutionError` after the retries; ``"raise"`` grants
        no retries at all — the first infrastructure failure propagates
        immediately (the budget is trivially exhausted).
    backoff_base_s / backoff_cap_s:
        Exponential backoff between pool rebuilds:
        ``min(cap, base * 2**(round - 1))`` seconds after the ``round``-th
        consecutive failure round.
    fault_plan:
        Deterministic fault injection (see :mod:`repro.core.faults`),
        applied only inside worker processes.  When unset, the
        ``REPRO_FAULTS`` environment spec is consulted at
        :meth:`resolve` time.
    """

    shard_timeout_s: Optional[float] = None
    max_retries: int = 2
    on_failure: str = "serial"
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 2.0
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self):
        if self.on_failure not in ON_FAILURE:
            raise ValueError("on_failure must be one of %s; got %r"
                             % (", ".join(ON_FAILURE), self.on_failure))
        if (isinstance(self.max_retries, bool)
                or not isinstance(self.max_retries, int)
                or self.max_retries < 0):
            raise ValueError("max_retries must be a non-negative integer, "
                             "got %r" % (self.max_retries,))
        if self.shard_timeout_s is not None and not self.shard_timeout_s > 0:
            raise ValueError("shard_timeout_s must be positive, got %r"
                             % (self.shard_timeout_s,))
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be non-negative")

    @property
    def attempts_allowed(self) -> int:
        """Total submissions a shard may consume before it is terminal."""
        return 1 if self.on_failure == "raise" else 1 + self.max_retries

    @classmethod
    def resolve(cls, policy: Optional["ExecutionPolicy"] = None,
                fault_plan: Optional[FaultPlan] = None) -> "ExecutionPolicy":
        """Effective policy: explicit args first, then ``REPRO_FAULTS``."""
        base = policy if policy is not None else cls()
        plan = fault_plan if fault_plan is not None else base.fault_plan
        if plan is None:
            plan = FaultPlan.from_env()
        if plan is not base.fault_plan:
            base = replace(base, fault_plan=plan)
        return base


@dataclass
class ShardRecord:
    """Lifecycle of one shard under the scheduler.

    ``outcome`` is ``"pending"`` until the shard completes, then
    ``"done"`` (clean), ``"recovered"`` (pool success after at least one
    failure) or ``"serial"`` (computed by the serial terminal fallback).
    ``failures`` tags each failed attempt: ``"worker-lost"`` (the shard's
    own future died), ``"pool-broken"`` (collateral — its pool broke or a
    sibling hung), ``"timeout"`` (this shard tripped the shard timeout).
    """

    index: int
    lo: int
    hi: int
    attempts: int = 0
    outcome: str = "pending"
    failures: Tuple[str, ...] = ()
    elapsed_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"index": self.index, "targets": [self.lo, self.hi],
                "attempts": self.attempts, "outcome": self.outcome,
                "failures": list(self.failures),
                "elapsed_s": round(self.elapsed_s, 6)}


@dataclass
class ExecutionReport:
    """What the execution layer actually did for one sharded run.

    Attached to every :class:`AlgorithmResult` as ``.execution`` and
    summarized per bench cell (schema ``repro-bench/5``), so recovery
    overhead is measured, not guessed.
    """

    backend: str
    workers: int
    shards: List[ShardRecord]
    pool_size: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    fallback_events: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def attempts(self) -> int:
        """Total shard submissions (serial executions included)."""
        return sum(record.attempts for record in self.shards)

    @property
    def retried_shards(self) -> List[int]:
        return [record.index for record in self.shards
                if record.attempts > 1]

    @property
    def recovered_shards(self) -> List[int]:
        return [record.index for record in self.shards
                if record.outcome == "recovered"]

    @property
    def serial_fallback_shards(self) -> List[int]:
        return [record.index for record in self.shards
                if record.outcome == "serial"]

    @property
    def clean(self) -> bool:
        """True when nothing was retried, rebuilt or degraded."""
        return (not self.pool_rebuilds and not self.timeouts
                and not self.fallback_events and not self.retried_shards
                and all(record.outcome == "done" for record in self.shards))

    def summary(self) -> Dict[str, object]:
        """JSON-ready digest recorded per bench cell."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "shards": len(self.shards),
            "pool_size": self.pool_size,
            "attempts": self.attempts,
            "retried_shards": self.retried_shards,
            "recovered_shards": self.recovered_shards,
            "serial_fallback_shards": self.serial_fallback_shards,
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "fallback_events": list(self.fallback_events),
            "clean": self.clean,
            "elapsed_s": round(self.elapsed_s, 6),
        }


class AlgorithmResult(dict):
    """``{instance_id: probability}`` plus how it was computed.

    A plain ``dict`` subclass: equality, iteration order, serialization
    and the determinism fingerprints are exactly the underlying mapping's.
    The supervised scheduler's :class:`ExecutionReport` rides along as the
    ``execution`` attribute (``None`` for results that never went through
    :func:`run_sharded`).
    """

    def __init__(self, *args, execution: Optional[ExecutionReport] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.execution = execution


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------

class SerialBackend:
    """Run every shard in-process, in ascending target order."""

    name = "serial"

    def map_shards(self, fn: Callable, dataset: UncertainDataset,
                   constraints, bounds: Sequence[Tuple[int, int]],
                   options: Dict[str, object],
                   report: Optional[ExecutionReport] = None
                   ) -> List[Dict[int, float]]:
        partials = []
        for index, (lo, hi) in enumerate(bounds):
            started = time.perf_counter()
            partials.append(fn(dataset, constraints, lo, hi, **options))
            if report is not None and index < len(report.shards):
                record = report.shards[index]
                record.attempts += 1
                record.outcome = "done"
                record.elapsed_s = time.perf_counter() - started
        return partials


#: Worker-process state installed once per worker by the pool initializer:
#: ``(dataset, shard_fn, constraints, options, fault_plan)``.
_WORKER_STATE = None


def _poison_payload(payload):
    """Fault injection: corrupt the payload so ``restore()`` fails on the
    genuine attach path (the descriptor names a block that does not
    exist)."""
    if isinstance(payload, SharedDatasetHandle):
        return SharedDatasetHandle(payload.name + "-poisoned",
                                   payload.specs, payload.num_objects)
    from .faults import FaultInjected

    raise FaultInjected("attach fault requested but the dataset was "
                        "shipped pickled (no shared-memory attach to "
                        "poison)")


def _worker_init(payload, fn, constraints, options,
                 fault_plan: Optional[FaultPlan] = None,
                 generation: int = 0) -> None:
    global _WORKER_STATE
    if fault_plan is not None:
        from .faults import FaultInjected

        if fault_plan.init_rule(generation) is not None:
            raise FaultInjected("injected initializer failure "
                                "(pool generation %d)" % generation)
        if fault_plan.attach_rule(generation) is not None:
            payload = _poison_payload(payload)
    _WORKER_STATE = (payload.restore(), fn, constraints, options, fault_plan)


def _worker_run(bounds: Tuple[int, int], shard_index: Optional[int] = None,
                attempt: int = 1) -> Dict[int, float]:
    dataset, fn, constraints, options, fault_plan = _WORKER_STATE
    if fault_plan is not None and shard_index is not None:
        apply_task_fault(fault_plan, shard_index, attempt)
    lo, hi = bounds
    return fn(dataset, constraints, lo, hi, **options)


def _terminate_pool(pool) -> None:
    """Tear a pool down without waiting on its workers.

    A hung worker never returns, so a graceful ``shutdown(wait=True)``
    would wedge the parent; kill the worker processes first (via the
    executor's private process table — guarded, since it is private API)
    and then release the executor's bookkeeping.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


class _ShardSupervisor:
    """One supervised execution of a shard batch over a process pool.

    Shards are submitted as individual futures through a sliding window of
    at most ``pool_size`` in-flight tasks, so submission time approximates
    start time and the per-shard wall-clock deadline needs no cooperation
    from the worker.  On any infrastructure failure (worker death, broken
    pool, initializer failure, hung shard) the pool is killed and rebuilt
    with an incremented generation and only the unfinished shards are
    resubmitted, after exponential backoff.  Results land in a list
    indexed by shard, so the caller's in-order merge is untouched.
    """

    def __init__(self, bounds: Sequence[Tuple[int, int]], fn: Callable,
                 constraints, options: Dict[str, object], payload, context,
                 processes: int, policy: ExecutionPolicy,
                 report: Optional[ExecutionReport]):
        self.bounds = list(bounds)
        self.fn = fn
        self.constraints = constraints
        self.options = options
        self.payload = payload
        self.context = context
        self.processes = processes
        self.policy = policy
        self.report = report
        count = len(self.bounds)
        self.results: List[Optional[Dict[int, float]]] = [None] * count
        self.done = [False] * count
        self.attempts = [0] * count
        self.pending = deque(range(count))
        self.in_flight: Dict[object, Tuple[int, float]] = {}
        self.generation = 0
        self.failure_rounds = 0
        self.pool = None

    # -- pool lifecycle ------------------------------------------------

    def _spawn_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.processes, mp_context=self.context,
            initializer=_worker_init,
            initargs=(self.payload, self.fn, self.constraints, self.options,
                      self.policy.fault_plan, self.generation))

    def _backoff(self) -> None:
        delay = min(self.policy.backoff_cap_s,
                    self.policy.backoff_base_s
                    * (2 ** (self.failure_rounds - 1)))
        if delay > 0:
            time.sleep(delay)

    # -- report plumbing -----------------------------------------------

    def _record(self, index: int) -> Optional[ShardRecord]:
        if self.report is not None and index < len(self.report.shards):
            return self.report.shards[index]
        return None

    def _mark_failure(self, index: int, tag: str) -> None:
        record = self._record(index)
        if record is not None:
            record.attempts = self.attempts[index]
            record.failures = record.failures + (tag,)

    def _mark_done(self, index: int, elapsed: float) -> None:
        record = self._record(index)
        if record is not None:
            record.attempts = self.attempts[index]
            record.elapsed_s = elapsed
            record.outcome = "recovered" if record.failures else "done"

    # -- scheduling ----------------------------------------------------

    def run(self, dataset: UncertainDataset) -> List[Dict[int, float]]:
        try:
            self.pool = self._spawn_pool()
            while not all(self.done):
                if self._drive() == "serial":
                    self._complete_serially(dataset)
            if self.pool is not None:
                self.pool.shutdown(wait=True, cancel_futures=True)
                self.pool = None
        finally:
            if self.pool is not None:
                _terminate_pool(self.pool)
                self.pool = None
        return self.results

    def _drive(self) -> str:
        """One scheduling step: fill the window, wait, collect, recover."""
        from concurrent.futures import FIRST_COMPLETED, wait

        error = self._submit_window()
        if error is None and self.in_flight:
            finished, _ = wait(list(self.in_flight),
                               timeout=self._wait_timeout(),
                               return_when=FIRST_COMPLETED)
            error = self._collect(finished)
            if error is None and not finished:
                error = self._check_deadlines()
        if error is not None:
            return self._recover(error)
        return "ok"

    def _submit_window(self):
        from concurrent.futures import BrokenExecutor

        while self.pending and len(self.in_flight) < self.processes:
            index = self.pending.popleft()
            self.attempts[index] += 1
            try:
                future = self.pool.submit(_worker_run, self.bounds[index],
                                          index, self.attempts[index])
            except (BrokenExecutor, OSError) as error:
                self._mark_failure(index, "pool-broken")
                return error
            self.in_flight[future] = (index, time.monotonic())
        return None

    def _wait_timeout(self) -> Optional[float]:
        if self.policy.shard_timeout_s is None:
            return None
        oldest = min(started for _, started in self.in_flight.values())
        return max(0.0, oldest + self.policy.shard_timeout_s
                   - time.monotonic())

    def _collect(self, finished):
        from concurrent.futures import BrokenExecutor

        error = None
        for future in finished:
            index, started = self.in_flight.pop(future)
            try:
                result = future.result()
            except (BrokenExecutor, OSError) as failure:
                # Infrastructure: the worker died or took the pool with
                # it.  Shard-function exceptions take the ``raise`` below
                # instead and propagate as themselves — they are bugs, not
                # failures to retry.
                self._mark_failure(index, "worker-lost")
                error = failure
                continue
            self.results[index] = result
            self.done[index] = True
            self._mark_done(index, time.monotonic() - started)
        return error

    def _check_deadlines(self):
        if self.policy.shard_timeout_s is None:
            return None
        now = time.monotonic()
        overdue = [future for future, (_, started) in self.in_flight.items()
                   if now - started >= self.policy.shard_timeout_s]
        if not overdue:
            return None
        indices = []
        for future in overdue:
            index, _ = self.in_flight.pop(future)
            indices.append(index)
            self._mark_failure(index, "timeout")
            if self.report is not None:
                self.report.timeouts += 1
        return _HungShards("shard(s) %s exceeded the %.3gs shard timeout"
                           % (sorted(indices), self.policy.shard_timeout_s))

    def _recover(self, error) -> str:
        """Handle one failure round: requeue, then rebuild / degrade /
        raise according to the policy."""
        # Whatever was still in flight died with the pool (or must be
        # abandoned with it — a future on a killed pool never resolves).
        for future, (index, _) in list(self.in_flight.items()):
            self._mark_failure(index, "pool-broken")
        self.in_flight.clear()
        self.failure_rounds += 1
        missing = [index for index, flag in enumerate(self.done) if not flag]
        self.pending = deque(missing)
        _terminate_pool(self.pool)
        self.pool = None
        if self.policy.on_failure == "raise":
            raise ShardExecutionError(
                "sharded execution failed (%s: %s) and on_failure='raise' "
                "grants no retries; unfinished shard(s): %s"
                % (type(error).__name__, error, missing),
                shard_indices=missing, report=self.report) from error
        exhausted = [index for index in missing
                     if self.attempts[index] >= self.policy.attempts_allowed]
        if exhausted:
            if self.policy.on_failure == "retry":
                raise ShardExecutionError(
                    "shard(s) %s failed %d attempt(s) each (last error %s: "
                    "%s); retry budget exhausted"
                    % (exhausted, self.policy.attempts_allowed,
                       type(error).__name__, error),
                    shard_indices=exhausted, report=self.report) from error
            return "serial"
        self._backoff()
        self.generation += 1
        if self.report is not None:
            self.report.pool_rebuilds += 1
        try:
            self.pool = self._spawn_pool()
        except OSError as pool_error:
            if self.policy.on_failure == "retry":
                raise ShardExecutionError(
                    "could not rebuild the worker pool (%s: %s)"
                    % (type(pool_error).__name__, pool_error),
                    shard_indices=missing, report=self.report) \
                    from pool_error
            return "serial"
        return "ok"

    def _complete_serially(self, dataset: UncertainDataset) -> None:
        """Terminal ``on_failure="serial"`` path: recompute only the
        still-missing shards, in the parent, without fault injection."""
        missing = [index for index, flag in enumerate(self.done) if not flag]
        warnings.warn(
            "process pool could not finish shard(s) %s within the retry "
            "budget; computing %d shard(s) serially"
            % (missing, len(missing)), RuntimeWarning, stacklevel=4)
        if self.report is not None:
            self.report.fallback_events.append(
                "retry budget exhausted: shard(s) %s recomputed serially"
                % missing)
        for index in missing:
            lo, hi = self.bounds[index]
            started = time.perf_counter()
            self.results[index] = self.fn(dataset, self.constraints, lo, hi,
                                          **self.options)
            self.done[index] = True
            self.attempts[index] += 1
            record = self._record(index)
            if record is not None:
                record.attempts = self.attempts[index]
                record.outcome = "serial"
                record.elapsed_s = time.perf_counter() - started
        self.pending.clear()


class ProcessBackend:
    """Run shards in a supervised worker-process pool.

    The dataset is shipped once per worker through the pool initializer
    (shared memory when available, pickled arrays otherwise).  Each shard
    is one future under a :class:`_ShardSupervisor`: worker deaths and
    hung shards rebuild the pool and resubmit only the unfinished shards,
    with bounded retries, exponential backoff and an
    :class:`ExecutionPolicy`-selected terminal behaviour.  The pool is a
    ``concurrent.futures.ProcessPoolExecutor`` rather than
    ``multiprocessing.Pool`` deliberately: when a worker dies (OOM kill,
    native crash, an initializer failure) the executor raises
    ``BrokenProcessPool`` instead of hanging forever, which is the signal
    the supervisor recovers from.
    """

    name = "process"

    def __init__(self, workers: int, available_cpus: Optional[int] = None,
                 policy: Optional[ExecutionPolicy] = None):
        self.workers = workers
        self.available_cpus = available_cpus
        self.policy = policy if policy is not None else ExecutionPolicy()

    def map_shards(self, fn: Callable, dataset: UncertainDataset,
                   constraints, bounds: Sequence[Tuple[int, int]],
                   options: Dict[str, object],
                   report: Optional[ExecutionReport] = None
                   ) -> List[Dict[int, float]]:
        import multiprocessing

        context = multiprocessing.get_context(_start_method())
        payload, release = ship_dataset(dataset)
        processes = pool_size(self.workers, len(bounds),
                              self.available_cpus)
        if report is not None:
            report.pool_size = processes
        supervisor = _ShardSupervisor(bounds, fn, constraints, options,
                                      payload, context, processes,
                                      self.policy, report)
        try:
            return supervisor.run(dataset)
        finally:
            release()


def get_backend(name: str, workers: int,
                policy: Optional[ExecutionPolicy] = None):
    """Resolve a backend name (``auto`` picks by worker count)."""
    if name not in BACKENDS:
        raise ValueError("unknown execution backend %r; available: %s"
                         % (name, ", ".join(BACKENDS)))
    if name == "auto":
        name = "process" if workers > 1 else "serial"
    if name == "process":
        return ProcessBackend(workers, policy=policy)
    return SerialBackend()


def run_sharded(fn: Callable, dataset: UncertainDataset, constraints, *,
                num_targets: int, workers: Optional[int] = None,
                backend=None,
                base_result: Optional[Dict[int, float]] = None,
                options: Optional[Dict[str, object]] = None,
                policy: Optional[ExecutionPolicy] = None,
                fault_plan: Optional[FaultPlan] = None) -> AlgorithmResult:
    """Shard the target axis, execute, and merge in target order.

    Parameters
    ----------
    fn:
        Module-level shard function
        ``fn(dataset, constraints, lo, hi, **options)`` returning results
        for the targets in ``[lo, hi)``.
    num_targets:
        Length of the target axis (the number of uncertain objects).
    workers:
        Requested worker count; ``None`` and ``1`` mean one serial shard.
    backend:
        ``auto`` (default), ``serial`` or ``process``.  ``serial`` with
        ``workers > 1`` still shards — it just executes the shards
        in-process, which the parity suite uses to test the shard layout
        without pool overhead.  A pre-built backend instance (anything
        with ``map_shards``) is used as-is, which lets tests and embedders
        inject e.g. a :class:`ProcessBackend` with a custom CPU budget.
    base_result:
        Merged-into result template (typically every instance id mapped to
        0.0, in canonical instance order, so the merged dictionary keeps a
        deterministic key order).
    options:
        Extra keyword arguments forwarded to every shard call.
    policy:
        Supervision knobs (:class:`ExecutionPolicy`); ``None`` means the
        defaults (2 retries, no shard timeout, serial terminal fallback).
    fault_plan:
        Deterministic fault injection, overriding both ``policy.fault_plan``
        and the ``REPRO_FAULTS`` environment spec.

    Returns an :class:`AlgorithmResult` — a dict of
    ``{instance_id: probability}`` with the run's
    :class:`ExecutionReport` attached as ``.execution``.
    """
    from concurrent.futures import BrokenExecutor

    count = resolve_workers(workers)
    bounds = shard_bounds(num_targets, count)
    policy = ExecutionPolicy.resolve(policy, fault_plan)
    if backend is None or isinstance(backend, str):
        chosen = get_backend(backend or "auto", count, policy)
    else:
        chosen = backend
    if isinstance(chosen, ProcessBackend):
        policy = chosen.policy
        if len(bounds) == 1:
            # One shard gains nothing from a pool; run it where the
            # caller is.
            chosen = SerialBackend()
    report = ExecutionReport(
        backend=chosen.name, workers=count,
        shards=[ShardRecord(index, lo, hi)
                for index, (lo, hi) in enumerate(bounds)])
    options = dict(options or {})
    started = time.perf_counter()
    try:
        partials = chosen.map_shards(fn, dataset, constraints, bounds,
                                     options, report=report)
    except (OSError, BrokenExecutor) as error:
        if not isinstance(chosen, ProcessBackend):
            raise
        if policy.on_failure != "serial":
            raise
        # Process pools need working semaphores/pipes and live workers; a
        # locked-down environment (OSError) that defeats even the
        # supervisor's rebuilds degrades to serial execution loudly
        # instead of failing — or hanging — the query.  Shard-function
        # exceptions are not caught here: they re-raise from the pool as
        # themselves and propagate (as does ShardExecutionError under the
        # stricter policies).
        warnings.warn("process backend unavailable (%s: %s); falling back "
                      "to serial execution"
                      % (type(error).__name__, error), RuntimeWarning,
                      stacklevel=2)
        report.fallback_events.append(
            "process backend unavailable (%s): full serial recompute"
            % type(error).__name__)
        partials = SerialBackend().map_shards(fn, dataset, constraints,
                                              bounds, options,
                                              report=report)
    report.elapsed_s = time.perf_counter() - started
    merged = AlgorithmResult(base_result or {}, execution=report)
    for partial in partials:
        merged.update(partial)
    return merged
