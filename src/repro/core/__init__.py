"""Core data model, preference model and problem definitions."""

from .arsp import (arsp_size, compute_arsp, object_rskyline_probabilities,
                   threshold_query, top_k_objects)
from .backend import (ProcessBackend, SerialBackend, resolve_workers,
                      run_sharded, shard_bounds)
from .dataset import Instance, UncertainDataset, UncertainObject
from .dominance import (dominates, f_dominates, f_dominates_scores,
                        strictly_dominates, weight_ratio_f_dominates)
from .possible_worlds import (brute_force_arsp, brute_force_object_arsp,
                              iter_possible_worlds, number_of_possible_worlds,
                              world_probability, world_rskyline)
from .preference import (LinearConstraints, PreferenceRegion,
                         WeightRatioConstraints, resolve_preference_region)
from .rskyline import dominance_counts, eclipse, rskyline, skyline

__all__ = [
    "Instance",
    "LinearConstraints",
    "PreferenceRegion",
    "ProcessBackend",
    "SerialBackend",
    "UncertainDataset",
    "UncertainObject",
    "WeightRatioConstraints",
    "arsp_size",
    "brute_force_arsp",
    "brute_force_object_arsp",
    "compute_arsp",
    "dominance_counts",
    "dominates",
    "eclipse",
    "f_dominates",
    "f_dominates_scores",
    "iter_possible_worlds",
    "number_of_possible_worlds",
    "object_rskyline_probabilities",
    "resolve_preference_region",
    "resolve_workers",
    "rskyline",
    "run_sharded",
    "shard_bounds",
    "skyline",
    "strictly_dominates",
    "threshold_query",
    "top_k_objects",
    "weight_ratio_f_dominates",
    "world_probability",
    "world_rskyline",
]
